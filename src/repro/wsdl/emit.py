"""WSDL 1.1 document emission."""

from __future__ import annotations

from repro.schema.composite import ArrayType, StructType
from repro.soap.constants import SOAP_ENC_URI, XSD_URI
from repro.wsdl.model import ServiceDef
from repro.xmlkit.writer import XMLWriter

__all__ = ["emit_wsdl"]

_WSDL_URI = "http://schemas.xmlsoap.org/wsdl/"
_WSDL_SOAP_URI = "http://schemas.xmlsoap.org/wsdl/soap/"


def emit_wsdl(service: ServiceDef) -> bytes:
    """Render a WSDL 1.1 document for *service*."""
    w = XMLWriter()
    w.prolog()
    w.start(
        "wsdl:definitions",
        attrs={"name": service.name, "targetNamespace": service.namespace},
        nsdecls={
            "wsdl": _WSDL_URI,
            "soap": _WSDL_SOAP_URI,
            "xsd": XSD_URI,
            "SOAP-ENC": SOAP_ENC_URI,
            "tns": service.namespace,
        },
    )

    # -- <types>: structs + array wrappers -----------------------------
    w.start("wsdl:types")
    w.start(
        "xsd:schema", {"targetNamespace": service.namespace}
    )
    for struct in service.registry.structs():
        w.start("xsd:complexType", {"name": struct.name})
        w.start("xsd:sequence")
        for f in struct.fields:
            w.empty(
                "xsd:element", {"name": f.name, "type": f.xsd_type.qname.prefixed}
            )
        w.end()  # sequence
        w.end()  # complexType
    for ref, array in service.array_part_types().items():
        local = ref.rsplit(":", 1)[-1]
        element = array.element
        inner = (
            f"tns:{element.name}[]"
            if isinstance(element, StructType)
            else f"{element.qname.prefixed}[]"
        )
        w.start("xsd:complexType", {"name": local})
        w.start("xsd:complexContent")
        w.start("xsd:restriction", {"base": "SOAP-ENC:Array"})
        w.empty(
            "xsd:attribute",
            {"ref": "SOAP-ENC:arrayType", "wsdl:arrayType": inner},
        )
        w.end()
        w.end()
        w.end()
    w.end()  # schema
    w.end()  # types

    # -- <message> ------------------------------------------------------
    for op in service.operations:
        w.start("wsdl:message", {"name": f"{op.name}Request"})
        for part in op.inputs:
            w.empty("wsdl:part", {"name": part.name, "type": part.type_ref()})
        w.end()
        w.start("wsdl:message", {"name": f"{op.name}Response"})
        if op.output is not None:
            w.empty(
                "wsdl:part",
                {"name": op.output.name, "type": op.output.type_ref()},
            )
        w.end()

    # -- <portType> -------------------------------------------------------
    port_type = f"{service.name}PortType"
    w.start("wsdl:portType", {"name": port_type})
    for op in service.operations:
        w.start("wsdl:operation", {"name": op.name})
        if op.documentation:
            w.element("wsdl:documentation", op.documentation)
        w.empty("wsdl:input", {"message": f"tns:{op.name}Request"})
        w.empty("wsdl:output", {"message": f"tns:{op.name}Response"})
        w.end()
    w.end()

    # -- <binding> ----------------------------------------------------------
    binding = f"{service.name}Binding"
    w.start("wsdl:binding", {"name": binding, "type": f"tns:{port_type}"})
    w.empty(
        "soap:binding",
        {"style": "rpc", "transport": "http://schemas.xmlsoap.org/soap/http"},
    )
    for op in service.operations:
        w.start("wsdl:operation", {"name": op.name})
        w.empty(
            "soap:operation",
            {"soapAction": f"{service.namespace}#{op.name}"},
        )
        for io in ("input", "output"):
            w.start(f"wsdl:{io}")
            w.empty(
                "soap:body",
                {
                    "use": "encoded",
                    "namespace": service.namespace,
                    "encodingStyle": SOAP_ENC_URI,
                },
            )
            w.end()
        w.end()
    w.end()

    # -- <service> ---------------------------------------------------------
    w.start("wsdl:service", {"name": service.name})
    w.start("wsdl:port", {"name": f"{service.name}Port", "binding": f"tns:{binding}"})
    w.empty("soap:address", {"location": service.endpoint})
    w.end()
    w.end()

    w.end()  # definitions
    return w.getvalue()
