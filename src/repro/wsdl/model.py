"""WSDL service/operation model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import WSDLError
from repro.schema.composite import ArrayType, StructType
from repro.schema.registry import TypeRegistry
from repro.schema.types import XSDType

__all__ = ["OperationDef", "ServiceDef", "ParamDef"]

ParamType = Union[XSDType, StructType, ArrayType]


@dataclass(frozen=True, slots=True)
class ParamDef:
    """One named input/output part."""

    name: str
    ptype: ParamType

    def type_ref(self) -> str:
        """The WSDL ``type=`` reference for this part."""
        if isinstance(self.ptype, ArrayType):
            element = self.ptype.element
            inner = (
                f"tns:{element.name}"
                if isinstance(element, StructType)
                else element.qname.prefixed
            )
            return f"tns:ArrayOf_{inner.rsplit(':', 1)[-1]}"
        if isinstance(self.ptype, StructType):
            return f"tns:{self.ptype.name}"
        return self.ptype.qname.prefixed


@dataclass(frozen=True, slots=True)
class OperationDef:
    """One RPC operation: inputs and an optional output part."""

    name: str
    inputs: Tuple[ParamDef, ...]
    output: Optional[ParamDef] = None
    documentation: str = ""

    def __post_init__(self) -> None:
        names = [p.name for p in self.inputs]
        if len(set(names)) != len(names):
            raise WSDLError(f"operation {self.name!r} has duplicate part names")


@dataclass(slots=True)
class ServiceDef:
    """A named service in a target namespace with a set of operations."""

    name: str
    namespace: str
    operations: List[OperationDef] = field(default_factory=list)
    endpoint: str = "http://localhost/soap"
    registry: TypeRegistry = field(default_factory=TypeRegistry)

    def add(self, operation: OperationDef) -> OperationDef:
        if any(op.name == operation.name for op in self.operations):
            raise WSDLError(f"operation {operation.name!r} already defined")
        self.operations.append(operation)
        # Auto-register referenced struct types.
        for part in (*operation.inputs, *([operation.output] if operation.output else [])):
            ptype = part.ptype
            element = ptype.element if isinstance(ptype, ArrayType) else ptype
            if isinstance(element, StructType) and element.name not in self.registry:
                self.registry.register_struct(element)
        return operation

    def operation(self, name: str) -> OperationDef:
        for op in self.operations:
            if op.name == name:
                return op
        raise WSDLError(f"service {self.name!r} has no operation {name!r}")

    def array_part_types(self) -> Dict[str, ArrayType]:
        """Distinct array types referenced by any part (for <types>)."""
        out: Dict[str, ArrayType] = {}
        for op in self.operations:
            parts: Sequence[ParamDef] = (
                *op.inputs,
                *([op.output] if op.output else []),
            )
            for part in parts:
                if isinstance(part.ptype, ArrayType):
                    out[part.type_ref()] = part.ptype
        return out
