"""Client stub generation from a service definition.

``build_proxy(service, client)`` returns a :class:`ServiceProxy` whose
attributes are callables, one per operation.  A call builds the typed
:class:`~repro.soap.message.SOAPMessage` and sends it through the
supplied bSOAP client — so generated stubs get content and structural
matches for free when an application re-invokes an operation with
same-shaped arguments (the paper's stub-level deployment story).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.client import BSoapClient
from repro.core.stats import SendReport
from repro.errors import WSDLError
from repro.schema.descriptors import MessageDescriptor
from repro.soap.message import Parameter, SOAPMessage
from repro.wsdl.model import OperationDef, ServiceDef

__all__ = ["ServiceProxy", "build_proxy", "generate_descriptors"]


class _OperationStub:
    """One generated operation callable."""

    def __init__(
        self, service: ServiceDef, operation: OperationDef, client: BSoapClient
    ) -> None:
        self._service = service
        self._operation = operation
        self._client = client
        self.__name__ = operation.name
        self.__doc__ = operation.documentation or (
            f"Invoke {operation.name} on {service.name} "
            f"({', '.join(p.name for p in operation.inputs)})"
        )

    def __call__(self, **kwargs) -> SendReport:
        op = self._operation
        expected = {p.name for p in op.inputs}
        given = set(kwargs)
        if given != expected:
            missing = expected - given
            extra = given - expected
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            raise WSDLError(f"{op.name}: {'; '.join(detail)}")
        params = [Parameter(p.name, p.ptype, kwargs[p.name]) for p in op.inputs]
        message = SOAPMessage(op.name, self._service.namespace, params)
        return self._client.send(message)


class ServiceProxy:
    """Namespace object holding one stub per operation."""

    def __init__(
        self, service: ServiceDef, client: BSoapClient
    ) -> None:
        self._service = service
        self._client = client
        self._stubs: Dict[str, _OperationStub] = {}
        for op in service.operations:
            stub = _OperationStub(service, op, client)
            self._stubs[op.name] = stub
            setattr(self, op.name, stub)

    @property
    def client(self) -> BSoapClient:
        return self._client

    @property
    def service(self) -> ServiceDef:
        return self._service

    def operations(self) -> Dict[str, Callable[..., SendReport]]:
        return dict(self._stubs)


def build_proxy(
    service: ServiceDef, client: Optional[BSoapClient] = None
) -> ServiceProxy:
    """Generate a callable proxy for *service* over *client*."""
    return ServiceProxy(service, client or BSoapClient())


def generate_descriptors(service: ServiceDef) -> Dict[str, type]:
    """Generate message descriptor classes for every operation.

    The server-side twin of :func:`build_proxy`: one
    :class:`~repro.schema.descriptors.MessageDescriptor` subclass per
    operation, keyed by operation name.  `SOAPService` hands the map
    to each session's differential deserializer, where it gates
    skip-scan seek-table compilation on the message matching its
    WSDL-declared shape — typed services get schema-checked skip-scan
    for free.
    """
    return {
        op.name: MessageDescriptor.from_operation(op)
        for op in service.operations
    }
