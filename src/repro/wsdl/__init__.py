"""Minimal WSDL 1.1 support.

WSDL is the companion standard the paper's introduction describes
("a precise description of a Web Service interface").  This package
provides a model of services/operations, XML emission of a WSDL 1.1
document (types, messages, portType, binding, service sections), and
client stub generation: callable proxies that build
:class:`~repro.soap.message.SOAPMessage` objects and send them through
a bSOAP client, so generated stubs transparently benefit from
differential serialization.
"""

from repro.wsdl.model import OperationDef, ServiceDef
from repro.wsdl.emit import emit_wsdl
from repro.wsdl.stubgen import ServiceProxy, build_proxy

__all__ = ["ServiceDef", "OperationDef", "emit_wsdl", "ServiceProxy", "build_proxy"]
