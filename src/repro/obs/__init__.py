"""``repro.obs`` — observability for the differential send path.

The paper's argument is quantitative: *which* match level a call hit
and how many bytes were rewritten / shifted / resent decide whether
differential serialization paid off.  This package makes those facts
observable on a live system without scattering ad-hoc counters:

* :class:`~repro.obs.trace.RecordingTracer` — structured spans
  (``serialize``, ``match-classify``, ``rewrite``, ``shift``,
  ``stuff``, ``steal``, ``overlay``, ``send``, ``recv``) with
  template-id / match-level / dirty-count attributes;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters and
  histograms (calls per match level, bytes, rewrite work, latency)
  aggregated across a :class:`~repro.runtime.pool.ClientPool`, a
  :class:`~repro.runtime.pipeline.PipelinedSender`, or a
  :class:`~repro.runtime.sessions.ServerSessionManager`;
* :mod:`~repro.obs.export` — Prometheus text format (served by
  ``HTTPSoapServer`` under ``GET /metrics``) and the standard
  ``repro-bench-result/1`` JSON.

The :class:`Observability` facade bundles one tracer + one registry
and owns the hot-path recording helpers.  The default is the shared
:data:`NULL_OBS`: every guarded site then costs exactly one attribute
load and branch (``if obs.enabled:``), verified by the overhead guard
in ``tests/test_obs_overhead.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_NAMES,
    NullTracer,
    RecordingTracer,
    Span,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stats import SendReport

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "RecordingTracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SPAN_NAMES",
]

#: Expansion-stat field → ``mode`` label on ``repro_expansions_total``.
_EXPANSION_MODES = (
    ("shifts_inplace", "inplace"),
    ("reallocs", "realloc"),
    ("splits", "split"),
    ("steals", "steal"),
)


class Observability:
    """One tracer + one metrics registry, with recording helpers.

    Components (client, channel, pool, sessions, service) hold an
    ``Observability`` and call its ``record_*`` helpers at the same
    sites that update their legacy counters — which is what makes the
    Prometheus totals reconcile exactly with
    :class:`~repro.core.stats.ClientStats` and the session manager's
    merged counters.

    ``enabled`` is a plain attribute (computed once) so the hot path
    can guard with a single load + branch.
    """

    __slots__ = (
        "tracer",
        "metrics",
        "enabled",
        "_sends",
        "_send_bytes",
        "_send_duration",
        "_values_rewritten",
        "_tag_shifts",
        "_pad_bytes",
        "_expansions",
        "_buffer_bytes_moved",
        "_templates_built",
        "_rollbacks",
        "_forced_full",
        "_call_latency",
        "_call_retries",
        "_plan_events",
        "_plan_spliced",
        "_delta_frames",
        "_delta_bytes_saved",
        "_skipscan_events",
        "_bytes_sent",
        "_bytes_received",
        "_overload_events",
        "_admission",
        "_state_bytes",
    )

    def __init__(
        self,
        tracer: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.enabled = bool(getattr(self.tracer, "enabled", False)) or (
            metrics is not None
        )
        if metrics is not None:
            self._sends = metrics.counter(
                "repro_sends_total",
                "Client sends by match level",
                ("kind",),
            )
            self._send_bytes = metrics.counter(
                "repro_send_bytes_total",
                "Payload bytes sent by match level",
                ("kind",),
            )
            self._send_duration = metrics.histogram(
                "repro_send_duration_seconds",
                "Client-side serialize+transmit time by match level",
                ("kind",),
            )
            self._values_rewritten = metrics.counter(
                "repro_values_rewritten_total",
                "Dirty values re-serialized by the differential rewrite",
            )
            self._tag_shifts = metrics.counter(
                "repro_tag_shifts_total",
                "Closing-tag rewrites (value length changed in its field)",
            )
            self._pad_bytes = metrics.counter(
                "repro_pad_bytes_total",
                "Whitespace pad bytes written (shrinks + stuffing upkeep)",
            )
            self._expansions = metrics.counter(
                "repro_expansions_total",
                "Field expansions by resolution mode",
                ("mode",),
            )
            self._buffer_bytes_moved = metrics.counter(
                "repro_buffer_bytes_shifted_total",
                "Bytes memmoved by chunk-tail shifts (cumulative)",
            )
            self._templates_built = metrics.counter(
                "repro_templates_built_total",
                "Full template serializations (first-time + resync)",
            )
            self._rollbacks = metrics.counter(
                "repro_rollbacks_total",
                "Send epochs rolled back after transport failures",
            )
            self._forced_full = metrics.counter(
                "repro_forced_full_sends_total",
                "Forced full serializations resynchronizing a peer",
            )
            self._call_latency = metrics.histogram(
                "repro_call_latency_seconds",
                "Round-trip RPC latency (send + wait + decode)",
            )
            self._call_retries = metrics.counter(
                "repro_call_retries_total",
                "Failed attempts that were retried",
            )
            self._plan_events = metrics.counter(
                "repro_plan_events_total",
                "Rewrite-plan cache activity (hit / miss / invalidation)",
                ("event",),
            )
            self._plan_spliced = metrics.counter(
                "repro_plan_spliced_values_total",
                "Values written via strided splice runs of cached plans",
            )
            self._delta_frames = metrics.counter(
                "repro_delta_frames_total",
                "Delta-frame protocol events by outcome "
                "(encoded / fallback-* client-side, applied / resync-* "
                "server-side)",
                ("outcome",),
            )
            self._delta_bytes_saved = metrics.counter(
                "repro_delta_bytes_saved_total",
                "Document bytes not sent thanks to delta frames "
                "(doc_len - frame size, summed)",
            )
            self._bytes_sent = metrics.counter(
                "repro_bytes_sent_total",
                "Payload bytes sent on the wire (tx; frames at frame size)",
            )
            self._bytes_received = metrics.counter(
                "repro_bytes_received_total",
                "Payload bytes received from the wire (rx)",
            )
            self._skipscan_events = metrics.counter(
                "repro_skipscan_events_total",
                "Skip-scan deserializer events (compiled / hit / "
                "hit-vector / fallback-* / *-drift / uncompilable-*)",
                ("event",),
            )
            self._overload_events = metrics.counter(
                "repro_overload_events_total",
                "Pressure-relief sheds by tier (mirror / seektable / "
                "session) plus over-budget ticks when nothing is "
                "sheddable",
                ("tier",),
            )
            self._admission = metrics.counter(
                "repro_admission_total",
                "Admission controller decisions by outcome (admitted / "
                "rejected-concurrency / rejected-queue / rejected-rate)",
                ("outcome",),
            )
            self._state_bytes = metrics.gauge(
                "repro_state_bytes",
                "Live per-session server state by component (deser "
                "templates / seek tables / delta mirrors / response "
                "templates), summed across sessions",
                ("component",),
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def recording(cls, capacity: Optional[int] = None) -> "Observability":
        """Tracer + metrics, both live (tests, debugging sessions)."""
        return cls(RecordingTracer(capacity), MetricsRegistry())

    @classmethod
    def metrics_only(cls) -> "Observability":
        """Metrics without span recording — the server default."""
        return cls(None, MetricsRegistry())

    # ------------------------------------------------------------------
    # client-side recording (call sites mirror ClientStats updates)
    # ------------------------------------------------------------------
    def record_send(self, report: "SendReport") -> None:
        """Fold one :class:`SendReport` into the counters.

        Called exactly where ``ClientStats.record`` is, so
        ``repro_sends_total{kind}`` reconciles with ``stats.by_kind``.
        """
        if self.metrics is None:
            return
        kind = report.match_kind.value
        self._sends.inc(1, kind=kind)
        self._send_bytes.inc(report.bytes_sent, kind=kind)
        self._bytes_sent.inc(report.bytes_sent)
        rewrite = report.rewrite
        if rewrite.values_rewritten:
            self._values_rewritten.inc(rewrite.values_rewritten)
        if rewrite.tag_shifts:
            self._tag_shifts.inc(rewrite.tag_shifts)
        if rewrite.pad_bytes:
            self._pad_bytes.inc(rewrite.pad_bytes)
        for attr, mode in _EXPANSION_MODES:
            n = getattr(rewrite, attr)
            if n:
                self._expansions.inc(n, mode=mode)
        if rewrite.plan_hits:
            self._plan_events.inc(rewrite.plan_hits, event="hit")
        if rewrite.plan_misses:
            self._plan_events.inc(rewrite.plan_misses, event="miss")
        if rewrite.plan_invalidations:
            self._plan_events.inc(rewrite.plan_invalidations, event="invalidation")
        if rewrite.plan_spliced:
            self._plan_spliced.inc(rewrite.plan_spliced)
        if report.forced_full:
            self._forced_full.inc()

    def record_send_duration(self, kind: str, duration_s: float) -> None:
        if self.metrics is not None:
            self._send_duration.observe(duration_s, kind=kind)

    def record_template_built(self) -> None:
        if self.metrics is not None:
            self._templates_built.inc()

    def record_rollback(self) -> None:
        if self.metrics is not None:
            self._rollbacks.inc()

    def record_buffer_bytes_moved(self, n: int) -> None:
        if self.metrics is not None and n > 0:
            self._buffer_bytes_moved.inc(n)

    def record_delta_frame(self, outcome: str, bytes_saved: int = 0) -> None:
        """One delta-protocol event (client encode or server apply)."""
        if self.metrics is None:
            return
        self._delta_frames.inc(1, outcome=outcome)
        if bytes_saved > 0:
            self._delta_bytes_saved.inc(bytes_saved)

    # ------------------------------------------------------------------
    # channel-side recording
    # ------------------------------------------------------------------
    def record_call(self, duration_s: float, retries: int = 0) -> None:
        if self.metrics is None:
            return
        self._call_latency.observe(duration_s)
        if retries:
            self._call_retries.inc(retries)

    def record_bytes_received(self, n: int) -> None:
        if self.metrics is not None and n > 0:
            self._bytes_received.inc(n)

    # ------------------------------------------------------------------
    # overload-control recording
    # ------------------------------------------------------------------
    def record_overload(self, tier: str) -> None:
        """One pressure-relief event (a shed, or an over-budget tick).

        Also emits an ``overload`` span when tracing is on, carrying
        the tier — the chaos harness and tests use the span stream to
        check every degradation is observable.
        """
        if self.metrics is not None:
            self._overload_events.inc(1, tier=tier)
        if getattr(self.tracer, "enabled", False):
            self.tracer.emit("overload", tier=tier)

    def record_admission(self, outcome: str) -> None:
        if self.metrics is not None:
            self._admission.inc(1, outcome=outcome)

    def record_state_bytes(self, component: str, nbytes: int) -> None:
        """Push a live state-size gauge sample for *component*."""
        if self.metrics is not None:
            self._state_bytes.set(nbytes, component=component)

    # ------------------------------------------------------------------
    # server-side deserializer recording
    # ------------------------------------------------------------------
    def record_skipscan(self, event: str) -> None:
        """One skip-scan deserializer event (see ``docs/skipscan.md``)."""
        if self.metrics is not None:
            self._skipscan_events.inc(1, event=event)


#: The shared no-op default: tracing disabled, no registry.
NULL_OBS = Observability()
