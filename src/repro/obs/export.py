"""Exporters: Prometheus text format and the repo's bench-result JSON.

Two render targets for one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4), served by ``HTTPSoapServer`` under ``GET /metrics``
  so a live pool/server can be scraped;
* :func:`metrics_rows` / :func:`metrics_result` — flat scalar rows in
  the existing ``repro-bench-result/1`` document shape (see
  :mod:`repro.bench.resultjson`), so metric snapshots land in the same
  tooling as every bench.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "metrics_rows", "metrics_result", "parse_prometheus"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Counters are almost always integral; render them without the
    # noise of a trailing ``.0`` (Prometheus accepts both).
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            samples = metric.samples()
            if not samples and not metric.labelnames:
                samples = [({}, 0.0)]
            for labels, value in samples:
                lines.append(
                    f"{metric.name}{_labels_text(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, cumulative, total, count in metric.snapshot():
                for bound, cum in zip(metric.buckets, cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = repr(float(bound))
                    lines.append(
                        f"{metric.name}_bucket{_labels_text(bucket_labels)} {cum}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{metric.name}_bucket{_labels_text(inf_labels)} {count}"
                )
                lines.append(
                    f"{metric.name}_sum{_labels_text(labels)} "
                    f"{_format_value(total)}"
                )
                lines.append(f"{metric.name}_count{_labels_text(labels)} {count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{"name{labels}": value}``.

    The inverse of :func:`render_prometheus` for tests and the
    reconciliation checks — *not* a general Prometheus parser (no
    escaped-quote label values).
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value)
    return out


# ----------------------------------------------------------------------
# bench-result JSON
# ----------------------------------------------------------------------
def metrics_rows(registry: MetricsRegistry) -> List[Dict[str, object]]:
    """Flatten the registry into scalar rows (one per sample).

    Row shape: ``{"metric", "type", "labels", "value"}`` plus
    ``{"sum", "count"}`` for histograms (bucket detail stays in the
    Prometheus rendering; the JSON export targets dataframes).
    ``labels`` is the canonical ``k=v,...`` text (empty for none).
    """
    rows: List[Dict[str, object]] = []
    for metric in registry.metrics():
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                rows.append(
                    {
                        "metric": metric.name,
                        "type": metric.kind,
                        "labels": ",".join(f"{k}={v}" for k, v in labels.items()),
                        "value": value,
                    }
                )
        elif isinstance(metric, Histogram):
            for labels, _cumulative, total, count in metric.snapshot():
                rows.append(
                    {
                        "metric": metric.name,
                        "type": metric.kind,
                        "labels": ",".join(f"{k}={v}" for k, v in labels.items()),
                        "value": total / count if count else 0.0,
                        "sum": total,
                        "count": count,
                    }
                )
    return rows


def metrics_result(
    registry: MetricsRegistry,
    bench: str = "metrics_snapshot",
    params: Optional[Mapping[str, object]] = None,
    notes: str = "",
) -> Dict[str, object]:
    """A ``repro-bench-result/1`` document holding a metrics snapshot."""
    from repro.bench.resultjson import make_metrics_result

    return make_metrics_result(
        metrics_rows(registry), bench=bench, params=params, notes=notes
    )
