"""Structured span tracing for the differential send path.

A *span* is one completed unit of mechanical work on the hot path —
``serialize``, ``match-classify``, ``rewrite``, ``shift``, ``stuff``,
``steal``, ``overlay``, ``send``, ``recv`` — carrying the attributes
the paper's performance argument turns on (template id, match level,
dirty count, bytes).  Tracing answers the *why* question a counter
cannot: "this call was fast because it content-matched template 17".

Design constraints (see ``docs/observability.md``):

* **Zero disabled cost.**  The default tracer is the shared
  :data:`NULL_TRACER`; instrumented code guards every emission with a
  single ``enabled`` attribute check, so a build running with tracing
  off pays one boolean test per guarded site and allocates nothing.
* **Emit-on-completion.**  Spans are recorded as one ``emit()`` call
  after the work finishes, with the duration measured by the call
  site (only when enabled).  There is no open-span lifecycle to
  balance on error paths in the hot loop.
* **Thread safety.**  A :class:`RecordingTracer` may be shared by a
  pipelined sender/receiver pair or a server's connection threads;
  the span list is appended under a lock and snapshotted on read.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SPAN_NAMES",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
]

#: The span taxonomy (one name per hot-path stage).  Emitting an
#: unknown name is allowed — the taxonomy is documentation, not a
#: schema — but everything the core emits is listed here.
SPAN_NAMES = (
    "serialize",  # full template build (first-time send cost)
    "match-classify",  # pre-send match classification
    "rewrite",  # differential rewrite pass over dirty entries
    "shift",  # one field expansion resolved by moving the chunk tail
    "stuff",  # whitespace stuffing applied at template build
    "steal",  # one field expansion resolved from neighbor slack
    "overlay",  # one chunk-overlay streamed send
    "send",  # one complete client send (any match level)
    "recv",  # one response received and decoded
    "delta-encode",  # one binary delta frame encoded from the dirty set
    "delta-apply",  # one delta frame applied to a server mirror
    "skipscan",  # one skip-scan apply over a session's seek table
    "overload",  # one pressure-relief shed (tier attr) or budget tick
)


class Span:
    """One completed, immutable trace record."""

    __slots__ = ("name", "duration_s", "attrs")

    def __init__(self, name: str, duration_s: float, attrs: Dict[str, object]) -> None:
        self.name = name
        self.duration_s = duration_s
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = " ".join(f"{k}={v!r}" for k, v in self.attrs.items())
        return f"<span {self.name} {self.duration_s * 1e6:.1f}us {body}>"


class NullTracer:
    """The do-nothing tracer every component holds by default.

    ``enabled`` is a plain class attribute so the hot-path guard
    (``if obs.tracer.enabled:``) is an attribute load and a branch —
    the *entire* cost of disabled tracing.
    """

    __slots__ = ()
    enabled = False

    def emit(self, name: str, duration_s: float = 0.0, **attrs: object) -> None:
        """No-op (never called by guarded sites; safe if called)."""

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


#: Shared singleton — stateless, safe to hand to every client.
NULL_TRACER = NullTracer()


class RecordingTracer:
    """In-memory tracer for tests, debugging, and offline analysis.

    Parameters
    ----------
    capacity:
        Maximum retained spans; beyond it the *oldest* spans are
        dropped (the tail of a long run is usually what matters).
        ``None`` retains everything.
    """

    __slots__ = ("_spans", "_lock", "capacity", "dropped")
    enabled = True

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self.capacity = capacity
        #: Spans discarded to honor *capacity*.
        self.dropped = 0

    def emit(self, name: str, duration_s: float = 0.0, **attrs: object) -> None:
        span = Span(name, duration_s, attrs)
        with self._lock:
            self._spans.append(span)
            if self.capacity is not None and len(self._spans) > self.capacity:
                overflow = len(self._spans) - self.capacity
                del self._spans[:overflow]
                self.dropped += overflow

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Snapshot of recorded spans, optionally filtered by name."""
        with self._lock:
            snapshot = list(self._spans)
        if name is None:
            return snapshot
        return [s for s in snapshot if s.name == name]

    def last(self, name: str) -> Optional[Span]:
        """Most recent span named *name* (``None`` when absent)."""
        with self._lock:
            for span in reversed(self._spans):
                if span.name == name:
                    return span
        return None

    def counts(self) -> Dict[str, int]:
        """Span count per name (quick sanity checks in tests)."""
        out: Dict[str, int] = {}
        for span in self.spans():
            out[span.name] = out.get(span.name, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
