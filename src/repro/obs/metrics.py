"""Counters and histograms for the differential send path.

A :class:`MetricsRegistry` is the aggregation point the runtime layer
shares: every pooled channel, pipelined worker, and server session
increments the *same* registry, so the totals reconcile with the
ad-hoc counters (:class:`~repro.core.stats.ClientStats`,
``ServerSessionManager.merged_counters``) by construction — both are
incremented at the same call sites.

Model (deliberately a small subset of Prometheus):

* **Counter** — monotonically increasing float, optionally labelled.
* **Histogram** — cumulative buckets + sum + count, optionally
  labelled; bucket bounds are fixed at creation.

Metrics are thread-safe: a registry owns one lock shared by all its
metrics (increments are far too cheap to justify finer locking).
Registries are never reset — retired sessions and replaced channels
keep counting, which is what makes reconciliation exact.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bounds, tuned for loopback SOAP call latencies
#: (seconds): 50us .. ~2.5s, roughly ×3 per step.
DEFAULT_LATENCY_BUCKETS = (
    0.00005,
    0.00015,
    0.0005,
    0.0015,
    0.005,
    0.015,
    0.05,
    0.15,
    0.5,
    1.5,
)

LabelValues = Tuple[str, ...]


def _label_key(
    metric_name: str, labelnames: Tuple[str, ...], labels: Dict[str, object]
) -> LabelValues:
    """Validate + order label kwargs into the storage key."""
    if len(labels) != len(labelnames):
        raise ValueError(
            f"{metric_name}: expected labels {labelnames}, got {tuple(labels)}"
        )
    try:
        return tuple(str(labels[name]) for name in labelnames)
    except KeyError as exc:
        raise ValueError(
            f"{metric_name}: missing label {exc.args[0]!r} (have {labelnames})"
        ) from None


class Counter:
    """A monotonically increasing, optionally labelled counter."""

    kind = "counter"

    __slots__ = ("name", "help", "labelnames", "_values", "_lock")

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - mirrors prometheus_client
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._values: Dict[LabelValues, float] = {}
        self._lock = lock

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        """``[(labels_dict, value)]`` snapshot, insertion-ordered."""
        with self._lock:
            items = list(self._values.items())
        return [(dict(zip(self.labelnames, key)), value) for key, value in items]


class Gauge:
    """A settable, optionally labelled value (Prometheus gauge).

    Unlike :class:`Counter` it may move in either direction — live
    state sizes (session-state bytes, mirrors held, sessions live) are
    the intended use.  ``set`` overwrites; there is no ``inc`` because
    every caller in this codebase derives the value from an
    authoritative ledger and pushes snapshots.
    """

    kind = "gauge"

    __slots__ = ("name", "help", "labelnames", "_values", "_lock")

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - mirrors prometheus_client
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._values: Dict[LabelValues, float] = {}
        self._lock = lock

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: object) -> float:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        """``[(labels_dict, value)]`` snapshot, insertion-ordered."""
        with self._lock:
            items = list(self._values.items())
        return [(dict(zip(self.labelnames, key)), value) for key, value in items]


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    __slots__ = ("name", "help", "labelnames", "buckets", "_states", "_lock")

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002
        labelnames: Tuple[str, ...],
        buckets: Sequence[float],
        lock: threading.Lock,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.buckets = bounds
        self._states: Dict[LabelValues, _HistogramState] = {}
        self._lock = lock

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.buckets))
            # First bucket whose bound admits the value (non-cumulative
            # storage; cumulated at render time).
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state.bucket_counts[i] += 1
                    break
            state.total += value
            state.count += 1

    def snapshot(
        self,
    ) -> List[Tuple[Dict[str, str], List[int], float, int]]:
        """``[(labels, cumulative_bucket_counts, sum, count)]``."""
        with self._lock:
            items = [
                (key, list(st.bucket_counts), st.total, st.count)
                for key, st in self._states.items()
            ]
        out = []
        for key, counts, total, count in items:
            cumulative: List[int] = []
            running = 0
            for c in counts:
                running += c
                cumulative.append(running)
            out.append((dict(zip(self.labelnames, key)), cumulative, total, count))
        return out

    def count_of(self, **labels: object) -> int:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            state = self._states.get(key)
            return 0 if state is None else state.count


class MetricsRegistry:
    """Get-or-create metric registry with a stable render order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Shared value lock — metric mutation and registry mutation are
        # both rare enough that one lock serves.
        self._metrics: "Dict[str, Counter | Gauge | Histogram]" = {}

    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help, tuple(labelnames), self._lock)
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, help, tuple(labelnames), self._lock)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name,
            Histogram,
            lambda: Histogram(name, help, tuple(labelnames), buckets, self._lock),
        )

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    # ------------------------------------------------------------------
    def get(self, name: str) -> "Optional[Counter | Gauge | Histogram]":
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> "List[Counter | Gauge | Histogram]":
        """Registration-ordered snapshot of every metric."""
        with self._lock:
            return list(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics
