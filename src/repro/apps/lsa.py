"""The Linear System Analyzer (LSA) workload.

    "Scientists can connect various components in a cycle to
    repeatedly refine and re-calculate the solution vector until the
    required convergence condition is met.  Since the size and form of
    the array does not change over different iterations, consecutive
    messages exhibit perfect structural matches."  (§3.4)

This module implements a small problem-solving-environment model: a
solver component iterates on ``Ax = b`` (Jacobi or conjugate-gradient
via SciPy when available) and ships the evolving solution vector to a
monitor component over SOAP after every refinement step.  Because the
vector's length never changes, every send after the first is a
structural match; entries that converged stop changing, so the dirty
fraction shrinks as the solve proceeds — differential serialization's
best case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.client import BSoapClient
from repro.core.stats import MatchKind
from repro.schema.composite import ArrayType
from repro.schema.types import DOUBLE
from repro.soap.message import Parameter, SOAPMessage

__all__ = ["jacobi_step", "make_test_system", "LSAReport", "LinearSystemAnalyzer"]


def make_test_system(
    n: int, seed: int = 0, density: float = 0.05
) -> Tuple[np.ndarray, np.ndarray]:
    """A diagonally dominant dense system (guaranteed Jacobi-convergent)."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) * (rng.random((n, n)) < density)
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    b = rng.random(n)
    return a, b


def jacobi_step(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One Jacobi refinement: ``x' = D^{-1}(b − R x)``."""
    diag = np.diag(a)
    r = a - np.diagflat(diag)
    return (b - r @ x) / diag


@dataclass(slots=True)
class LSAReport:
    """Outcome of one analyzer run."""

    iterations: int
    converged: bool
    final_residual: float
    sends: int
    match_counts: Dict[MatchKind, int] = field(default_factory=dict)
    values_rewritten_total: int = 0
    bytes_sent_total: int = 0

    @property
    def structural_fraction(self) -> float:
        """Fraction of sends that reused the template structurally."""
        reused = sum(
            c
            for k, c in self.match_counts.items()
            if k in (MatchKind.PERFECT_STRUCTURAL, MatchKind.CONTENT_MATCH)
        )
        return reused / self.sends if self.sends else 0.0


class LinearSystemAnalyzer:
    """Solver component shipping its solution vector over SOAP.

    Parameters
    ----------
    client:
        The bSOAP client carrying solution updates to the monitor.
    method:
        ``"jacobi"`` (builtin) or ``"cg"`` (SciPy conjugate gradient,
        one iteration per outer step).
    freeze_threshold:
        Per-entry update smaller than this is suppressed — the entry
        is considered converged and its serialized value stays as-is,
        shrinking the dirty set over time (and keeping serialized
        widths stable).
    """

    NAMESPACE = "urn:lsa:solution-exchange"

    def __init__(
        self,
        client: Optional[BSoapClient] = None,
        *,
        method: str = "jacobi",
        freeze_threshold: float = 1e-12,
    ) -> None:
        if method not in ("jacobi", "cg"):
            raise ValueError(f"unknown method {method!r}")
        self.client = client or BSoapClient()
        self.method = method
        self.freeze_threshold = freeze_threshold

    # ------------------------------------------------------------------
    def _cg_step(
        self, a: np.ndarray, b: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        from scipy.sparse.linalg import cg

        result, _info = cg(a, b, x0=x, maxiter=1, rtol=0.0, atol=0.0)
        return result

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        tol: float = 1e-9,
        max_iters: int = 200,
    ) -> LSAReport:
        """Iterate to convergence, sending the vector each step."""
        n = len(b)
        x = np.zeros(n)
        message = SOAPMessage(
            "putSolution", self.NAMESPACE, [Parameter("x", ArrayType(DOUBLE), x)]
        )
        call = self.client.prepare(message)
        tracked = call.tracked("x")
        counts: Dict[MatchKind, int] = {}
        rewritten = 0
        bytes_total = 0
        sends = 0
        converged = False
        residual = float(np.linalg.norm(a @ x - b))

        step = jacobi_step if self.method == "jacobi" else self._cg_step
        for iteration in range(1, max_iters + 1):
            new_x = step(a, b, x)
            delta = np.abs(new_x - x)
            moved = np.flatnonzero(delta > self.freeze_threshold)
            if len(moved):
                tracked.update(moved, new_x[moved])
                x[moved] = new_x[moved]
            report = call.send()
            sends += 1
            counts[report.match_kind] = counts.get(report.match_kind, 0) + 1
            rewritten += report.rewrite.values_rewritten
            bytes_total += report.bytes_sent
            residual = float(np.linalg.norm(a @ x - b))
            if residual < tol:
                converged = True
                break

        return LSAReport(
            iterations=iteration,
            converged=converged,
            final_residual=residual,
            sends=sends,
            match_counts=counts,
            values_rewritten_total=rewritten,
            bytes_sent_total=bytes_total,
        )
