"""The LSA component model: a problem-solving-environment pipeline.

The paper describes the Linear System Analyzer as a PSE whose
scientists "develop solution strategies by dynamically swapping out
components that encapsulate linear algebra libraries" and "connect
various components in a cycle to repeatedly refine and re-calculate
the solution vector" (§3.4).  This module models that architecture:

* :class:`Component` — a named stage with typed SOAP input/output,
* concrete components: :class:`MatrixSource`, :class:`JacobiSmoother`,
  :class:`ResidualMonitor`, :class:`GaussSeidelSmoother`,
* :class:`SolverCycle` — wires components into the refine loop; every
  inter-component hand-off travels as a SOAP message through a bSOAP
  client, one client (→ one template set) per directed edge, exactly
  like stubs between separate Grid services.

Because the solution vector's shape is fixed, every edge settles into
structural matches after its first transfer — the module-level claim
the paper makes for the LSA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.core.stats import MatchKind, SendReport
from repro.schema.composite import ArrayType
from repro.schema.types import DOUBLE
from repro.soap.message import Parameter, SOAPMessage
from repro.transport.base import Transport

__all__ = [
    "Component",
    "MatrixSource",
    "JacobiSmoother",
    "GaussSeidelSmoother",
    "ResidualMonitor",
    "SolverCycle",
    "CycleReport",
]

NAMESPACE = "urn:lsa:components"


class Component:
    """A pipeline stage consuming and producing solution vectors."""

    #: Operation name used for this component's incoming messages.
    operation = "putVector"

    def __init__(self, name: str) -> None:
        self.name = name
        self.received = 0

    def process(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def accept(self, x: np.ndarray) -> np.ndarray:
        self.received += 1
        return self.process(x)


class MatrixSource(Component):
    """Holds the system ``Ax = b`` and produces the initial guess."""

    def __init__(self, a: np.ndarray, b: np.ndarray, name: str = "source") -> None:
        super().__init__(name)
        self.a = a
        self.b = b

    def initial_guess(self) -> np.ndarray:
        return np.zeros_like(self.b)

    def process(self, x: np.ndarray) -> np.ndarray:
        return x  # pass-through; the source only seeds the cycle

    def residual(self, x: np.ndarray) -> float:
        return float(np.linalg.norm(self.a @ x - self.b))


class JacobiSmoother(Component):
    """One Jacobi sweep per visit."""

    def __init__(self, source: MatrixSource, name: str = "jacobi") -> None:
        super().__init__(name)
        self._source = source

    def process(self, x: np.ndarray) -> np.ndarray:
        a, b = self._source.a, self._source.b
        diag = np.diag(a)
        r = a - np.diagflat(diag)
        return (b - r @ x) / diag


class GaussSeidelSmoother(Component):
    """One Gauss–Seidel sweep per visit (swappable alternative)."""

    def __init__(self, source: MatrixSource, name: str = "gauss-seidel") -> None:
        super().__init__(name)
        self._source = source

    def process(self, x: np.ndarray) -> np.ndarray:
        a, b = self._source.a, self._source.b
        out = x.copy()
        n = len(b)
        for i in range(n):
            out[i] = (b[i] - a[i, :i] @ out[:i] - a[i, i + 1 :] @ out[i + 1 :]) / a[
                i, i
            ]
        return out


class ResidualMonitor(Component):
    """Records convergence history; does not modify the vector."""

    def __init__(self, source: MatrixSource, name: str = "monitor") -> None:
        super().__init__(name)
        self._source = source
        self.history: List[float] = []

    def process(self, x: np.ndarray) -> np.ndarray:
        self.history.append(self._source.residual(x))
        return x

    @property
    def latest(self) -> float:
        return self.history[-1] if self.history else float("inf")


@dataclass(slots=True)
class CycleReport:
    """Outcome of a :class:`SolverCycle` run."""

    cycles: int
    converged: bool
    final_residual: float
    transfers: int
    match_counts: Dict[MatchKind, int] = field(default_factory=dict)
    values_rewritten: int = 0

    @property
    def reuse_fraction(self) -> float:
        reused = self.transfers - self.match_counts.get(MatchKind.FIRST_TIME, 0)
        return reused / self.transfers if self.transfers else 0.0


class SolverCycle:
    """Components wired in a refine cycle; SOAP on every edge.

    Parameters
    ----------
    components:
        Visited in order each cycle; the last feeds back to the first.
    transport_factory:
        Called once per directed edge to build that edge's transport
        (default: in-process null sinks).
    """

    def __init__(
        self,
        components: List[Component],
        *,
        transport_factory: Optional[Callable[[], Optional[Transport]]] = None,
        policy: Optional[DiffPolicy] = None,
        freeze_threshold: float = 0.0,
    ) -> None:
        if len(components) < 2:
            raise ValueError("a cycle needs at least two components")
        self.components = components
        factory = transport_factory or (lambda: None)
        self.edges: Dict[Tuple[str, str], BSoapClient] = {}
        for src, dst in self._edge_pairs():
            self.edges[(src.name, dst.name)] = BSoapClient(factory(), policy)
        self.freeze_threshold = freeze_threshold
        self._edge_state: Dict[Tuple[str, str], np.ndarray] = {}

    def _edge_pairs(self):
        comps = self.components
        for i, src in enumerate(comps):
            yield src, comps[(i + 1) % len(comps)]

    # ------------------------------------------------------------------
    def _transfer(self, src: Component, dst: Component, x: np.ndarray) -> SendReport:
        """Ship *x* from *src* to *dst* over the edge's bSOAP client."""
        client = self.edges[(src.name, dst.name)]
        key = (src.name, dst.name)
        if self.freeze_threshold > 0.0 and key in self._edge_state:
            prev = self._edge_state[key]
            moved = np.abs(x - prev) > self.freeze_threshold
            x = np.where(moved, x, prev)
        self._edge_state[key] = x.copy()
        message = SOAPMessage(
            dst.operation, NAMESPACE, [Parameter("x", ArrayType(DOUBLE), x)]
        )
        return client.send(message)

    def run(self, *, tol: float = 1e-9, max_cycles: int = 100) -> CycleReport:
        """Drive the cycle until the monitor reports convergence."""
        source = next(
            (c for c in self.components if isinstance(c, MatrixSource)), None
        )
        if source is None:
            raise ValueError("cycle must contain a MatrixSource")
        monitor = next(
            (c for c in self.components if isinstance(c, ResidualMonitor)), None
        )

        x = source.initial_guess()
        counts: Dict[MatchKind, int] = {}
        transfers = 0
        rewritten = 0
        converged = False
        cycles = 0
        for cycles in range(1, max_cycles + 1):
            for src, dst in self._edge_pairs():
                report = self._transfer(src, dst, x)
                transfers += 1
                rewritten += report.rewrite.values_rewritten
                counts[report.match_kind] = counts.get(report.match_kind, 0) + 1
                x = dst.accept(x)
            residual = (
                monitor.latest if monitor is not None else source.residual(x)
            )
            if residual < tol:
                converged = True
                break
        return CycleReport(
            cycles=cycles,
            converged=converged,
            final_residual=source.residual(x),
            transfers=transfers,
            match_counts=counts,
            values_rewritten=rewritten,
        )
