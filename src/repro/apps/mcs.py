"""The Metadata Catalog Service (MCS) workload.

    "A general metadata schema is used to specify all the attributes
    associated with each file.  ...  Since each request sent by a user
    conforms to the metadata schema, the format of the SOAP payload is
    the same for each request.  bSOAP perfect structural match can
    therefore be used to improve the performance of MCS."  (§3.4)

This module provides the backend (an in-memory metadata store with a
fixed attribute schema and simple exact/range queries — the paper's
MySQL stand-in) and :class:`MCSClient`, which issues ``addRecord`` and
``queryRecords`` SOAP requests whose payload structure never changes:
one parameter per schema attribute.  String attributes vary in width
between requests, so MCS traffic exercises shifting/stealing; the
numeric attributes exercise plain structural matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.client import BSoapClient
from repro.core.stats import SendReport
from repro.errors import SchemaError
from repro.schema.types import DOUBLE, INT, STRING, XSDType
from repro.soap.message import Parameter, SOAPMessage

__all__ = ["MCS_SCHEMA", "FileRecord", "MetadataCatalog", "MCSClient"]

#: The fixed metadata schema: attribute name → primitive type.
MCS_SCHEMA: Dict[str, XSDType] = {
    "logicalName": STRING,
    "owner": STRING,
    "collection": STRING,
    "sizeBytes": INT,
    "checksum": STRING,
    "creationTime": DOUBLE,  # epoch seconds
    "version": INT,
}


@dataclass(frozen=True, slots=True)
class FileRecord:
    """One catalogued file's metadata (matches :data:`MCS_SCHEMA`)."""

    logicalName: str
    owner: str
    collection: str
    sizeBytes: int
    checksum: str
    creationTime: float
    version: int

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in MCS_SCHEMA}


class MetadataCatalog:
    """In-memory metadata store with schema enforcement and queries."""

    def __init__(self) -> None:
        self._records: Dict[str, FileRecord] = {}
        self.adds = 0
        self.queries = 0

    # ------------------------------------------------------------------
    def add(self, record: FileRecord) -> None:
        """Insert or replace by logical name (schema-validated)."""
        for name, xsd_type in MCS_SCHEMA.items():
            value = getattr(record, name)
            if not isinstance(value, xsd_type.python_type):
                raise SchemaError(
                    f"attribute {name!r} must be {xsd_type.python_type.__name__}, "
                    f"got {type(value).__name__}"
                )
        self._records[record.logicalName] = record
        self.adds += 1

    def delete(self, logical_name: str) -> bool:
        self.adds += 1
        return self._records.pop(logical_name, None) is not None

    def get(self, logical_name: str) -> Optional[FileRecord]:
        return self._records.get(logical_name)

    def query(
        self,
        *,
        owner: Optional[str] = None,
        collection: Optional[str] = None,
        min_size: Optional[int] = None,
        max_size: Optional[int] = None,
    ) -> List[FileRecord]:
        """Exact/range query over the schema attributes."""
        self.queries += 1
        out = []
        for record in self._records.values():
            if owner is not None and record.owner != owner:
                continue
            if collection is not None and record.collection != collection:
                continue
            if min_size is not None and record.sizeBytes < min_size:
                continue
            if max_size is not None and record.sizeBytes > max_size:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self._records)


class MCSClient:
    """SOAP front end issuing schema-shaped requests through bSOAP.

    Every ``addRecord`` has the identical structure (one parameter per
    schema attribute), so after the first request the stub reuses its
    template; only the attribute values are rewritten.
    """

    NAMESPACE = "urn:mcs:metadata-catalog"

    def __init__(
        self,
        client: Optional[BSoapClient] = None,
        backend: Optional[MetadataCatalog] = None,
    ) -> None:
        self.client = client or BSoapClient()
        #: When a backend is attached the client applies each request
        #: locally too, so tests can verify end-to-end consistency.
        self.backend = backend
        self.reports: List[SendReport] = []

    # ------------------------------------------------------------------
    def _send(self, operation: str, values: Dict[str, object]) -> SendReport:
        params = [
            Parameter(name, MCS_SCHEMA[name], values[name]) for name in MCS_SCHEMA
        ]
        report = self.client.send(SOAPMessage(operation, self.NAMESPACE, params))
        self.reports.append(report)
        return report

    def add_record(self, record: FileRecord) -> SendReport:
        """Ship one addRecord request (fixed schema → template reuse)."""
        report = self._send("addRecord", record.as_dict())
        if self.backend is not None:
            self.backend.add(record)
        return report

    def query_by_owner(self, owner: str) -> Tuple[SendReport, List[FileRecord]]:
        """Ship a query request; evaluate locally when backed."""
        values = {
            "logicalName": "",
            "owner": owner,
            "collection": "",
            "sizeBytes": 0,
            "checksum": "",
            "creationTime": 0.0,
            "version": 0,
        }
        report = self._send("queryRecords", values)
        results = (
            self.backend.query(owner=owner) if self.backend is not None else []
        )
        return report, results

    # ------------------------------------------------------------------
    def match_histogram(self) -> Dict[str, int]:
        """Counts of send kinds across this client's lifetime."""
        out: Dict[str, int] = {}
        for report in self.reports:
            key = report.match_kind.value
            out[key] = out.get(key, 0) + 1
        return out
