"""Application workloads from the paper's §3.4.

Each module is an executable model of a Grid application the paper
argues benefits from differential serialization, wired to send its
traffic through a bSOAP client so the benefit is measurable:

* :mod:`repro.apps.lsa` — the Linear System Analyzer: components
  cycle a solution vector of fixed size through refinement iterations
  (→ perfect structural matches every iteration),
* :mod:`repro.apps.mcs` — the Metadata Catalog Service: every request
  conforms to one metadata schema (→ structural matches; string
  values exercise shifting),
* :mod:`repro.apps.classads` — Condor flocking: resource ClassAds
  that rarely change between exchanges (→ content matches with
  occasional small diffs).
"""

from repro.apps.lsa import LinearSystemAnalyzer, LSAReport, jacobi_step
from repro.apps.lsa_components import (
    Component,
    GaussSeidelSmoother,
    JacobiSmoother,
    MatrixSource,
    ResidualMonitor,
    SolverCycle,
)
from repro.apps.mcs import MetadataCatalog, MCSClient, MCS_SCHEMA, FileRecord
from repro.apps.classads import ClassAd, CondorPool, FlockSimulation

__all__ = [
    "LinearSystemAnalyzer",
    "LSAReport",
    "jacobi_step",
    "Component",
    "MatrixSource",
    "JacobiSmoother",
    "GaussSeidelSmoother",
    "ResidualMonitor",
    "SolverCycle",
    "MetadataCatalog",
    "MCSClient",
    "MCS_SCHEMA",
    "FileRecord",
    "ClassAd",
    "CondorPool",
    "FlockSimulation",
]
