"""Condor flocking workload: periodic ClassAd exchanges.

    "Flocks of Condor systems exchange ClassAd information to describe
    the resources in various Condor clusters ...  information will be
    similar in structure and even content (if resource characteristics
    do not change) across multiple consecutive exchanges.  Therefore,
    bSOAP would be able to automatically reserialize only the
    differences from previous exchanges."  (§3.4)

The model: each :class:`CondorPool` owns a set of machines whose
static attributes (name, cpus, memory) never change and whose dynamic
attributes (load average, state, claimed slots) change with
configurable probability per round.  :class:`FlockSimulation` runs
rounds of all-pairs ad exchanges through bSOAP clients and reports how
traffic decomposed into content vs structural matches — quantifying
the section's claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.core.stats import MatchKind
from repro.schema.composite import ArrayType, Field, StructType
from repro.schema.types import DOUBLE, INT
from repro.soap.message import Parameter, SOAPMessage
from repro.transport.base import Transport

__all__ = ["ClassAd", "MACHINE_AD_TYPE", "CondorPool", "FlockSimulation"]

#: Numeric ClassAd projection exchanged between pools: machine id,
#: total/claimed cpus, memory MB, state code, 1-minute load average.
MACHINE_AD_TYPE = StructType(
    "MachineAd",
    (
        Field("machineId", INT),
        Field("cpus", INT),
        Field("claimed", INT),
        Field("memoryMb", INT),
        Field("state", INT),
        Field("loadAvg", DOUBLE),
    ),
)

#: State codes.
UNCLAIMED, CLAIMED, DRAINING = 0, 1, 2


@dataclass(slots=True)
class ClassAd:
    """A single machine's ad (record form, for tests/examples)."""

    machineId: int
    cpus: int
    claimed: int
    memoryMb: int
    state: int
    loadAvg: float


class CondorPool:
    """One Condor pool: a column-store of machine ads + churn model.

    Parameters
    ----------
    churn:
        Per-round probability that a machine's dynamic attributes
        (claimed, state, loadAvg) change.  ``0.0`` produces pure
        content matches after the first exchange.
    """

    def __init__(
        self, name: str, machines: int, *, seed: int = 0, churn: float = 0.05
    ) -> None:
        self.name = name
        self.churn = churn
        self._rng = np.random.default_rng(seed)
        rng = self._rng
        self.columns: Dict[str, np.ndarray] = {
            "machineId": np.arange(machines, dtype=np.int64),
            "cpus": rng.choice([2, 4, 8, 16, 32], machines).astype(np.int64),
            "memoryMb": rng.choice([4096, 8192, 16384, 65536], machines).astype(
                np.int64
            ),
            "claimed": np.zeros(machines, dtype=np.int64),
            "state": np.zeros(machines, dtype=np.int64),
            "loadAvg": np.round(rng.random(machines) * 4, 2),
        }

    def __len__(self) -> int:
        return len(self.columns["machineId"])

    def tick(self) -> np.ndarray:
        """Advance one round; return indices of machines that changed."""
        n = len(self)
        changed = np.flatnonzero(self._rng.random(n) < self.churn)
        if len(changed):
            cols = self.columns
            cols["loadAvg"][changed] = np.round(
                self._rng.random(len(changed)) * 8, 2
            )
            cols["state"][changed] = self._rng.integers(0, 3, len(changed))
            cols["claimed"][changed] = np.minimum(
                cols["cpus"][changed],
                self._rng.integers(0, 32, len(changed)),
            )
        return changed

    def ads_message(self, peer: str) -> SOAPMessage:
        """The ad-exchange message sent to *peer* this round."""
        ordered = {f.name: self.columns[f.name] for f in MACHINE_AD_TYPE.fields}
        return SOAPMessage(
            "exchangeAds",
            "urn:condor:flock",
            [Parameter("ads", ArrayType(MACHINE_AD_TYPE, item_tag="ad"), ordered)],
        )


@dataclass(slots=True)
class FlockRoundStats:
    """Per-round aggregate across all pool pairs."""

    round_index: int
    sends: int
    content_matches: int
    values_rewritten: int
    bytes_sent: int


class FlockSimulation:
    """All-pairs ad exchange among pools over bSOAP clients."""

    def __init__(
        self,
        pools: List[CondorPool],
        *,
        transport_factory=None,
        policy: Optional[DiffPolicy] = None,
    ) -> None:
        self.pools = pools
        factory = transport_factory or (lambda: None)
        # One client per (sender, receiver) ordered pair — each remote
        # service keeps its own saved template, as in the paper.
        self.clients: Dict[Tuple[str, str], BSoapClient] = {}
        for src in pools:
            for dst in pools:
                if src is not dst:
                    transport: Optional[Transport] = factory()
                    self.clients[(src.name, dst.name)] = BSoapClient(
                        transport, policy
                    )
        self.history: List[FlockRoundStats] = []

    def run(self, rounds: int) -> List[FlockRoundStats]:
        """Run exchange rounds; pools churn between rounds."""
        for r in range(rounds):
            sends = content = rewritten = sent_bytes = 0
            for src in self.pools:
                for dst in self.pools:
                    if src is dst:
                        continue
                    client = self.clients[(src.name, dst.name)]
                    report = client.send(src.ads_message(dst.name))
                    sends += 1
                    sent_bytes += report.bytes_sent
                    rewritten += report.rewrite.values_rewritten
                    if report.match_kind is MatchKind.CONTENT_MATCH:
                        content += 1
            self.history.append(
                FlockRoundStats(r, sends, content, rewritten, sent_bytes)
            )
            for pool in self.pools:
                pool.tick()
        return self.history

    # ------------------------------------------------------------------
    @property
    def total_values_possible(self) -> int:
        """Leaf values that full serialization would have converted."""
        per_round = sum(
            len(src) * MACHINE_AD_TYPE.arity * (len(self.pools) - 1)
            for src in self.pools
        )
        return per_round * len(self.history)

    @property
    def total_values_rewritten(self) -> int:
        return sum(s.values_rewritten for s in self.history)

    def savings_summary(self) -> str:
        possible = self.total_values_possible
        done = self.total_values_rewritten
        if not possible:
            return "no exchanges yet"
        return (
            f"{len(self.history)} rounds: {done}/{possible} leaf values "
            f"serialized ({100.0 * done / possible:.1f}% of full-serialization "
            f"conversion work)"
        )
