"""Configuration of the differential serializer.

Everything the paper calls a "configurable parameter" lives here:
chunking (size / split threshold / reserve), stuffing widths,
expansion strategy (shift vs steal), float formatting, and chunk
overlaying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.buffers.config import ChunkPolicy
from repro.errors import SchemaError
from repro.lexical.floats import FloatFormat
from repro.schema.types import XSDType

__all__ = [
    "StuffMode",
    "StuffingPolicy",
    "OverlayPolicy",
    "PlanPolicy",
    "DeltaPolicy",
    "DiffPolicy",
    "Expansion",
]


class StuffMode(enum.Enum):
    """How field widths are chosen at template-creation time."""

    #: ``field_width = serialized length`` — no pad, any growth shifts.
    NONE = "none"
    #: ``field_width = max(serialized length, per-type fixed width)``.
    FIXED = "fixed"
    #: ``field_width = type's maximum lexical width`` — shifting is
    #: impossible for stuffable types (strings still grow on demand).
    MAX = "max"


class Expansion(enum.Enum):
    """What to do when a value outgrows its field."""

    SHIFT = "shift"
    #: Try stealing slack from right-hand neighbors first; fall back
    #: to shifting when no donor is found.
    STEAL = "steal"


@dataclass(frozen=True, slots=True)
class StuffingPolicy:
    """Field-width selection (paper §3.2 "stuffing")."""

    mode: StuffMode = StuffMode.NONE
    #: Per-primitive-name widths used in FIXED mode (e.g.
    #: ``{"double": 18, "int": 6}`` for the paper's intermediate runs).
    fixed_widths: Mapping[str, int] = field(default_factory=dict)

    def width_for(self, xsd_type: XSDType, ser_len: int) -> int:
        """Field width to allocate for a value of *ser_len* characters."""
        spec = xsd_type.widths
        if self.mode is StuffMode.NONE or not spec.stuffable:
            return ser_len
        if self.mode is StuffMode.MAX:
            return max(ser_len, spec.max_width)  # type: ignore[arg-type]
        width = self.fixed_widths.get(xsd_type.name)
        if width is None:
            return ser_len
        if width < spec.min_width:
            raise SchemaError(
                f"fixed width {width} below minimum {spec.min_width} "
                f"for {xsd_type.name}"
            )
        return max(ser_len, spec.clamp(width))

    @property
    def guarantees_fixed_layout(self) -> bool:
        """Whether widths can never grow (required by chunk overlaying).

        True only for MAX mode: every stuffable value fits its field
        forever.  FIXED mode bounds *most* values but a wider value at
        template time (or later) still forces layout change.
        """
        return self.mode is StuffMode.MAX


@dataclass(frozen=True, slots=True)
class OverlayPolicy:
    """Chunk-overlaying configuration (paper §3.3).

    Overlaying streams successive portions of a large array through a
    single chunk, so only ~one chunk of serialized data and DUT rows
    exist at a time.  It requires max-stuffed (fixed) field widths.
    """

    enabled: bool = False
    #: Items per portion; ``None`` derives it from the chunk size.
    portion_items: Optional[int] = None
    #: Arrays shorter than this many items are not worth overlaying.
    min_items: int = 1024


@dataclass(frozen=True, slots=True)
class PlanPolicy:
    """Compiled rewrite plans + conversion caching (steady-state path).

    When a perfect-structural send repeats the *same* dirty-index set
    for a parameter under an unchanged buffer layout, the pre-derived
    offsets/close-tags/chunk groupings from the previous send are
    byte-for-byte reusable.  A :class:`~repro.core.plan.RewritePlan`
    captures them once; subsequent sends validate the plan (layout
    epoch + dirty-mask equality) and skip the per-send planning work
    entirely.  Plans never change wire bytes — only how fast they are
    produced — so they are on by default.
    """

    enabled: bool = True
    #: Distinct dirty signatures cached per (param, dirty-range)
    #: segment before FIFO eviction; steady-state clients need 1.
    max_plans_per_segment: int = 4
    #: Segments with fewer dirty entries than this are not worth a
    #: plan (the generic path is already ~free).
    min_dirty: int = 1
    #: Route dirty-value formatting through the conversion memo /
    #: small-int table in :mod:`repro.lexical.cache`.
    conversion_cache: bool = True


@dataclass(frozen=True, slots=True)
class DeltaPolicy:
    """Negotiated binary delta frames for repro↔repro traffic.

    Off by default: ``offer=True`` makes the client add the
    ``X-Repro-Delta`` offer and baseline-announce headers to full-XML
    sends; binary frames flow only after the server's response
    acknowledges support *and* a baseline has been announced, and only
    for content / perfect-structural sends under an unchanged buffer
    layout.  Everything else — expansions, layout-epoch movement,
    document-length change, server resync — falls back to full XML
    with a fresh announce.  See ``docs/wire_protocol.md``.
    """

    offer: bool = False
    #: Sends needing more coalesced splices than this go full-XML
    #: (the client-side twin of ``ResourceLimits.max_delta_splices``).
    max_splices: int = 1 << 16
    #: A frame bigger than this fraction of the document goes
    #: full-XML instead: at high churn the patch approaches the
    #: document size and full XML re-announces a clean baseline for
    #: free, keeping calls/sec no worse than the full path.
    max_frame_fraction: float = 0.5


@dataclass(frozen=True, slots=True)
class DiffPolicy:
    """Top-level bSOAP client configuration."""

    chunk: ChunkPolicy = field(default_factory=ChunkPolicy)
    stuffing: StuffingPolicy = field(default_factory=StuffingPolicy)
    expansion: Expansion = Expansion.SHIFT
    float_format: FloatFormat = FloatFormat.MINIMAL
    #: When False the client behaves as "bSOAP Full Serialization":
    #: every send rebuilds the message from scratch (still through the
    #: template machinery, as in the paper's baseline curve).
    differential_enabled: bool = True
    overlay: OverlayPolicy = field(default_factory=OverlayPolicy)
    #: Neighbor-scan bound for stealing before falling back to shifting.
    steal_scan_limit: int = 8
    #: Templates retained per structure signature (§6 future work:
    #: "store multiple different message templates for the same remote
    #: service").  With k > 1 the auto-diff send path picks the cached
    #: variant whose values differ least from the outgoing message.
    template_variants: int = 1
    #: When the best variant still differs in more than this fraction
    #: of its leaves (and there is room), a new variant is built
    #: instead of rewriting the old one.
    variant_miss_threshold: float = 0.5
    #: Pipelined send (companion-paper technique): rewrite dirty
    #: values chunk by chunk, handing each chunk to the transport as
    #: soon as it is up to date, so transmission overlaps the
    #: remaining re-serialization.  Requires a streaming-capable
    #: transport framing (raw TCP or HTTP chunked).
    pipelined_send: bool = False
    #: Compiled rewrite plans + conversion caches for the steady-state
    #: resend path (see :class:`PlanPolicy`).
    plan: PlanPolicy = field(default_factory=PlanPolicy)
    #: Negotiated binary delta frames (see :class:`DeltaPolicy`);
    #: defaults off — nothing changes on the wire unless offered *and*
    #: acknowledged by the server.
    delta: DeltaPolicy = field(default_factory=DeltaPolicy)

    def derived_portion_items(self, item_bytes: int) -> int:
        """Items per overlay portion given a serialized item size."""
        if self.overlay.portion_items is not None:
            return max(1, self.overlay.portion_items)
        return max(1, self.chunk.soft_limit // max(1, item_bytes))
