"""The differential rewrite: serialize only what changed.

Given a template whose DUT table has dirty entries, this module
re-formats exactly those values and patches them into the saved
serialized form:

* value fits its field → overwrite value bytes; when the length
  changed, rewrite the closing tag at its new position and pad the
  remainder with whitespace (the paper's closing-tag shift),
* value outgrew its field → *steal* neighbor slack or *shift* the
  chunk tail (possibly reallocating or splitting the chunk), then
  write.

Three code paths per parameter:

**Plan path** (steady state — the same dirty signature repeating
under an unchanged layout): a compiled :class:`~repro.core.plan.RewritePlan`
replays precomputed offsets/close-tags/chunk groupings, skipping the
per-send planning below entirely; max-stuffed fixed-format double
runs collapse to strided NumPy splices.

**Fast path** (perfect structural match — no value outgrew its field,
checked with one vectorized comparison): DUT columns for the dirty
subset are pulled into plain Python lists once and the write loop
touches the chunk ``bytearray`` directly.  Locations cannot move on
this path, so the cached offsets stay valid — which is also what
makes the freshly compiled plan stored here valid for the next send.

**Slow path** (some value needs expansion): entries are processed in
ascending document order through :func:`write_entry`, re-reading
locations from the DUT at each step because shifts move later entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.core.plan import compile_plan
from repro.core.policy import DiffPolicy, Expansion
from repro.core.stats import RewriteStats
from repro.core.stealing import try_steal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.template import BoundParam, MessageTemplate

__all__ = ["rewrite_dirty", "write_entry"]

_PAD = tuple(b" " * i for i in range(64))


def write_entry(
    template: "MessageTemplate",
    entry: int,
    text: bytes,
    policy: DiffPolicy,
    stats: RewriteStats,
    obs=None,
) -> None:
    """Write one value's new lexical form into the template.

    Handles expansion (steal/shift) when the value no longer fits;
    each expansion is traced as a ``steal`` or ``shift`` span.
    """
    dut = template.dut
    buffer = template.buffer
    new_len = len(text)
    width = int(dut.field_width[entry])
    old_len = int(dut.ser_len[entry])
    clen = int(dut.close_len[entry])

    if new_len > width:
        delta = new_len - width
        stolen = policy.expansion is Expansion.STEAL and try_steal(
            template, entry, delta, policy.steal_scan_limit, stats, obs
        )
        if not stolen:
            cid = int(dut.chunk_id[entry])
            off = int(dut.value_off[entry])
            result = buffer.insert_gap(cid, off + width + clen, delta, off)
            dut.apply_gap(result)
            dut.field_width[entry] += delta
            if result.mode == "inplace":
                stats.shifts_inplace += 1
            elif result.mode == "realloc":
                stats.reallocs += 1
            else:
                stats.splits += 1
            if obs is not None and obs.tracer.enabled:
                obs.tracer.emit(
                    "shift",
                    template_id=template.template_id,
                    entry=entry,
                    delta=delta,
                    mode=result.mode,
                )

    cid = int(dut.chunk_id[entry])
    off = int(dut.value_off[entry])
    chunk = buffer.chunk(cid)
    chunk.write_at(off, text)
    stats.values_rewritten += 1
    if new_len != old_len:
        chunk.write_at(off + new_len, template.close_tag_bytes(entry))
        stats.tag_shifts += 1
        if new_len < old_len:
            # Blank the stale tail: old value remnants + old close tag.
            gap = old_len - new_len
            chunk.fill_at(off + new_len + clen, gap, 0x20)
            stats.pad_bytes += gap
        dut.ser_len[entry] = new_len


def _fast_rewrite(
    template: "MessageTemplate",
    bp: "BoundParam",
    idxs: np.ndarray,
    texts: Sequence[bytes],
    lens_l: List[int],
    lens: np.ndarray,
    stats: RewriteStats,
) -> None:
    """Perfect-structural write loop over cached locations.

    Preconditions (checked by the caller): every new length fits its
    field width, so no location changes during the loop and the chunk
    ``bytearray`` can be written without re-validating bounds — the
    template layout invariant guarantees the spans are in range.
    """
    dut = template.dut
    buffer = template.buffer
    offs: List[int] = dut.value_off[idxs].tolist()
    olds: List[int] = dut.ser_len[idxs].tolist()
    cids: List[int] = dut.chunk_id[idxs].tolist()

    uniform = bp.arity == 1
    if uniform:
        close = bp.close_tags[0]
        clen = len(close)
        closes = None
    else:
        leaf_pos = ((idxs - bp.entry_base) % bp.arity).tolist()
        closes = [bp.close_tags[p] for p in leaf_pos]

    pad = _PAD
    tag_shifts = 0
    pad_bytes = 0
    data = None
    last_cid = -1
    for k in range(len(offs)):
        cid = cids[k]
        if cid != last_cid:
            data = buffer.chunk(cid).data
            last_cid = cid
        off = offs[k]
        text = texts[k]
        new_len = lens_l[k]
        end_v = off + new_len
        data[off:end_v] = text  # type: ignore[index]
        old = olds[k]
        if new_len != old:
            if not uniform:
                close = closes[k]  # type: ignore[index]
                clen = len(close)
            data[end_v : end_v + clen] = close  # type: ignore[index]
            tag_shifts += 1
            if new_len < old:
                gap = old - new_len
                start = end_v + clen
                # _PAD only interns gaps < 64; a string shrinking by
                # more (possible for TrackedStringArray) needs a
                # fresh pad of the exact size.
                data[start : start + gap] = (  # type: ignore[index]
                    pad[gap] if gap < 64 else b" " * gap
                )
                pad_bytes += gap

    dut.ser_len[idxs] = lens
    stats.values_rewritten += len(offs)
    stats.tag_shifts += tag_shifts
    stats.pad_bytes += pad_bytes


def iter_rewrite_and_views(
    template: "MessageTemplate",
    policy: DiffPolicy,
    stats: RewriteStats,
    obs=None,
):
    """Pipelined send driver: repair one chunk, then yield its view.

    The companion-paper "pipelined send" technique: because DUT
    entries never straddle chunks and expansion only moves bytes *at
    or after* the expanding field, a chunk whose dirty entries have
    been rewritten is final and can go to the transport while later
    chunks are still being re-serialized.  A mid-loop split inserts
    the new chunk immediately after the current one, so index-based
    iteration naturally picks it up.

    Dirty bits of processed entries are cleared as they are written.
    """
    dut = template.dut
    buffer = template.buffer
    fmt = policy.float_format
    plan_pol = policy.plan
    cache = template.plan_cache if plan_pol.enabled else None
    conv = plan_pol.enabled and plan_pol.conversion_cache
    index = 0
    while index < buffer.num_chunks:
        cid = buffer.chunk_id_at(index)
        lo, hi = dut.chunk_range(cid)
        if hi > lo:
            idxs = dut.dirty_indices(lo, hi)
            pos = 0
            while pos < len(idxs):
                bp = template.param_for_entry(int(idxs[pos]))
                # Sorted dirty indices + contiguous param entry ranges
                # ⇒ one param's entries form one contiguous run.
                take = idxs[(idxs >= bp.entry_base) & (idxs < bp.entry_end)]
                texts = None
                done = False
                if cache is not None:
                    seg_lo = max(lo, bp.entry_base)
                    seg_hi = min(hi, bp.entry_end)
                    plan = cache.lookup(
                        (seg_lo, seg_hi),
                        buffer.layout_epoch,
                        dut.dirty[seg_lo:seg_hi],
                        stats,
                    )
                    if plan is not None:
                        stats.plan_hits += 1
                        texts = plan.execute(template, bp, policy, stats)
                        done = texts is None
                    else:
                        stats.plan_misses += 1
                if not done:
                    if texts is None:
                        texts = bp.tracked.lexical_for(
                            take - bp.entry_base, fmt, cached=conv
                        )
                    lens_l = list(map(len, texts))
                    lens = np.asarray(lens_l, dtype=np.int32)
                    if bool((lens > dut.field_width[take]).any()):
                        for entry, text in zip(take.tolist(), texts):
                            write_entry(template, entry, text, policy, stats, obs)
                    else:
                        _fast_rewrite(template, bp, take, texts, lens_l, lens, stats)
                        if (
                            cache is not None
                            and len(take) >= plan_pol.min_dirty
                            and cache.should_compile((seg_lo, seg_hi))
                        ):
                            cache.store(
                                (seg_lo, seg_hi),
                                compile_plan(
                                    template, bp, seg_lo, seg_hi, take, policy
                                ),
                                plan_pol.max_plans_per_segment,
                            )
                dut.dirty[take] = False
                pos += len(take)
        chunk = buffer.chunk(cid)
        if chunk.used:
            yield chunk.view()
        index += 1
    if obs is not None and obs.tracer.enabled:
        obs.tracer.emit(
            "rewrite",
            template_id=template.template_id,
            pipelined=True,
            values=stats.values_rewritten,
            expansions=stats.expansions,
            tag_shifts=stats.tag_shifts,
            plan_hits=stats.plan_hits,
            plan_misses=stats.plan_misses,
            plan_spliced=stats.plan_spliced,
        )


def rewrite_dirty(
    template: "MessageTemplate", policy: DiffPolicy, obs=None
) -> RewriteStats:
    """Re-serialize every dirty entry; clear dirty bits; return stats."""
    tracing = obs is not None and obs.tracer.enabled
    if tracing:
        from time import perf_counter

        t0 = perf_counter()
    stats = RewriteStats()
    dut = template.dut
    buffer = template.buffer
    fmt = policy.float_format
    plan_pol = policy.plan
    cache = template.plan_cache if plan_pol.enabled else None
    conv = plan_pol.enabled and plan_pol.conversion_cache
    for bp in template.params:
        base, end = bp.entry_base, bp.entry_end
        seg = dut.dirty[base:end]
        if not seg.any():
            continue
        texts = None
        if cache is not None:
            plan = cache.lookup((base, end), buffer.layout_epoch, seg, stats)
            if plan is not None:
                stats.plan_hits += 1
                texts = plan.execute(template, bp, policy, stats)
                if texts is None:
                    dut.clear_dirty(base, end)
                    continue
                # Some value outgrew its field: the plan handed back
                # the converted texts; expansion path below.
                idxs = plan.take
            else:
                stats.plan_misses += 1
                idxs = base + np.flatnonzero(seg)
        else:
            idxs = base + np.flatnonzero(seg)
        if texts is None:
            texts = bp.tracked.lexical_for(idxs - base, fmt, cached=conv)
        lens_l = list(map(len, texts))
        lens = np.asarray(lens_l, dtype=np.int32)
        if bool((lens > dut.field_width[idxs]).any()):
            # Partial structural match: at least one expansion needed.
            for entry, text in zip(idxs.tolist(), texts):
                write_entry(template, entry, text, policy, stats, obs)
        else:
            _fast_rewrite(template, bp, idxs, texts, lens_l, lens, stats)
            if (
                cache is not None
                and len(idxs) >= plan_pol.min_dirty
                and cache.should_compile((base, end))
            ):
                # Layout unchanged by the fast path, so locations
                # gathered now are exactly what the next identical
                # dirty signature needs.
                cache.store(
                    (base, end),
                    compile_plan(template, bp, base, end, idxs, policy),
                    plan_pol.max_plans_per_segment,
                )
        dut.clear_dirty(base, end)
    if tracing:
        obs.tracer.emit(
            "rewrite",
            duration_s=perf_counter() - t0,
            template_id=template.template_id,
            pipelined=False,
            values=stats.values_rewritten,
            expansions=stats.expansions,
            tag_shifts=stats.tag_shifts,
            plan_hits=stats.plan_hits,
            plan_misses=stats.plan_misses,
            plan_spliced=stats.plan_spliced,
        )
    return stats
