"""bSOAP core: differential serialization (the paper's contribution).

Public surface:

* :class:`~repro.core.client.BSoapClient` — the client stub with a
  template store and the four-way match dispatch,
* :class:`~repro.core.policy.DiffPolicy` and friends — chunking,
  stuffing, shifting-vs-stealing, overlaying configuration,
* :class:`~repro.core.template.MessageTemplate` /
  :func:`~repro.core.serializer.build_template` — saved serialized
  messages with DUT tables,
* :mod:`~repro.core.differential` — the dirty-only rewrite,
* :class:`~repro.core.stats.SendReport` — what each send did.
"""

from repro.core.client import BSoapClient, PreparedCall
from repro.core.differential import rewrite_dirty, write_entry
from repro.core.matcher import classify, refine
from repro.core.overlay import OverlayTemplate, build_overlay_template, overlay_eligible
from repro.core.plan import PlanCache, RewritePlan, compile_plan
from repro.core.policy import (
    DiffPolicy,
    Expansion,
    OverlayPolicy,
    DeltaPolicy,
    PlanPolicy,
    StuffMode,
    StuffingPolicy,
)
from repro.core.serializer import build_template, make_tracked
from repro.core.stats import ClientStats, MatchKind, RewriteStats, SendReport
from repro.core.stealing import try_steal
from repro.core.store import TemplateStore, count_differences
from repro.core.template import BoundParam, MessageTemplate, absorb_param

__all__ = [
    "BSoapClient",
    "PreparedCall",
    "DiffPolicy",
    "StuffingPolicy",
    "StuffMode",
    "OverlayPolicy",
    "DeltaPolicy",
    "PlanPolicy",
    "Expansion",
    "PlanCache",
    "RewritePlan",
    "compile_plan",
    "MessageTemplate",
    "BoundParam",
    "build_template",
    "make_tracked",
    "absorb_param",
    "rewrite_dirty",
    "write_entry",
    "try_steal",
    "TemplateStore",
    "count_differences",
    "classify",
    "refine",
    "MatchKind",
    "RewriteStats",
    "SendReport",
    "ClientStats",
    "OverlayTemplate",
    "build_overlay_template",
    "overlay_eligible",
]
