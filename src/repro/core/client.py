"""The bSOAP client stub.

The stub owns the template store (one template per structure
signature, §3.1) and dispatches each outgoing message down the
cheapest path the match classification allows:

* first-time send → full serialization, template saved,
* content match → resend saved bytes,
* structural match → differential rewrite of dirty values, then send,
* overlay-eligible arrays → streamed portion-by-portion.

Two usage styles:

**Prepared (paper-faithful).**  ``prepare()`` builds the template and
hands back tracked value objects; the application mutates them (each
``set`` flips a DUT dirty bit) and calls ``send()``::

    call = client.prepare(message)
    xs = call.tracked("data")
    xs[17] = 3.14
    call.send()

**Auto-diff (convenience).**  Pass a plain message to ``send()``
repeatedly; the stub diffs values into the saved template with
vectorized comparisons and marks exactly the changed leaves dirty.

Extensions from the paper's §6 are available through the policy and
the store: shared :class:`~repro.core.store.TemplateStore` instances
amortize templates across clients (= remote services), multi-variant
stores keep several templates per call type, and
``policy.pipelined_send`` streams each chunk to the transport as soon
as its dirty values are rewritten.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Union

from repro.core.differential import iter_rewrite_and_views, rewrite_dirty
from repro.core.matcher import classify, refine
from repro.obs import NULL_OBS, Observability
from repro.core.overlay import OverlayTemplate, build_overlay_template, overlay_eligible
from repro.core.policy import DiffPolicy
from repro.core.serializer import build_template
from repro.core.stats import ClientStats, MatchKind, RewriteStats, SendReport
from repro.core.store import TemplateStore
from repro.core.template import MessageTemplate, Tracked
from repro.errors import StructureMismatchError, TemplateError, TransportError
from repro.soap.message import SOAPMessage, Signature, structure_signature
from repro.transport.base import Transport
from repro.transport.loopback import NullSink
from repro.wire.client import DeltaEncoder

__all__ = ["BSoapClient", "PreparedCall"]

AnyTemplate = Union[MessageTemplate, OverlayTemplate]


class PreparedCall:
    """A handle over one saved template and its tracked parameters."""

    def __init__(self, client: "BSoapClient", template: MessageTemplate) -> None:
        self._client = client
        self.template = template

    def tracked(self, name: str) -> Tracked:
        """The mutable, dirty-tracking value object for a parameter."""
        return self.template.tracked(name)

    def send(self) -> SendReport:
        """Differentially send the current state of the template."""
        return self._client._send_template(self.template)

    @property
    def signature(self) -> Signature:
        return self.template.signature


class BSoapClient:
    """Client stub with differential serialization (see module docstring)."""

    def __init__(
        self,
        transport: Optional[Transport] = None,
        policy: Optional[DiffPolicy] = None,
        store: Optional[TemplateStore] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.transport: Transport = transport if transport is not None else NullSink()
        self.policy = policy or DiffPolicy()
        self.stats = ClientStats()
        #: Tracing + metrics sink; the shared no-op default costs one
        #: attribute load and branch per guarded site.
        self.obs: Observability = obs if obs is not None else NULL_OBS
        #: When True every send takes the full-serialization path and
        #: no cross-call template state is consulted — the degraded
        #: mode a circuit breaker pins after repeated failures.
        self.force_full = False
        #: May be shared with other clients (§6 template sharing).
        self.store = store if store is not None else TemplateStore(
            self.policy.template_variants
        )
        #: Delta-frame encoder (None unless the policy offers delta).
        #: Frames flow only once the peer negotiates — the channel
        #: flips ``wire.negotiated`` from the response headers.
        self.wire: Optional[DeltaEncoder] = (
            DeltaEncoder(self.policy.delta, self.transport, obs=self.obs)
            if self.policy.delta.offer
            else None
        )

    # ------------------------------------------------------------------
    # template store
    # ------------------------------------------------------------------
    def template_for(self, signature: Signature) -> Optional[AnyTemplate]:
        return self.store.get(signature)  # type: ignore[return-value]

    def forget(self, signature: Signature) -> None:
        """Drop saved templates (frees their buffers and DUTs)."""
        self.store.forget(signature)

    @property
    def template_count(self) -> int:
        return self.store.template_count

    # ------------------------------------------------------------------
    # prepared-call API
    # ------------------------------------------------------------------
    def prepare(self, message: SOAPMessage) -> PreparedCall:
        """Build (or fetch) the template for *message* without sending."""
        signature = structure_signature(message)
        template = self.store.get(signature)
        if template is None:
            template = build_template(message, self.policy, obs=self.obs)
            self.store.put(signature, template)
            self._template_built()
        if isinstance(template, OverlayTemplate):
            raise TemplateError(
                "prepare() targets in-memory templates; overlay sends use send()"
            )
        return PreparedCall(self, template)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, message: SOAPMessage) -> SendReport:
        """Send *message*, choosing the cheapest path automatically."""
        signature = structure_signature(message)

        if not self.policy.differential_enabled or self.force_full:
            return self._send_full_every_time(message)

        existing = self.store.get(signature)
        resync = False
        if isinstance(existing, OverlayTemplate):
            if not existing.suspect:
                return self._send_overlay(existing, message)
            # Overlay sends restream the whole array anyway; recovery
            # from a failed one just rebuilds the template fresh.
            self.forget(signature)
            existing = None
            resync = True

        if existing is None:
            if overlay_eligible(message, self.policy):
                overlay = build_overlay_template(message, self.policy)
                self.store.put(signature, overlay)
                self._template_built()
                return self._send_overlay(
                    overlay, message, first=True, forced_full=resync
                )
            template = build_template(message, self.policy, obs=self.obs)
            self.store.put(signature, template)
            self._template_built()
            return self._transmit_guarded(
                template, MatchKind.FIRST_TIME, RewriteStats(), forced_full=resync
            )

        # Templates exist: choose the variant needing the fewest
        # rewrites (§6 multi-variant stores), absorb the new values
        # (no-op when the caller mutated tracked objects directly),
        # then go differential.
        template = self._choose_variant(signature, message, existing)
        if template is None:
            # A fresh variant was judged cheaper than rewriting.
            template = build_template(message, self.policy, obs=self.obs)
            self.store.put(signature, template)
            self._template_built()
            return self._transmit(template, MatchKind.FIRST_TIME, RewriteStats())
        try:
            template.absorb(message)
        except StructureMismatchError:
            # Array length or type changed — rebuild from scratch.
            self.forget(signature)
            return self.send(message)
        return self._send_template(template)

    def _choose_variant(
        self,
        signature: Signature,
        message: SOAPMessage,
        most_recent: AnyTemplate,
    ) -> Optional[MessageTemplate]:
        """Pick the cached template to reuse, or ``None`` to build anew."""
        if self.store.variants_per_signature <= 1:
            return most_recent  # type: ignore[return-value]
        best, miss = self.store.select(signature, message)
        if best is None:
            return most_recent  # type: ignore[return-value]
        leaves = max(1, len(best.dut))
        room = len(self.store.variants(signature)) < self.store.variants_per_signature
        if room and miss > self.policy.variant_miss_threshold * leaves:
            return None
        return best

    def _send_template(self, template: MessageTemplate) -> SendReport:
        if template.suspect:
            # A previous send epoch rolled back: the server may hold a
            # partial message.  Resynchronize with the paper's
            # first-time-send path — rebuilt in place from the tracked
            # values, so the bytes equal a from-scratch serialization.
            template.rebuild_in_place(self.policy, obs=self.obs)
            self._template_built()
            return self._transmit_guarded(
                template, MatchKind.FIRST_TIME, RewriteStats(), forced_full=True
            )
        kind = classify(template, template.signature, self.obs)
        if template.sends == 0:
            # The template was just built (prepare or first send): the
            # full-serialization cost was paid this call cycle.
            kind = MatchKind.FIRST_TIME
        snapshot = template.begin_send()
        if kind is MatchKind.CONTENT_MATCH:
            return self._transmit_guarded(
                template, kind, RewriteStats(), snapshot=snapshot
            )
        if self.policy.pipelined_send:
            return self._transmit_pipelined(template, kind, snapshot)
        moved_before = template.buffer.bytes_moved
        rewrite = rewrite_dirty(template, self.policy, self.obs)
        kind = refine(kind, rewrite)
        return self._transmit_guarded(
            template, kind, rewrite, snapshot=snapshot, moved_before=moved_before
        )

    def _transmit_pipelined(
        self,
        template: MessageTemplate,
        kind: MatchKind,
        snapshot,
    ) -> SendReport:
        """Rewrite and transmit chunk by chunk (streaming overlap)."""
        rewrite = RewriteStats()
        moved_before = template.buffer.bytes_moved
        t0 = perf_counter() if self.obs.enabled else 0.0
        try:
            bytes_sent = self.transport.send_message(
                iter_rewrite_and_views(template, self.policy, rewrite, self.obs)
            )
        except TransportError:
            # Some chunks may be on the wire, others not even rewritten.
            template.rollback_send(snapshot)
            if self.wire is not None:
                self.wire.invalidate(template.template_id)
            self.stats.rollbacks += 1
            self.obs.record_rollback()
            raise
        kind = refine(kind, rewrite)
        template.sends += 1
        report = SendReport(
            match_kind=kind,
            bytes_sent=bytes_sent,
            rewrite=rewrite,
            buffer_bytes_moved=template.buffer.bytes_moved,
            num_chunks=template.buffer.num_chunks,
            template_id=template.template_id,
        )
        self._record(report, moved_before=moved_before, started=t0, pipelined=True)
        return report

    def _transmit_guarded(
        self,
        template: MessageTemplate,
        kind: MatchKind,
        rewrite: RewriteStats,
        *,
        snapshot=None,
        forced_full: bool = False,
        moved_before: int = 0,
    ) -> SendReport:
        """Transmit with commit/rollback: the template's dirty state is
        only committed once the transport confirms full delivery."""
        try:
            return self._transmit(
                template,
                kind,
                rewrite,
                forced_full=forced_full,
                moved_before=moved_before,
                snapshot=snapshot,
            )
        except TransportError:
            template.rollback_send(snapshot)
            if self.wire is not None:
                # Whether the announce or frame reached the server is
                # unknown; the next send re-announces from scratch.
                self.wire.invalidate(template.template_id)
            self.stats.rollbacks += 1
            self.obs.record_rollback()
            raise

    def _transmit(
        self,
        template: MessageTemplate,
        kind: MatchKind,
        rewrite: RewriteStats,
        forced_full: bool = False,
        moved_before: int = 0,
        template_id: Optional[int] = None,
        snapshot=None,
    ) -> SendReport:
        t0 = perf_counter() if self.obs.enabled else 0.0
        wire = self.wire
        frame = None
        if wire is not None and template_id is None:
            # template_id overrides mark templates that do not survive
            # the call (full-every-time mode) — those never announce.
            if (
                not forced_full
                and snapshot is not None
                and kind in (MatchKind.CONTENT_MATCH, MatchKind.PERFECT_STRUCTURAL)
            ):
                frame = wire.try_encode(template, snapshot, rewrite)
            if frame is None:
                wire.announce(template)
        if frame is not None:
            bytes_sent = self.transport.send_delta_frame(frame)
        else:
            bytes_sent = self.transport.send_message(
                template.buffer.views(), template.total_bytes
            )
        template.sends += 1
        report = SendReport(
            match_kind=kind,
            bytes_sent=bytes_sent,
            rewrite=rewrite,
            buffer_bytes_moved=template.buffer.bytes_moved,
            num_chunks=template.buffer.num_chunks,
            template_id=(
                template.template_id if template_id is None else template_id
            ),
            forced_full=forced_full,
            delta=frame is not None,
        )
        self._record(report, moved_before=moved_before, started=t0)
        return report

    def _send_overlay(
        self,
        overlay: OverlayTemplate,
        message: SOAPMessage,
        first: bool = False,
        forced_full: bool = False,
    ) -> SendReport:
        # Absorb plain values into the overlay's tracked array.
        if not first:
            from repro.core.template import absorb_param

            absorb_param(overlay.tracked, message.params[0])
        stats = RewriteStats()
        t0 = perf_counter() if self.obs.enabled else 0.0
        try:
            bytes_sent = self.transport.send_message(
                overlay.iter_send_views(stats, self.obs), overlay.total_bytes
            )
        except TransportError:
            overlay.suspect = True
            self.stats.rollbacks += 1
            self.obs.record_rollback()
            raise
        kind = MatchKind.FIRST_TIME if first else MatchKind.PERFECT_STRUCTURAL
        report = SendReport(
            match_kind=kind,
            bytes_sent=bytes_sent,
            rewrite=stats,
            num_chunks=1,
            template_id=overlay.template_id,
            forced_full=forced_full,
        )
        self._record(report, started=t0)
        return report

    def _send_full_every_time(self, message: SOAPMessage) -> SendReport:
        """bSOAP-with-differential-off: the paper's Full Serialization curve."""
        template = build_template(message, self.policy, obs=self.obs)
        # template_id=-1: the template does not survive the call, so a
        # trace consumer cannot join later sends to it.
        return self._transmit(
            template, MatchKind.FIRST_TIME, RewriteStats(), template_id=-1
        )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _template_built(self) -> None:
        self.stats.templates_built += 1
        self.obs.record_template_built()

    def _record(
        self,
        report: SendReport,
        *,
        moved_before: int = 0,
        started: float = 0.0,
        pipelined: bool = False,
    ) -> None:
        """Fold one send into the legacy stats and the obs layer.

        The single funnel for every successful send — keeping it that
        way is what makes ``repro_sends_total`` reconcile exactly with
        :class:`ClientStats`.
        """
        self.stats.record(report)
        obs = self.obs
        if not obs.enabled:
            return
        duration = perf_counter() - started if started else 0.0
        obs.record_send(report)
        obs.record_send_duration(report.match_kind.value, duration)
        obs.record_buffer_bytes_moved(report.buffer_bytes_moved - moved_before)
        if obs.tracer.enabled:
            obs.tracer.emit(
                "send",
                duration_s=duration,
                template_id=report.template_id,
                match_level=report.match_kind.value,
                bytes=report.bytes_sent,
                chunks=report.num_chunks,
                pipelined=pipelined,
                forced_full=report.forced_full,
                delta=report.delta,
            )

    # ------------------------------------------------------------------
    def quarantine(self, message: SOAPMessage) -> None:
        """Mark saved templates for *message*'s structure suspect.

        For callers that learn only *after* a send that delivery is
        unconfirmed (e.g. the response never arrived): the next send of
        this structure is forced to a full resynchronizing
        serialization instead of trusting the saved state.
        """
        signature = structure_signature(message)
        for template in self.store.variants(signature):
            template.suspect = True  # type: ignore[attr-defined]
            if self.wire is not None:
                self.wire.invalidate(template.template_id)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "BSoapClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
