"""Stealing: expanding a field by consuming neighbor slack.

When a value outgrows its field, shifting moves the *entire* chunk
tail.  Stealing (§3.2, explored in the authors' companion paper)
instead finds the nearest right-hand neighbor field with enough
whitespace slack (``field_width − serialized_len``) and slides only
the bytes between the growing field and that neighbor's pad —
typically a few tens of bytes instead of kilobytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stats import RewriteStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.template import MessageTemplate

__all__ = ["try_steal"]


def try_steal(
    template: "MessageTemplate",
    entry: int,
    delta: int,
    scan_limit: int,
    stats: RewriteStats,
    obs=None,
) -> bool:
    """Attempt to widen *entry* by *delta* bytes via neighbor slack.

    Returns ``True`` on success (DUT widths/offsets updated, bytes
    slid); ``False`` when no single donor with ``slack ≥ delta`` is
    found within *scan_limit* following entries in the same chunk —
    the caller then falls back to shifting.  A successful steal is
    traced as a ``steal`` span (entry, donor, delta, bytes slid).
    """
    dut = template.dut
    cid = int(dut.chunk_id[entry])
    lo, hi = dut.chunk_range(cid)
    if not (lo <= entry < hi):  # pragma: no cover - defensive
        return False

    # Find the nearest donor.
    donor = -1
    j = entry + 1
    limit = min(hi, entry + 1 + scan_limit)
    widths = dut.field_width
    lens = dut.ser_len
    while j < limit:
        if int(widths[j]) - int(lens[j]) >= delta:
            donor = j
            break
        j += 1
    if donor < 0:
        return False

    off_i = int(dut.value_off[entry])
    region_end_i = off_i + int(widths[entry]) + int(dut.close_len[entry])
    pad_start_donor = (
        int(dut.value_off[donor]) + int(lens[donor]) + int(dut.close_len[donor])
    )
    # Slide [region_end_i, pad_start_donor) right by delta, consuming
    # the donor's pad.
    template.buffer.steal_move(
        cid, region_end_i, region_end_i + delta, pad_start_donor - region_end_i
    )
    # Intervening entries (and the donor's value) moved right.
    dut.value_off[entry + 1 : donor + 1] += delta
    widths[entry] += delta
    widths[donor] -= delta
    stats.steals += 1
    if obs is not None and obs.tracer.enabled:
        obs.tracer.emit(
            "steal",
            template_id=template.template_id,
            entry=entry,
            donor=donor,
            delta=delta,
            bytes_slid=pad_start_donor - region_end_i,
        )
    return True
