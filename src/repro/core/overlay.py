"""Chunk overlaying: bounded-memory sends of huge arrays (§3.3).

Instead of materializing the whole serialized array, an overlay
template keeps exactly one chunk's worth of serialized items (plus a
remainder chunk when the portion size does not divide the array).  A
send streams: envelope prefix → portion 0 → (rewrite values in place)
portion 1 → ... → remainder → envelope suffix.  Tags are written once
at build time and never again — the gain over plain HTTP chunking the
paper points out — but every value after the first portion must be
re-serialized on every send, which is why Figure 12 tracks the
100%-value-re-serialization curve.

Overlaying requires a fixed field layout: stuffed widths that no value
can outgrow.  A value wider than its field raises
:class:`~repro.errors.OverlayError` (shifting inside an overlay chunk
would desynchronize the portions).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.buffers.chunked import ChunkedBuffer
from repro.buffers.config import ChunkPolicy
from repro.core.policy import DiffPolicy, StuffMode
from repro.core.serializer import emit_primitive_items, emit_struct_items, make_tracked
from repro.core.stats import RewriteStats
from repro.dut.table import DUTTable, DUTTableBuilder
from repro.errors import OverlayError
from repro.lexical.floats import FloatFormat
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import XSDType
from repro.soap.encoding import array_open_attrs
from repro.soap.envelope import envelope_layout
from repro.soap.message import SOAPMessage, structure_signature
from repro.core.serializer import _attrs_bytes  # shared attribute renderer

__all__ = ["OverlayTemplate", "build_overlay_template", "overlay_eligible"]


def overlay_eligible(message: SOAPMessage, policy: DiffPolicy) -> bool:
    """Whether *message* qualifies for overlaying under *policy*."""
    if not policy.overlay.enabled:
        return False
    if len(message.params) != 1:
        return False
    param = message.params[0]
    if not isinstance(param.ptype, ArrayType):
        return False
    if policy.stuffing.mode is StuffMode.NONE:
        return False
    element = param.ptype.element
    if isinstance(element, StructType):
        if element.max_width is None:
            return False
    elif not element.widths.stuffable:
        return False
    return param.length >= policy.overlay.min_items


class _Span:
    """One overlay span: a single-chunk buffer + its DUT + tag info.

    The span's layout is fixed (stuffed widths), so the DUT columns
    are flattened into plain Python lists once at construction and the
    per-portion rewrite loop runs over unboxed ints — this loop
    executes once per portion per send and dominates overlay cost.
    """

    __slots__ = (
        "buffer",
        "dut",
        "close_tags",
        "arity",
        "items",
        "length",
        "_offs",
        "_widths",
        "_clens",
        "_lens",
        "_data",
    )

    def __init__(
        self,
        buffer: ChunkedBuffer,
        dut: DUTTable,
        close_tags: Tuple[bytes, ...],
        arity: int,
        items: int,
    ) -> None:
        if buffer.num_chunks != 1:
            raise OverlayError(
                f"overlay span must occupy one chunk, got {buffer.num_chunks}"
            )
        self.buffer = buffer
        self.dut = dut
        self.close_tags = close_tags
        self.arity = arity
        self.items = items
        self.length = buffer.total_length
        self._offs: List[int] = dut.value_off.tolist()
        self._widths: List[int] = dut.field_width.tolist()
        self._clens: List[int] = dut.close_len.tolist()
        self._lens: List[int] = dut.ser_len.tolist()
        self._data = buffer.chunk(int(dut.chunk_id[0])).data

    def rewrite(self, texts: List[bytes], stats: RewriteStats) -> None:
        """Overwrite all values in this span with *texts* (fixed widths)."""
        data = self._data
        offs = self._offs
        widths = self._widths
        clens = self._clens
        lens = self._lens
        close_tags = self.close_tags
        arity = self.arity
        uniform = arity == 1
        close = close_tags[0]
        tag_shifts = 0
        pad_bytes = 0
        for k in range(len(texts)):
            text = texts[k]
            new_len = len(text)
            if new_len > widths[k]:
                raise OverlayError(
                    f"value of {new_len} chars exceeds fixed field width "
                    f"{widths[k]}; overlaying requires stuffed widths no "
                    "value can outgrow"
                )
            off = offs[k]
            end_v = off + new_len
            data[off:end_v] = text
            old_len = lens[k]
            if new_len != old_len:
                if not uniform:
                    close = close_tags[k % arity]
                clen = clens[k]
                data[end_v : end_v + clen] = close
                tag_shifts += 1
                if new_len < old_len:
                    gap = old_len - new_len
                    data[end_v + clen : end_v + clen + gap] = b" " * gap
                    pad_bytes += gap
                lens[k] = new_len
        stats.values_rewritten += len(texts)
        stats.tag_shifts += tag_shifts
        stats.pad_bytes += pad_bytes

    def view(self) -> memoryview:
        return self.buffer.views()[0]


class OverlayTemplate:
    """The overlay counterpart of a :class:`MessageTemplate`."""

    def __init__(
        self,
        signature,
        prefix: bytes,
        suffix: bytes,
        portion: _Span,
        tail: Optional[_Span],
        tracked,
        leaf_types: Tuple[XSDType, ...],
        n_items: int,
        fmt: FloatFormat,
        conv: bool = False,
    ) -> None:
        self.signature = signature
        self.prefix = prefix
        self.suffix = suffix
        self.portion = portion
        self.tail = tail
        self.tracked = tracked
        self.leaf_types = leaf_types
        self.n_items = n_items
        self.fmt = fmt
        #: Route the per-portion re-conversion through the conversion
        #: memo — overlay sends reformat the *whole* array every time,
        #: so repeated values benefit even more than the diff path.
        self.conv = conv
        self.sends = 0
        from repro.core.template import next_template_id

        self.template_id = next_template_id()
        #: A failed send marks the overlay suspect; since every overlay
        #: send restreams the full array anyway, recovery just rebuilds
        #: the template (see BSoapClient._send_overlay).
        self.suspect = False

    # ------------------------------------------------------------------
    @property
    def portion_items(self) -> int:
        return self.portion.items

    @property
    def full_portions(self) -> int:
        return self.n_items // self.portion.items

    @property
    def total_bytes(self) -> int:
        """Exact on-the-wire size of one send (fixed layout)."""
        total = len(self.prefix) + len(self.suffix)
        total += self.full_portions * self.portion.length
        if self.tail is not None:
            total += self.tail.length
        return total

    @property
    def resident_bytes(self) -> int:
        """Serialized bytes held in memory (the point of overlaying)."""
        total = len(self.prefix) + len(self.suffix) + self.portion.length
        if self.tail is not None:
            total += self.tail.length
        return total

    # ------------------------------------------------------------------
    def iter_send_views(
        self, stats: RewriteStats, obs=None
    ) -> Iterator[memoryview | bytes]:
        """Yield wire segments in order, rewriting the overlay chunk
        between yields.

        Consumers **must** copy (or fully transmit) each segment before
        advancing the iterator — the next step overwrites the chunk.
        An ``overlay`` span is traced once the full stream completes.
        """
        yield self.prefix
        arity = self.portion.arity
        per_portion = self.portion.items
        for p in range(self.full_portions):
            lo = p * per_portion * arity
            hi = lo + per_portion * arity
            texts = self.tracked.lexical_for(
                np.arange(lo, hi), self.fmt, cached=self.conv
            )
            self.portion.rewrite(texts, stats)
            yield self.portion.view()
        if self.tail is not None:
            lo = self.full_portions * per_portion * arity
            hi = self.n_items * arity
            texts = self.tracked.lexical_for(
                np.arange(lo, hi), self.fmt, cached=self.conv
            )
            self.tail.rewrite(texts, stats)
            yield self.tail.view()
        yield self.suffix
        self.sends += 1
        if obs is not None and obs.tracer.enabled:
            obs.tracer.emit(
                "overlay",
                template_id=self.template_id,
                portions=self.full_portions + (1 if self.tail is not None else 0),
                items=self.n_items,
                bytes=self.total_bytes,
                values=stats.values_rewritten,
            )


def _build_span(
    ptype: ArrayType,
    texts: List[bytes],
    items: int,
    policy: DiffPolicy,
) -> _Span:
    """Serialize *items* array items into a dedicated single chunk."""

    def width_for(xsd_type: XSDType, ser_len: int) -> int:
        width = policy.stuffing.width_for(xsd_type, ser_len)
        if width < ser_len:  # pragma: no cover - width_for guarantees >=
            raise OverlayError("stuffing produced width below value length")
        return width

    # Conservative single-chunk capacity: tags + max width per leaf.
    element = ptype.element
    arity = element.arity if isinstance(element, StructType) else 1
    if isinstance(element, StructType):
        max_leaf_width = sum(
            (f.xsd_type.widths.max_width or 64) for f in element.fields
        )
        tag_cost = len(ptype.item_tag) * 2 + 5 + sum(
            2 * len(f.name) + 5 for f in element.fields
        )
    else:
        max_leaf_width = element.widths.max_width or 64
        tag_cost = len(ptype.item_tag) * 2 + 5
    capacity = items * (tag_cost + max_leaf_width) + 1024

    buffer = ChunkedBuffer(ChunkPolicy(chunk_size=capacity, reserve=0))
    dutb = DUTTableBuilder()
    if isinstance(element, StructType):
        emit_struct_items(buffer, dutb, texts, element, ptype.item_tag, width_for)
        close_tags = tuple(
            b"</" + f.name.encode("ascii") + b">" for f in element.fields
        )
    else:
        emit_primitive_items(buffer, dutb, texts, ptype.item_tag, element, width_for)
        close_tags = (b"</" + ptype.item_tag.encode("ascii") + b">",)
    return _Span(buffer, dutb.freeze(), close_tags, arity, items)


def build_overlay_template(
    message: SOAPMessage, policy: DiffPolicy
) -> OverlayTemplate:
    """Build the overlay template for a single-array message."""
    if len(message.params) != 1 or not isinstance(message.params[0].ptype, ArrayType):
        raise OverlayError("overlaying supports exactly one array parameter")
    if policy.stuffing.mode is StuffMode.NONE:
        raise OverlayError("overlaying requires a stuffing policy (fixed widths)")

    param = message.params[0]
    ptype: ArrayType = param.ptype  # type: ignore[assignment]
    tracked = make_tracked(param)
    n_items = len(tracked)  # type: ignore[arg-type]
    arity = ptype.values_per_item

    element = ptype.element
    if isinstance(element, StructType):
        leaf_types = tuple(f.xsd_type for f in element.fields)
        item_tag_cost = len(ptype.item_tag) * 2 + 5 + sum(
            2 * len(f.name) + 5 for f in element.fields
        )
        width_sum = sum(
            policy.stuffing.width_for(f.xsd_type, f.xsd_type.widths.min_width)
            for f in element.fields
        )
    else:
        leaf_types = (element,)
        item_tag_cost = len(ptype.item_tag) * 2 + 5
        width_sum = policy.stuffing.width_for(element, element.widths.min_width)
    item_bytes = item_tag_cost + width_sum

    per_portion = min(n_items, policy.derived_portion_items(item_bytes))
    full = n_items // per_portion
    remainder = n_items - full * per_portion

    fmt = policy.float_format
    first_texts = tracked.lexical_for(np.arange(0, per_portion * arity), fmt)
    portion = _build_span(ptype, first_texts, per_portion, policy)

    tail: Optional[_Span] = None
    if remainder:
        tail_texts = tracked.lexical_for(
            np.arange(full * per_portion * arity, n_items * arity), fmt
        )
        tail = _build_span(ptype, tail_texts, remainder, policy)

    layout = envelope_layout(message.namespace, message.operation)
    attrs = array_open_attrs(ptype, n_items)
    prefix = (
        layout.prefix
        + b"<" + param.name.encode("ascii") + _attrs_bytes(attrs) + b">"
    )
    suffix = b"</" + param.name.encode("ascii") + b">" + layout.suffix

    return OverlayTemplate(
        signature=structure_signature(message),
        prefix=prefix,
        suffix=suffix,
        portion=portion,
        tail=tail,
        tracked=tracked,
        leaf_types=leaf_types,
        n_items=n_items,
        fmt=fmt,
        conv=policy.plan.enabled and policy.plan.conversion_cache,
    )
