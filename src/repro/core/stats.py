"""Send statistics and match classification results.

The performance study needs to know *which* path a send took (the
paper's four matching possibilities, §3) and how much mechanical work
the differential rewrite did (values rewritten, closing-tag shifts,
chunk-tail memmoves, splits, reallocations, steals).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["MatchKind", "RewriteStats", "SendReport", "ClientStats"]


class MatchKind(enum.Enum):
    """The paper's four matching possibilities (§3)."""

    #: Entire message identical — resent as-is, zero serialization.
    CONTENT_MATCH = "content"
    #: Same structure and all new values fit their fields — only dirty
    #: values rewritten, no shifting.
    PERFECT_STRUCTURAL = "perfect-structural"
    #: Same structure but some value outgrew its field — shifting or
    #: stealing was needed.
    PARTIAL_STRUCTURAL = "partial-structural"
    #: No usable template — full serialization.
    FIRST_TIME = "first-time"


@dataclass(slots=True)
class RewriteStats:
    """Work performed by one differential rewrite pass."""

    values_rewritten: int = 0
    #: Closing-tag rewrites (value length changed within its field).
    tag_shifts: int = 0
    #: Field expansions resolved by shifting a chunk tail in place.
    shifts_inplace: int = 0
    #: Field expansions that forced a chunk reallocation.
    reallocs: int = 0
    #: Field expansions that forced a chunk split.
    splits: int = 0
    #: Field expansions resolved by stealing neighbor slack.
    steals: int = 0
    #: Bytes of pad written (shrinks + stuffing maintenance).
    pad_bytes: int = 0
    #: Rewrite segments served by a cached plan (no per-send planning).
    plan_hits: int = 0
    #: Segments that compiled a fresh plan (first sight of a dirty
    #: signature, or cache miss after eviction).
    plan_misses: int = 0
    #: Cached plans dropped because the buffer layout epoch moved.
    plan_invalidations: int = 0
    #: Values written through a plan's strided splice runs.
    plan_spliced: int = 0

    @property
    def expansions(self) -> int:
        """Total fields that outgrew their width."""
        return self.shifts_inplace + self.reallocs + self.splits + self.steals

    def merge(self, other: "RewriteStats") -> None:
        self.values_rewritten += other.values_rewritten
        self.tag_shifts += other.tag_shifts
        self.shifts_inplace += other.shifts_inplace
        self.reallocs += other.reallocs
        self.splits += other.splits
        self.steals += other.steals
        self.pad_bytes += other.pad_bytes
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_invalidations += other.plan_invalidations
        self.plan_spliced += other.plan_spliced


@dataclass(slots=True)
class SendReport:
    """Outcome of one :meth:`BSoapClient.send`."""

    match_kind: MatchKind
    bytes_sent: int
    rewrite: RewriteStats = field(default_factory=RewriteStats)
    #: memmove traffic the buffer performed for this template so far.
    buffer_bytes_moved: int = 0
    num_chunks: int = 0
    #: Identity of the template this send used (-1 when none survives
    #: the call, e.g. forced-full-every-time mode).  Joins the send
    #: with its ``serialize``/``rewrite`` spans in a trace stream.
    template_id: int = -1
    #: This send was a forced full serialization resynchronizing the
    #: peer after a rolled-back (failed) send epoch.
    forced_full: bool = False
    #: Failed attempts before this send succeeded (filled by the
    #: retrying caller, e.g. RPCChannel; 0 for direct sends).
    retries: int = 0
    #: This send went out as a binary delta frame instead of full XML
    #: (``bytes_sent`` is then the frame size, not the document size).
    delta: bool = False

    @property
    def serialized_everything(self) -> bool:
        return self.match_kind is MatchKind.FIRST_TIME


@dataclass(slots=True)
class ClientStats:
    """Aggregate counters across a client's lifetime."""

    sends: int = 0
    by_kind: Dict[MatchKind, int] = field(
        default_factory=lambda: {k: 0 for k in MatchKind}
    )
    #: Payload bytes handed to the transport (tx; delta frames count
    #: at their frame size, which is what makes the bandwidth win
    #: visible here).
    bytes_sent: int = 0
    #: Response body bytes received (rx; filled by RPCChannel).
    bytes_received: int = 0
    #: Sends shipped as binary delta frames.
    delta_sends: int = 0
    templates_built: int = 0
    #: Send epochs rolled back after a transport failure.
    rollbacks: int = 0
    #: Forced full serializations performed to resynchronize the peer.
    forced_full_sends: int = 0
    #: Rewrite-plan cache activity (see RewriteStats), client-lifetime.
    plan_hits: int = 0
    plan_misses: int = 0
    plan_invalidations: int = 0

    def record(self, report: SendReport) -> None:
        self.sends += 1
        self.by_kind[report.match_kind] += 1
        self.bytes_sent += report.bytes_sent
        if report.delta:
            self.delta_sends += 1
        if report.forced_full:
            self.forced_full_sends += 1
        rw = report.rewrite
        self.plan_hits += rw.plan_hits
        self.plan_misses += rw.plan_misses
        self.plan_invalidations += rw.plan_invalidations

    def merge_from(self, other: "ClientStats") -> None:
        """Accumulate *other*'s counters (per-session stats merged on read)."""
        self.sends += other.sends
        for kind, count in other.by_kind.items():
            self.by_kind[kind] += count
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.delta_sends += other.delta_sends
        self.templates_built += other.templates_built
        self.rollbacks += other.rollbacks
        self.forced_full_sends += other.forced_full_sends
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_invalidations += other.plan_invalidations

    def summary(self) -> str:
        parts = [f"sends={self.sends}", f"bytes={self.bytes_sent}"]
        parts += [
            f"{kind.value}={count}" for kind, count in self.by_kind.items() if count
        ]
        parts.append(f"templates={self.templates_built}")
        if self.delta_sends:
            parts.append(f"delta={self.delta_sends}")
        if self.bytes_received:
            parts.append(f"rx={self.bytes_received}")
        if self.rollbacks:
            parts.append(f"rollbacks={self.rollbacks}")
        if self.forced_full_sends:
            parts.append(f"resyncs={self.forced_full_sends}")
        if self.plan_hits or self.plan_misses:
            parts.append(f"plan_hits={self.plan_hits}/{self.plan_hits + self.plan_misses}")
        return " ".join(parts)
