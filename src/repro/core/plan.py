"""Compiled rewrite plans: amortize per-send planning work.

The paper's steady state — a scientific client mutating the *same*
value subset every iteration — pays, on every send, for work whose
result never changes: scanning dirty bits, gathering DUT offset /
chunk-id / width columns, resolving close tags, and grouping writes
by chunk.  A :class:`RewritePlan` captures all of that once, keyed by
the send's **dirty signature** (the exact dirty-bit pattern of a
parameter segment); subsequent sends with the same signature replay
the precompiled write program directly.

Validity is enforced by two checks, both O(segment) or cheaper:

* **layout epoch** — :class:`~repro.buffers.chunked.ChunkedBuffer`
  increments ``layout_epoch`` on every byte-moving operation (gap
  open, realloc, split, steal).  A plan compiled at epoch *e* is
  discarded the moment the buffer reports any other epoch.  Template
  rebuilds swap the buffer object entirely (fresh epoch counter), so
  :meth:`~repro.core.template.MessageTemplate.rebuild_in_place`
  clears the cache explicitly.
* **dirty-mask equality** — ``np.array_equal`` over the segment's
  dirty column vs the mask snapshot taken at compile time.  This is a
  memcmp-speed comparison and doubles as the signature lookup: no
  hashing, no false positives.

Because plans cache *where* to write, never *what*, a valid plan is
byte-for-byte equivalent to the generic path; anything it cannot
prove safe (a value outgrowing its field, a non-finite double on the
splice path, a drifted ``ser_len``) falls back to the generic
machinery mid-call.

**Splice runs.**  When a parameter is a max-stuffed double array
under :attr:`~repro.lexical.floats.FloatFormat.FIXED` (every value
exactly :data:`~repro.lexical.cache.DOUBLE_FIXED_WIDTH` bytes) and
the dirty entries are evenly spaced within a chunk, the whole run
collapses to **one strided NumPy assignment**: the batch formatter
packs all new values into a contiguous ``n × 24`` blob and an
``as_strided`` view scatters its rows onto the value fields in C.
No per-entry Python iteration at all — measured ~10× faster than the
per-entry write loop on 64Ki-double arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.policy import DiffPolicy
from repro.core.stats import RewriteStats
from repro.dut.tracked import TrackedArray
from repro.lexical.cache import DOUBLE_FIXED_WIDTH
from repro.lexical.floats import FloatFormat
from repro.schema.types import DOUBLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.template import BoundParam, MessageTemplate

__all__ = ["RewritePlan", "PlanCache", "compile_plan"]

#: Segment key: the DUT entry range a plan covers.
SegKey = Tuple[int, int]


class RewritePlan:
    """One compiled write program for a (segment, dirty signature).

    Everything layout-dependent is pre-materialized at compile time:
    value offsets as a plain Python list, writes grouped into runs of
    consecutive entries sharing a chunk (each run holds a direct
    reference to the chunk's ``bytearray`` — safe because any
    operation that replaces or moves chunk storage bumps the layout
    epoch, which invalidates this plan before the reference could go
    stale), close tags resolved per entry, and field widths as an
    ndarray for the vectorized fits-check.
    """

    __slots__ = (
        "epoch",
        "mask",
        "take",
        "leaf",
        "offs",
        "runs",
        "close",
        "clen",
        "closes",
        "widths",
        "splice_runs",
        "uses",
    )

    def __init__(
        self,
        epoch: int,
        mask: np.ndarray,
        take: np.ndarray,
        leaf: np.ndarray,
        offs: List[int],
        runs: List[Tuple[bytearray, int, int]],
        close: Optional[bytes],
        closes: Optional[List[bytes]],
        widths: np.ndarray,
        splice_runs: Optional[List[Tuple[np.ndarray, int, int]]],
    ) -> None:
        self.epoch = epoch
        self.mask = mask
        self.take = take
        self.leaf = leaf
        self.offs = offs
        self.runs = runs
        self.close = close
        self.clen = len(close) if close is not None else 0
        self.closes = closes
        self.widths = widths
        self.splice_runs = splice_runs
        self.uses = 0

    def execute(
        self,
        template: "MessageTemplate",
        bp: "BoundParam",
        policy: DiffPolicy,
        stats: RewriteStats,
    ) -> Optional[List[bytes]]:
        """Replay the write program against current tracked values.

        Returns ``None`` on success (all values written, ``ser_len``
        maintained, dirty bits NOT cleared — the caller owns those).
        Returns the freshly converted lexical forms when some value no
        longer fits its field: the caller must fall back to the
        expanding :func:`~repro.core.differential.write_entry` loop,
        reusing the returned texts (the conversion is not repeated).
        """
        dut = template.dut
        take = self.take
        n = len(take)
        conv = policy.plan.conversion_cache

        if self.splice_runs is not None and bool(
            (dut.ser_len[take] == DOUBLE_FIXED_WIDTH).all()
        ):
            # ser_len can drift without a layout change (a non-finite
            # value written through the generic path shrinks it), so it
            # is re-verified per call rather than baked into the plan.
            blob = bp.tracked.lexical_fixed_blob(self.leaf, cached=conv)
            if blob is not None:
                mat = np.frombuffer(blob, dtype=np.uint8).reshape(
                    n, DOUBLE_FIXED_WIDTH
                )
                for view, s, e in self.splice_runs:
                    view[:] = mat[s:e]
                stats.values_rewritten += n
                stats.plan_spliced += n
                self.uses += 1
                return None
            # Non-finite value present: variable-width forms below.

        texts = bp.tracked.lexical_for(self.leaf, policy.float_format, cached=conv)
        lens_l: List[int] = list(map(len, texts))
        lens = np.asarray(lens_l, dtype=np.int32)
        if bool((lens > self.widths).any()):
            return texts

        olds: List[int] = dut.ser_len[take].tolist()
        offs = self.offs
        uniform = self.closes is None
        close = self.close
        clen = self.clen
        closes = self.closes
        tag_shifts = 0
        pad_bytes = 0
        for data, s, e in self.runs:
            for k in range(s, e):
                off = offs[k]
                new_len = lens_l[k]
                end_v = off + new_len
                data[off:end_v] = texts[k]
                old = olds[k]
                if new_len != old:
                    if not uniform:
                        close = closes[k]  # type: ignore[index]
                        clen = len(close)
                    data[end_v : end_v + clen] = close  # type: ignore[arg-type]
                    tag_shifts += 1
                    if new_len < old:
                        gap = old - new_len
                        start = end_v + clen
                        data[start : start + gap] = b" " * gap
                        pad_bytes += gap
        dut.ser_len[take] = lens
        stats.values_rewritten += n
        stats.tag_shifts += tag_shifts
        stats.pad_bytes += pad_bytes
        self.uses += 1
        return None


def _splice_runs_for(
    bp: "BoundParam",
    policy: DiffPolicy,
    widths: np.ndarray,
    offs: List[int],
    runs: List[Tuple[bytearray, int, int]],
) -> Optional[List[Tuple[np.ndarray, int, int]]]:
    """Precompile strided splice views, or ``None`` when ineligible.

    Eligible: a primitive double array under FIXED float format whose
    selected fields are all exactly :data:`DOUBLE_FIXED_WIDTH` wide
    and, within each chunk run, evenly spaced (dirty patterns like
    "every element" or "every k-th element" — the steady-state norm).
    """
    if policy.float_format is not FloatFormat.FIXED:
        return None
    tracked = bp.tracked
    if not isinstance(tracked, TrackedArray) or tracked.xsd_type is not DOUBLE:
        return None
    if bp.arity != 1:  # pragma: no cover - TrackedArray implies arity 1
        return None
    if not bool((widths == DOUBLE_FIXED_WIDTH).all()):
        return None
    out: List[Tuple[np.ndarray, int, int]] = []
    for data, s, e in runs:
        n = e - s
        first = offs[s]
        if n > 1:
            steps = np.diff(np.asarray(offs[s:e], dtype=np.int64))
            stride = int(steps[0])
            if not bool((steps == stride).all()):
                return None
        else:
            stride = DOUBLE_FIXED_WIDTH
        base = np.frombuffer(data, dtype=np.uint8)
        view = np.lib.stride_tricks.as_strided(
            base[first:],
            shape=(n, DOUBLE_FIXED_WIDTH),
            strides=(stride, 1),
        )
        out.append((view, s, e))
    return out


def compile_plan(
    template: "MessageTemplate",
    bp: "BoundParam",
    seg_lo: int,
    seg_hi: int,
    take: np.ndarray,
    policy: DiffPolicy,
) -> RewritePlan:
    """Compile the write program for *take* (dirty entries of a segment).

    Must be called while the layout that produced *take*'s locations is
    still current (i.e. immediately after a non-expanding rewrite, or
    before any rewrite at all).
    """
    dut = template.dut
    buffer = template.buffer
    mask = dut.dirty[seg_lo:seg_hi].copy()
    leaf = take - bp.entry_base
    offs: List[int] = dut.value_off[take].tolist()
    cids: List[int] = dut.chunk_id[take].tolist()
    widths = dut.field_width[take].copy()

    runs: List[Tuple[bytearray, int, int]] = []
    start = 0
    for k in range(1, len(cids) + 1):
        if k == len(cids) or cids[k] != cids[start]:
            runs.append((buffer.chunk(cids[start]).data, start, k))
            start = k

    if bp.arity == 1:
        close: Optional[bytes] = bp.close_tags[0]
        closes: Optional[List[bytes]] = None
    else:
        close = None
        leaf_pos = (leaf % bp.arity).tolist()
        closes = [bp.close_tags[p] for p in leaf_pos]

    splice = _splice_runs_for(bp, policy, widths, offs, runs)
    return RewritePlan(
        epoch=buffer.layout_epoch,
        mask=mask,
        take=take,
        leaf=leaf,
        offs=offs,
        runs=runs,
        close=close,
        closes=closes,
        widths=widths,
        splice_runs=splice,
    )


#: Adaptive compile bypass: after this many consecutive lookup misses
#: on one segment, stop compiling new plans for that segment...
COMPILE_BYPASS_STREAK = 8
#: ...for this many further misses, then try compiling again.
COMPILE_BYPASS_MISSES = 32


class PlanCache:
    """Per-template store of compiled plans, keyed by entry segment.

    Each segment keeps a small FIFO list of plans (distinct dirty
    signatures); lookups prune epoch-stale plans as they go, so a
    layout change costs nothing until the segment is next touched.

    Compilation is O(dirty count), so a workload whose dirty
    signature never repeats would pay for a plan on every send and
    reuse none of them.  The cache defends itself the same way the
    conversion memo does: a segment that misses
    :data:`COMPILE_BYPASS_STREAK` times in a row stops compiling for
    the next :data:`COMPILE_BYPASS_MISSES` misses (lookups — one dict
    probe and a mask compare — continue, so a recurring signature
    still hits), then compiles once more to re-probe the workload.
    """

    __slots__ = ("segments", "hits", "misses", "invalidations", "_streaks")

    def __init__(self) -> None:
        self.segments: Dict[SegKey, List[RewritePlan]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: per-segment (consecutive misses, bypassed compiles left)
        self._streaks: Dict[SegKey, List[int]] = {}

    def should_compile(self, key: SegKey) -> bool:
        """Whether this lookup miss should pay for a plan compile.

        Call once per miss; drives the per-segment compile bypass.
        """
        streak = self._streaks.get(key)
        if streak is None:
            streak = self._streaks[key] = [0, 0]
        if streak[1] > 0:
            streak[1] -= 1
            return False
        streak[0] += 1
        if streak[0] >= COMPILE_BYPASS_STREAK:
            streak[0] = 0
            streak[1] = COMPILE_BYPASS_MISSES
        return True

    def lookup(
        self,
        key: SegKey,
        epoch: int,
        seg_mask: np.ndarray,
        stats: Optional[RewriteStats] = None,
    ) -> Optional[RewritePlan]:
        """The valid plan matching this dirty signature, if any."""
        plans = self.segments.get(key)
        if plans:
            live = [p for p in plans if p.epoch == epoch]
            if len(live) != len(plans):
                dropped = len(plans) - len(live)
                self.invalidations += dropped
                if stats is not None:
                    stats.plan_invalidations += dropped
                if live:
                    self.segments[key] = plans = live
                else:
                    del self.segments[key]
                    plans = None
        if plans:
            for plan in plans:
                if np.array_equal(plan.mask, seg_mask):
                    self.hits += 1
                    streak = self._streaks.get(key)
                    if streak is not None:
                        streak[0] = 0
                        streak[1] = 0
                    return plan
        self.misses += 1
        return None

    def store(self, key: SegKey, plan: RewritePlan, max_per_segment: int) -> None:
        plans = self.segments.setdefault(key, [])
        plans.append(plan)
        if len(plans) > max_per_segment:
            del plans[0]

    def clear(self) -> None:
        """Drop every plan (template rebuild: fresh buffer, fresh epochs)."""
        self.segments.clear()
        self._streaks.clear()

    def __len__(self) -> int:
        return sum(len(v) for v in self.segments.values())
