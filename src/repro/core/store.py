"""Template stores: sharing and multi-variant caching (paper §6).

Two of the paper's future-work directions live here:

**Template sharing.**
    "For applications that send the same (or similar) data to
    different remote services, we plan to investigate the extent to
    which it would be beneficial for them to share message chunks
    across templates."
  A :class:`TemplateStore` can be handed to several
  :class:`~repro.core.client.BSoapClient` instances (one per remote
  service); the serialization cost of a message is then paid once and
  amortized across every service that receives it.

**Multiple templates per call type.**
    "It also may be useful to store multiple different message
    templates for the same remote service, rather than one per call
    type."
  With ``variants_per_signature > 1`` the store keeps up to *k*
  templates per structure signature.  On each send the client picks
  the variant whose stored values differ least from the outgoing
  message (one vectorized comparison per variant — far cheaper than
  re-formatting); an application alternating between a few recurring
  payloads gets a content match for each instead of rewriting
  everything on every alternation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.core.template import MessageTemplate
from repro.dut.tracked import (
    TrackedArray,
    TrackedScalar,
    TrackedStringArray,
    TrackedStructArray,
)
from repro.errors import TemplateError
from repro.soap.message import Parameter, SOAPMessage, Signature

__all__ = ["TemplateStore", "count_differences"]


def count_differences(template: MessageTemplate, message: SOAPMessage) -> int:
    """Leaves whose values differ between *message* and the template.

    Pure read: no dirty bits are flipped.  Used to rank template
    variants; assumes the message matches the template's structure.
    """
    total = 0
    for p in message.params:
        tracked = template.tracked(p.name)
        value = p.value
        if value is tracked:
            continue
        if isinstance(tracked, TrackedArray):
            incoming = np.asarray(value, dtype=tracked.data.dtype)
            diff = incoming != tracked.data
            if tracked.data.dtype.kind == "f":
                diff &= ~(np.isnan(incoming) & np.isnan(tracked.data))
            total += int(diff.sum())
        elif isinstance(tracked, TrackedStructArray):
            struct = tracked.struct
            if isinstance(value, dict):
                columns = value
            else:
                columns = {
                    f.name: [
                        rec[i] if isinstance(rec, tuple) else getattr(rec, f.name)
                        for rec in value  # type: ignore[union-attr]
                    ]
                    for i, f in enumerate(struct.fields)
                }
            for f in struct.fields:
                col = tracked.column(f.name)
                incoming = np.asarray(columns[f.name], dtype=col.dtype)
                diff = incoming != col
                if col.dtype.kind == "f":
                    diff &= ~(np.isnan(incoming) & np.isnan(col))
                total += int(diff.sum())
        elif isinstance(tracked, TrackedStringArray):
            total += sum(
                1 for i, s in enumerate(value) if tracked[i] != s  # type: ignore[arg-type]
            )
        elif isinstance(tracked, TrackedScalar):
            total += int(tracked.value != value)
        else:  # pragma: no cover - exhaustive
            raise TemplateError(f"unknown tracked type {type(tracked)!r}")
    return total


class TemplateStore:
    """Signature-keyed template cache, shareable between clients.

    Parameters
    ----------
    variants_per_signature:
        Maximum templates retained per structure signature (≥ 1).
        Eviction is least-recently-used within a signature.
    """

    def __init__(self, variants_per_signature: int = 1) -> None:
        if variants_per_signature < 1:
            raise TemplateError("variants_per_signature must be >= 1")
        self.variants_per_signature = variants_per_signature
        self._by_sig: Dict[Signature, List[object]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def variants(self, signature: Signature) -> List[object]:
        """All cached templates for *signature*, most recent first."""
        return list(self._by_sig.get(signature, ()))

    def get(self, signature: Signature) -> Optional[object]:
        """Most recently used template for *signature*, if any."""
        entries = self._by_sig.get(signature)
        if not entries:
            self.misses += 1
            return None
        self.hits += 1
        return entries[0]

    def select(
        self, signature: Signature, message: SOAPMessage
    ) -> tuple[Optional[MessageTemplate], int]:
        """The variant needing the fewest rewrites, and that count.

        Only applies to in-memory :class:`MessageTemplate` variants;
        returns ``(None, -1)`` when nothing is cached.
        """
        entries = self._by_sig.get(signature)
        if not entries:
            self.misses += 1
            return None, -1
        self.hits += 1
        best: Optional[MessageTemplate] = None
        best_count = -1
        for candidate in entries:
            if not isinstance(candidate, MessageTemplate):
                continue
            count = count_differences(candidate, message)
            if best is None or count < best_count:
                best, best_count = candidate, count
            if count == 0:
                break
        if best is not None:
            self.touch(signature, best)
        return best, best_count

    def put(self, signature: Signature, template: object) -> None:
        """Insert a template (most-recent position), evicting LRU."""
        entries = self._by_sig.setdefault(signature, [])
        entries.insert(0, template)
        while len(entries) > self.variants_per_signature:
            entries.pop()
            self.evictions += 1

    def touch(self, signature: Signature, template: object) -> None:
        """Mark *template* most recently used."""
        entries = self._by_sig.get(signature, [])
        if template in entries:
            entries.remove(template)
            entries.insert(0, template)

    def forget(self, signature: Signature) -> None:
        self._by_sig.pop(signature, None)

    def clear(self) -> None:
        self._by_sig.clear()

    # ------------------------------------------------------------------
    @property
    def template_count(self) -> int:
        return sum(len(v) for v in self._by_sig.values())

    @property
    def signature_count(self) -> int:
        return len(self._by_sig)

    def approx_bytes(self) -> int:
        """Approximate bytes retained across every cached template.

        Sums each in-memory template's ``memory_footprint()['total']``
        (serialized chunks + DUT columns); entries without a footprint
        (spilled handles and such) contribute nothing.
        """
        total = 0
        for entries in self._by_sig.values():
            for template in entries:
                footprint = getattr(template, "memory_footprint", None)
                if callable(footprint):
                    total += int(footprint()["total"])
        return total

    def __contains__(self, signature: Signature) -> bool:
        return bool(self._by_sig.get(signature))
