"""Full serialization: building message templates.

This is the paper's "first-time send" path: the message is serialized
from scratch into a chunked buffer while a DUT table is recorded
alongside it.  The per-item emitters are also reused by the chunk
overlay (which serializes one portion at a time through these same
routines).

Layout produced for every leaf value (see DESIGN.md §4)::

    <tag>VALUE</tag>PAD

with ``len(VALUE) + len(PAD) == field_width`` — pad lives *between*
the closing tag and the following markup, which is the layout whose
closing-tag-shift cost the paper measures.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.buffers.chunked import ChunkedBuffer
from repro.core.policy import DiffPolicy
from repro.core.template import BoundParam, MessageTemplate, Tracked
from repro.dut.table import DUTTableBuilder
from repro.dut.tracked import (
    TrackedArray,
    TrackedScalar,
    TrackedStringArray,
    TrackedStructArray,
)
from repro.errors import TemplateError
from repro.lexical.floats import FloatFormat
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import STRING, XSDType
from repro.soap.encoding import array_open_attrs, xsi_type_attr
from repro.soap.envelope import envelope_layout
from repro.soap.message import Parameter, SOAPMessage, structure_signature
from repro.xmlkit.escape import escape_attr

__all__ = ["build_template", "make_tracked", "emit_primitive_items", "emit_struct_items"]

#: Pre-built whitespace pads (indexed by pad length).  Field widths are
#: bounded by the widest primitive (24) plus headroom for FIXED modes.
_PAD_CACHE: Tuple[bytes, ...] = tuple(b" " * i for i in range(129))


def _pad(n: int) -> bytes:
    if n < len(_PAD_CACHE):
        return _PAD_CACHE[n]
    return b" " * n


def _attrs_bytes(attrs: dict) -> bytes:
    parts = []
    for key, value in attrs.items():
        parts.append(
            b" " + key.encode("ascii") + b'="'
            + escape_attr(value.encode("utf-8")) + b'"'
        )
    return b"".join(parts)


# ----------------------------------------------------------------------
# tracked-value construction
# ----------------------------------------------------------------------
def make_tracked(param: Parameter) -> Tracked:
    """Wrap a parameter's value in the appropriate tracked object.

    Values that already *are* tracked objects are used as-is, which is
    how applications keep a handle they mutate between sends.
    """
    ptype, value = param.ptype, param.value
    if isinstance(
        value, (TrackedArray, TrackedStructArray, TrackedScalar, TrackedStringArray)
    ):
        return value
    if isinstance(ptype, ArrayType):
        element = ptype.element
        if isinstance(element, StructType):
            if isinstance(value, dict):
                return TrackedStructArray(value, element)
            return TrackedStructArray.from_records(value, element)  # type: ignore[arg-type]
        if element is STRING:
            return TrackedStringArray(value)  # type: ignore[arg-type]
        return TrackedArray(value, element)  # type: ignore[arg-type]
    if isinstance(ptype, StructType):
        # Scalar struct == struct array of length one.
        if isinstance(value, dict):
            return TrackedStructArray({k: [v] for k, v in value.items()}, ptype)
        return TrackedStructArray.from_records([value], ptype)
    return TrackedScalar(value, ptype)


# ----------------------------------------------------------------------
# item emitters (shared with the overlay builder)
# ----------------------------------------------------------------------
def emit_primitive_items(
    buffer: ChunkedBuffer,
    dutb: DUTTableBuilder,
    texts: Sequence[bytes],
    item_tag: str,
    xsd_type: XSDType,
    width_for: Callable[[XSDType, int], int],
) -> None:
    """Emit ``<item>VAL</item>PAD`` for each lexical value.

    Items are packed into chunk-sized batches: one buffer append and
    one bulk DUT extend per batch, so the per-item cost is the join
    plus a little offset arithmetic — this keeps bSOAP full
    serialization competitive with the streaming baseline, as in the
    paper.
    """
    open_item = b"<" + item_tag.encode("ascii") + b">"
    close_item = b"</" + item_tag.encode("ascii") + b">"
    open_len = len(open_item)
    clen = len(close_item)
    fixed = open_len + clen
    tid = xsd_type.type_id
    batch_limit = max(buffer.policy.soft_limit, 1)
    pad = _pad

    # Fast path: when the stuffing policy is the identity for this
    # type (no pad anywhere), a whole batch is one join and its DUT
    # offsets one cumulative sum — the serializer's hottest loop.
    probe = max(1, xsd_type.widths.min_width)
    if width_for(xsd_type, probe) == probe:
        _emit_primitive_items_unstuffed(
            buffer, dutb, texts, open_item, close_item, tid, batch_limit
        )
        return

    parts: List[bytes] = []
    rel_offs: List[int] = []
    lens: List[int] = []
    widths: List[int] = []
    cursor = 0

    def flush() -> None:
        nonlocal parts, rel_offs, lens, widths, cursor
        if not parts:
            return
        loc = buffer.append(b"".join(parts))
        base = loc.offset
        dutb.add_batch(
            loc.cid, [base + r for r in rel_offs], lens, widths, tid, clen
        )
        parts = []
        rel_offs = []
        lens = []
        widths = []
        cursor = 0

    for text in texts:
        n = len(text)
        width = width_for(xsd_type, n)
        padding = width - n
        if padding:
            parts.append(open_item + text + close_item + pad(padding))
        else:
            parts.append(open_item + text + close_item)
        rel_offs.append(cursor + open_len)
        lens.append(n)
        widths.append(width)
        cursor += fixed + width
        if cursor >= batch_limit:
            flush()
    flush()


def _emit_primitive_items_unstuffed(
    buffer: ChunkedBuffer,
    dutb: DUTTableBuilder,
    texts: Sequence[bytes],
    open_item: bytes,
    close_item: bytes,
    tid: int,
    batch_limit: int,
) -> None:
    """Zero-pad emission: ``field_width == ser_len`` for every item.

    Builds each chunk-sized batch as ``open + sep.join(values) +
    close`` (one allocation) and derives all value offsets from one
    NumPy cumulative sum, keeping bSOAP full serialization within
    range of the streaming baseline (the paper reports them close).
    """
    open_len = len(open_item)
    fixed = open_len + len(close_item)
    clen = len(close_item)
    sep = close_item + open_item
    lens = list(map(len, texts))

    def flush(a: int, b: int) -> None:
        if a >= b:
            return
        blob = open_item + sep.join(texts[a:b]) + close_item
        loc = buffer.append(blob)
        batch_lens = np.asarray(lens[a:b], dtype=np.int64)
        offs = np.empty(b - a, dtype=np.int64)
        offs[0] = loc.offset + open_len
        if b - a > 1:
            np.cumsum(batch_lens[:-1] + fixed, out=offs[1:])
            offs[1:] += offs[0]
        lens_list = lens[a:b]
        dutb.add_batch(loc.cid, offs.tolist(), lens_list, lens_list, tid, clen)

    start = 0
    cursor = 0
    for i, n in enumerate(lens):
        cursor += fixed + n
        if cursor >= batch_limit:
            flush(start, i + 1)
            start = i + 1
            cursor = 0
    flush(start, len(lens))


def emit_struct_items(
    buffer: ChunkedBuffer,
    dutb: DUTTableBuilder,
    texts: Sequence[bytes],
    struct: StructType,
    item_tag: str,
    width_for: Callable[[XSDType, int], int],
) -> None:
    """Emit ``<mio><x>V</x>PAD<y>V</y>PAD<v>V</v>PAD</mio>`` items.

    *texts* is the flattened item-major leaf list (``n * arity``).
    """
    arity = struct.arity
    if len(texts) % arity:
        raise TemplateError("struct leaf count not divisible by arity")
    item_open = b"<" + item_tag.encode("ascii") + b">"
    item_close = b"</" + item_tag.encode("ascii") + b">"
    field_opens = [b"<" + f.name.encode("ascii") + b">" for f in struct.fields]
    field_closes = [b"</" + f.name.encode("ascii") + b">" for f in struct.fields]
    field_types = [f.xsd_type for f in struct.fields]

    # Fast path: identity stuffing for every field → batch join +
    # vectorized offsets (see the primitive twin above).
    if all(
        width_for(t, max(1, t.widths.min_width)) == max(1, t.widths.min_width)
        for t in field_types
    ):
        _emit_struct_items_unstuffed(
            buffer,
            dutb,
            texts,
            item_open,
            item_close,
            field_opens,
            field_closes,
            field_types,
            max(buffer.policy.soft_limit, 1),
        )
        return

    field_open_lens = [len(fo) for fo in field_opens]
    field_close_lens = [len(fc) for fc in field_closes]
    type_ids = [t.type_id for t in field_types]
    item_open_len = len(item_open)
    item_close_len = len(item_close)
    batch_limit = max(buffer.policy.soft_limit, 1)
    pad = _pad
    n_items = len(texts) // arity

    # Batched emission: build item byte strings and leaf offsets, then
    # one append + one bulk DUT extend per chunk-sized batch.
    parts: List[bytes] = []
    rel_offs: List[int] = []
    lens: List[int] = []
    widths: List[int] = []
    batch_tids: List[int] = []
    batch_clens: List[int] = []
    cursor = 0

    def flush() -> None:
        nonlocal parts, rel_offs, lens, widths, batch_tids, batch_clens, cursor
        if not parts:
            return
        loc = buffer.append(b"".join(parts))
        base = loc.offset
        dutb.add_batch_mixed(
            loc.cid,
            [base + r for r in rel_offs],
            lens,
            widths,
            batch_tids,
            batch_clens,
        )
        parts = []
        rel_offs = []
        lens = []
        widths = []
        batch_tids = []
        batch_clens = []
        cursor = 0

    for i in range(n_items):
        item_parts: List[bytes] = [item_open]
        pos = cursor + item_open_len
        base = i * arity
        for f in range(arity):
            text = texts[base + f]
            ftype = field_types[f]
            L = len(text)
            width = width_for(ftype, L)
            item_parts.append(field_opens[f])
            item_parts.append(text)
            item_parts.append(field_closes[f])
            padding = width - L
            if padding:
                item_parts.append(pad(padding))
            rel_offs.append(pos + field_open_lens[f])
            lens.append(L)
            widths.append(width)
            batch_tids.append(type_ids[f])
            batch_clens.append(field_close_lens[f])
            pos += field_open_lens[f] + width + field_close_lens[f]
        item_parts.append(item_close)
        parts.append(b"".join(item_parts))
        cursor = pos + item_close_len
        if cursor >= batch_limit:
            flush()
    flush()


def _emit_struct_items_unstuffed(
    buffer: ChunkedBuffer,
    dutb: DUTTableBuilder,
    texts: Sequence[bytes],
    item_open: bytes,
    item_close: bytes,
    field_opens: List[bytes],
    field_closes: List[bytes],
    field_types: List[XSDType],
    batch_limit: int,
) -> None:
    """Zero-pad struct emission: one join + one cumsum per batch.

    A batch's byte pieces are assembled with strided slice assignment
    into a repeated per-item pattern (``<mio><x>•</x><y>•</y><v>•</v>
    </mio>`` with ``•`` holes), then joined once.  Leaf offsets follow
    from a cumulative sum of value lengths plus the constant tag
    geometry.
    """
    arity = len(field_opens)
    fo_lens = [len(b) for b in field_opens]
    fc_lens = [len(b) for b in field_closes]
    tids = [t.type_id for t in field_types]
    item_open_len = len(item_open)
    tag_overhead = item_open_len + len(item_close) + sum(fo_lens) + sum(fc_lens)

    # Per-item piece pattern with text holes.
    pattern: List[bytes] = [item_open]
    for f in range(arity):
        pattern.extend((field_opens[f], b"", field_closes[f]))
    pattern.append(item_close)
    pieces_per_item = len(pattern)

    # Constant byte distance from leaf f's value end to leaf f+1's
    # value start (wrapping across the item boundary for the last).
    next_gap = [fc_lens[f] + fo_lens[f + 1] for f in range(arity - 1)]
    next_gap.append(fc_lens[-1] + len(item_close) + item_open_len + fo_lens[0])

    lens = list(map(len, texts))
    n_items = len(texts) // arity
    gaps = np.tile(np.asarray(next_gap, dtype=np.int64), n_items)

    # Batch boundaries by serialized size.
    item_sizes = np.asarray(lens, dtype=np.int64).reshape(n_items, arity).sum(axis=1)
    item_sizes += tag_overhead

    def flush(a: int, b: int) -> None:
        if a >= b:
            return
        count = b - a
        pieces = pattern * count
        for f in range(arity):
            pieces[1 + 3 * f + 1 :: pieces_per_item] = texts[
                a * arity + f : b * arity : arity
            ]
        loc = buffer.append(b"".join(pieces))
        leaf_lo = a * arity
        leaf_hi = b * arity
        batch_lens = np.asarray(lens[leaf_lo:leaf_hi], dtype=np.int64)
        offs = np.empty(count * arity, dtype=np.int64)
        offs[0] = loc.offset + item_open_len + fo_lens[0]
        if len(offs) > 1:
            np.cumsum(batch_lens[:-1] + gaps[leaf_lo : leaf_hi - 1], out=offs[1:])
            offs[1:] += offs[0]
        lens_list = lens[leaf_lo:leaf_hi]
        dutb.add_batch_mixed(
            loc.cid,
            offs.tolist(),
            lens_list,
            lens_list,
            tids * count,
            fc_lens * count,
        )

    start = 0
    cursor = 0
    for i in range(n_items):
        cursor += int(item_sizes[i])
        if cursor >= batch_limit:
            flush(start, i + 1)
            start = i + 1
            cursor = 0
    flush(start, n_items)


def _emit_param(
    buffer: ChunkedBuffer,
    dutb: DUTTableBuilder,
    param: Parameter,
    tracked: Tracked,
    policy: DiffPolicy,
) -> BoundParam:
    """Serialize one parameter, returning its binding record."""
    width_for = policy.stuffing.width_for
    fmt = policy.float_format
    # First-time builds convert every value exactly once, so probing
    # the conversion memo here is near-pure miss traffic — it would
    # both cost time and poison the memo's adaptive hit-rate window
    # for the differential rewrites the memo actually targets.
    conv = False
    entry_base = len(dutb)
    name = param.name
    ptype = param.ptype

    if isinstance(ptype, ArrayType):
        length = len(tracked)  # type: ignore[arg-type]
        attrs = array_open_attrs(ptype, length)
        buffer.append(
            b"<" + name.encode("ascii") + _attrs_bytes(attrs) + b">"
        )
        texts = tracked.lexical_all(fmt, cached=conv)
        if isinstance(ptype.element, StructType):
            emit_struct_items(buffer, dutb, texts, ptype.element, ptype.item_tag, width_for)
            arity = ptype.element.arity
            close_tags = tuple(
                b"</" + f.name.encode("ascii") + b">" for f in ptype.element.fields
            )
            leaf_types = tuple(f.xsd_type for f in ptype.element.fields)
        else:
            emit_primitive_items(
                buffer, dutb, texts, ptype.item_tag, ptype.element, width_for
            )
            arity = 1
            close_tags = (b"</" + ptype.item_tag.encode("ascii") + b">",)
            leaf_types = (ptype.element,)
        buffer.append(b"</" + name.encode("ascii") + b">")
        leaf_count = length * arity

    elif isinstance(ptype, StructType):
        attrs = {"xsi:type": f"ns:{ptype.name}"}
        buffer.append(b"<" + name.encode("ascii") + _attrs_bytes(attrs) + b">")
        texts = tracked.lexical_all(fmt, cached=conv)
        # A scalar struct is a single "item" whose container is the
        # parameter element itself, so emit fields inline.
        arity = ptype.arity
        field_opens = [b"<" + f.name.encode("ascii") + b">" for f in ptype.fields]
        field_closes = [b"</" + f.name.encode("ascii") + b">" for f in ptype.fields]
        for f_pos, f in enumerate(ptype.fields):
            text = texts[f_pos]
            L = len(text)
            width = width_for(f.xsd_type, L)
            loc = buffer.append(
                field_opens[f_pos] + text + field_closes[f_pos] + _pad(width - L)
            )
            dutb.add(
                loc.cid,
                loc.offset + len(field_opens[f_pos]),
                L,
                width,
                f.xsd_type.type_id,
                len(field_closes[f_pos]),
            )
        buffer.append(b"</" + name.encode("ascii") + b">")
        close_tags = tuple(field_closes)
        leaf_types = tuple(f.xsd_type for f in ptype.fields)
        leaf_count = arity

    else:  # scalar primitive
        attr_name, attr_value = xsi_type_attr(ptype)
        open_tag = (
            b"<" + name.encode("ascii")
            + _attrs_bytes({attr_name: attr_value}) + b">"
        )
        close_tag = b"</" + name.encode("ascii") + b">"
        text = tracked.lexical_all(fmt, cached=conv)[0]
        L = len(text)
        width = width_for(ptype, L)
        loc = buffer.append(open_tag + text + close_tag + _pad(width - L))
        dutb.add(
            loc.cid, loc.offset + len(open_tag), L, width, ptype.type_id, len(close_tag)
        )
        close_tags = (close_tag,)
        leaf_types = (ptype,)
        arity = 1
        leaf_count = 1

    return BoundParam(
        name=name,
        ptype=ptype,
        tracked=tracked,
        entry_base=entry_base,
        leaf_count=leaf_count,
        arity=arity,
        close_tags=close_tags,
        leaf_types=leaf_types,
    )


def _bind_dirty_views(template: MessageTemplate) -> None:
    """Attach DUT dirty-column views to each tracked object."""
    dirty = template.dut.dirty
    for bp in template.params:
        view = dirty[bp.entry_base : bp.entry_end]
        if isinstance(bp.tracked, TrackedStructArray):
            view = view.reshape(-1, bp.arity)
        bp.tracked.bind_dirty(view)


def build_template(
    message: SOAPMessage,
    policy: Optional[DiffPolicy] = None,
    *,
    buffer: Optional[ChunkedBuffer] = None,
    obs=None,
) -> MessageTemplate:
    """Fully serialize *message* and return the reusable template.

    This is the complete first-time-send cost: envelope emission, one
    lexical conversion per leaf value, tag emission, buffer packing,
    and DUT construction.  *obs* (an
    :class:`~repro.obs.Observability`) gets a ``serialize`` span — and
    a ``stuff`` span when the policy pads fields — with the build
    duration and template geometry attached.
    """
    policy = policy or DiffPolicy()
    tracing = obs is not None and obs.tracer.enabled
    if tracing:
        from time import perf_counter

        t0 = perf_counter()
    buffer = buffer or ChunkedBuffer(policy.chunk)
    dutb = DUTTableBuilder()

    layout = envelope_layout(message.namespace, message.operation)
    buffer.append(layout.prefix)

    bound: List[BoundParam] = []
    for param in message.params:
        tracked = make_tracked(param)
        bound.append(_emit_param(buffer, dutb, param, tracked, policy))

    buffer.append(layout.suffix)

    template = MessageTemplate(
        signature=structure_signature(message),
        buffer=buffer,
        dut=dutb.freeze(),
        params=bound,
    )
    _bind_dirty_views(template)
    if tracing:
        duration = perf_counter() - t0
        dut = template.dut
        obs.tracer.emit(
            "serialize",
            duration_s=duration,
            template_id=template.template_id,
            operation=message.operation,
            entries=len(dut),
            bytes=template.total_bytes,
            chunks=buffer.num_chunks,
        )
        pad_bytes = int((dut.field_width - dut.ser_len).sum()) if len(dut) else 0
        if pad_bytes:
            obs.tracer.emit(
                "stuff",
                template_id=template.template_id,
                mode=policy.stuffing.mode.value,
                pad_bytes=pad_bytes,
            )
    return template
