"""Saved message templates.

A :class:`MessageTemplate` is the paper's "saved message in the stub":
the fully serialized form held in a chunked buffer, its DUT table, and
the binding between application-visible tracked values and DUT entry
ranges.  The template is the unit the client stores per structure
signature and reuses across sends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.buffers.chunked import ChunkedBuffer
from repro.core.plan import PlanCache
from repro.dut.table import DUTTable
from repro.dut.tracked import (
    TrackedArray,
    TrackedScalar,
    TrackedStringArray,
    TrackedStructArray,
)
from repro.errors import DUTError, StructureMismatchError, TemplateError
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import XSDType
from repro.soap.message import Parameter, SOAPMessage, Signature

__all__ = ["BoundParam", "MessageTemplate", "Tracked", "absorb_param"]

Tracked = Union[TrackedArray, TrackedStructArray, TrackedScalar, TrackedStringArray]


def absorb_param(tracked: Tracked, p: Parameter) -> None:
    """Diff a parameter's plain value into its tracked counterpart.

    Marks dirty exactly the leaves whose values changed; when the
    caller mutated the tracked object itself, this is a no-op.
    """
    value = p.value
    if value is tracked:
        return  # caller mutated the tracked object directly
    if isinstance(tracked, TrackedArray):
        tracked.fill_from(value)  # type: ignore[arg-type]
    elif isinstance(tracked, TrackedStructArray):
        if isinstance(value, dict):
            for name, col in value.items():
                tracked.set_column(name, col)
        else:
            struct = tracked.struct
            for fpos, f in enumerate(struct.fields):
                col = [
                    rec[fpos] if isinstance(rec, tuple) else getattr(rec, f.name)
                    for rec in value  # type: ignore[union-attr]
                ]
                tracked.set_column(f.name, col)
    elif isinstance(tracked, TrackedStringArray):
        if len(value) != len(tracked):  # type: ignore[arg-type]
            raise StructureMismatchError("string array length changed")
        for i, s in enumerate(value):  # type: ignore[arg-type]
            if tracked[i] != s:
                tracked[i] = s
    elif isinstance(tracked, TrackedScalar):
        if tracked.value != value:
            tracked.value = value
    else:  # pragma: no cover - exhaustive
        raise TemplateError(f"unknown tracked type {type(tracked)!r}")


@dataclass(slots=True)
class BoundParam:
    """One parameter's binding into the template.

    Attributes
    ----------
    entry_base / leaf_count:
        This parameter's contiguous DUT entry range
        ``[entry_base, entry_base + leaf_count)``.
    arity:
        Leaves per item (1 for primitive arrays and scalars, the
        struct arity for struct arrays).
    close_tags / leaf_types:
        Per leaf position *within an item*: the closing-tag bytes that
        follow the value, and the leaf's primitive type.
    """

    name: str
    ptype: Union[XSDType, StructType, ArrayType]
    tracked: Tracked
    entry_base: int
    leaf_count: int
    arity: int
    close_tags: Tuple[bytes, ...]
    leaf_types: Tuple[XSDType, ...]

    @property
    def entry_end(self) -> int:
        return self.entry_base + self.leaf_count

    def close_tag_for(self, entry_index: int) -> bytes:
        """Closing tag of the leaf at absolute DUT index *entry_index*."""
        leaf_pos = (entry_index - self.entry_base) % self.arity
        return self.close_tags[leaf_pos]


#: Process-wide template identities: spans and metrics refer to
#: templates by this id, which survives in-place rebuilds (unlike the
#: buffer/DUT objects) and is unique across stores and overlays.
_template_ids = itertools.count(1)


def next_template_id() -> int:
    return next(_template_ids)


class MessageTemplate:
    """A reusable serialized message (buffer + DUT + bindings)."""

    __slots__ = (
        "signature",
        "buffer",
        "dut",
        "params",
        "_by_name",
        "_bases",
        "sends",
        "suspect",
        "template_id",
        "plan_cache",
    )

    def __init__(
        self,
        signature: Signature,
        buffer: ChunkedBuffer,
        dut: DUTTable,
        params: Sequence[BoundParam],
    ) -> None:
        self.signature = signature
        self.buffer = buffer
        self.dut = dut
        self.params: List[BoundParam] = list(params)
        self._by_name: Dict[str, BoundParam] = {p.name: p for p in self.params}
        if len(self._by_name) != len(self.params):
            raise TemplateError("duplicate parameter names in template")
        self._bases = np.asarray([p.entry_base for p in self.params], dtype=np.int64)
        self.sends = 0
        self.template_id = next_template_id()
        #: Compiled rewrite plans for repeated dirty signatures
        #: (see :mod:`repro.core.plan`).
        self.plan_cache = PlanCache()
        #: Set when a send failed after the template was mutated: the
        #: serialized form may no longer match what the server holds,
        #: so the next send must be a full resynchronization.
        self.suspect = False
        # Consistency: entry ranges must tile the DUT exactly.
        total = sum(p.leaf_count for p in self.params)
        if total != len(dut):
            raise TemplateError(
                f"bound params cover {total} entries but DUT has {len(dut)}"
            )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def param(self, name: str) -> BoundParam:
        try:
            return self._by_name[name]
        except KeyError:
            raise TemplateError(f"template has no parameter {name!r}") from None

    def tracked(self, name: str) -> Tracked:
        """The tracked value object applications mutate between sends."""
        return self.param(name).tracked

    def param_for_entry(self, entry_index: int) -> BoundParam:
        """The parameter owning DUT entry *entry_index* (binary search)."""
        if not (0 <= entry_index < len(self.dut)):
            raise DUTError(f"entry index {entry_index} out of range")
        pos = int(np.searchsorted(self._bases, entry_index, side="right")) - 1
        return self.params[pos]

    def close_tag_bytes(self, entry_index: int) -> bytes:
        return self.param_for_entry(entry_index).close_tag_for(entry_index)

    # ------------------------------------------------------------------
    # value absorption (auto-diff path)
    # ------------------------------------------------------------------
    def absorb(self, message: SOAPMessage) -> None:
        """Diff a new message's values into the tracked state.

        Marks dirty exactly the leaves whose values changed, so a
        subsequent send is a content match when nothing changed.  The
        message must match this template's structure.
        """
        from repro.soap.message import structure_signature

        if structure_signature(message) != self.signature:
            raise StructureMismatchError(
                "message structure does not match template signature"
            )
        for p in message.params:
            absorb_param(self.param(p.name).tracked, p)
    # ------------------------------------------------------------------
    # transactional send (commit / rollback)
    # ------------------------------------------------------------------
    def begin_send(self) -> np.ndarray:
        """Open a send epoch: snapshot the dirty bits as the undo record.

        The differential rewrite clears dirty bits *while* it patches
        template bytes, and a pipelined send interleaves that with the
        transport — so a mid-send failure would otherwise leave the
        template claiming those values were delivered.  The snapshot
        lets :meth:`rollback_send` restore them.
        """
        return self.dut.dirty.copy()

    def rollback_send(self, snapshot: Optional[np.ndarray] = None) -> None:
        """Undo a failed send epoch.

        Re-marks every entry that was dirty at :meth:`begin_send`
        (values written into the buffer this epoch will be rewritten —
        idempotent, since the tracked objects hold the current values)
        and flags the template *suspect*: the peer may hold a partial
        message, so the next send must be a forced full serialization
        that resynchronizes it.
        """
        if snapshot is not None:
            self.dut.dirty |= snapshot
        self.suspect = True

    def rebuild_in_place(self, policy=None, obs=None) -> None:
        """Re-serialize this template from its tracked values, in place.

        The recovery path after :meth:`rollback_send`: produces exactly
        the bytes a from-scratch first-time send would, while keeping
        this object's identity (so :class:`~repro.core.client.PreparedCall`
        handles and store entries stay valid, and the ``template_id``
        trace attribute is stable across the resync).  Tracked value
        objects are reused and rebound to the fresh DUT.
        """
        from repro.core.serializer import build_template
        from repro.soap.message import SOAPMessage

        namespace, operation, _ = self.signature
        message = SOAPMessage(
            operation,
            namespace,
            [Parameter(p.name, p.ptype, p.tracked) for p in self.params],
        )
        fresh = build_template(message, policy, obs=obs)
        if fresh.signature != self.signature:  # pragma: no cover - invariant
            raise TemplateError("rebuild produced a different signature")
        self.buffer = fresh.buffer
        self.dut = fresh.dut
        self.params = fresh.params
        self._by_name = {p.name: p for p in self.params}
        self._bases = np.asarray([p.entry_base for p in self.params], dtype=np.int64)
        # The fresh buffer's epoch counter restarts at 0, so stale
        # plans could otherwise pass the epoch check against it.
        self.plan_cache.clear()
        self.suspect = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.buffer.total_length

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident bytes by component.

        The paper's §3.3 motivation for overlaying: a template costs
        "memory to store message data, the entire serialized form of
        the message, and the DUT table".  Keys: ``serialized`` (chunk
        capacities), ``dut`` (column bytes), ``total``.
        """
        serialized = sum(c.capacity for c in self.buffer.iter_chunks())
        dut = self.dut
        dut_bytes = sum(
            col.nbytes
            for col in (
                dut.chunk_id,
                dut.value_off,
                dut.ser_len,
                dut.field_width,
                dut.type_id,
                dut.close_len,
                dut.dirty,
            )
        )
        return {
            "serialized": serialized,
            "dut": dut_bytes,
            "total": serialized + dut_bytes,
        }

    def views(self) -> List[memoryview]:
        return self.buffer.views()

    def tobytes(self) -> bytes:
        return self.buffer.tobytes()

    def validate(self) -> None:
        """Structural invariants: DUT consistency plus layout checks.

        For every entry: the close tag sits immediately after the
        value, and the pad region is pure whitespace.
        """
        self.dut.validate()
        dut = self.dut
        for bp in self.params:
            for i in range(bp.entry_base, bp.entry_end):
                cid = int(dut.chunk_id[i])
                off = int(dut.value_off[i])
                ser = int(dut.ser_len[i])
                width = int(dut.field_width[i])
                close = bp.close_tag_for(i)
                got = self.buffer.read_at(cid, off + ser, len(close))
                if got != close:
                    raise TemplateError(
                        f"entry {i}: expected close tag {close!r} after value, "
                        f"found {got!r}"
                    )
                pad = self.buffer.read_at(
                    cid, off + ser + len(close), width - ser
                )
                if pad.strip(b" \t\r\n"):
                    raise TemplateError(f"entry {i}: pad contains non-whitespace")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageTemplate(sig={self.signature[1]!r}, entries={len(self.dut)}, "
            f"bytes={self.total_bytes}, chunks={self.buffer.num_chunks})"
        )
