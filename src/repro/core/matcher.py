"""Match classification: which of the paper's four cases a send hits.

The classifier is deliberately cheap — the whole point of differential
serialization is to avoid touching the values, so classification looks
only at the template store (structure signature) and the DUT dirty
column:

* no template for the signature        → FIRST_TIME,
* template exists, nothing dirty       → CONTENT_MATCH,
* template exists, something dirty     → structural match; whether it
  was *perfect* or *partial* is known only after the rewrite (did any
  value outgrow its field?), so :func:`refine` upgrades the verdict
  from the rewrite stats.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.stats import MatchKind, RewriteStats
from repro.soap.message import Signature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.template import MessageTemplate

__all__ = ["classify", "refine"]


def classify(
    template: Optional["MessageTemplate"], signature: Signature
) -> MatchKind:
    """Pre-send classification (structural vs content vs first-time)."""
    if template is None or template.signature != signature:
        return MatchKind.FIRST_TIME
    if not template.dut.any_dirty:
        return MatchKind.CONTENT_MATCH
    return MatchKind.PERFECT_STRUCTURAL  # provisional; refine() after rewrite


def refine(kind: MatchKind, rewrite: RewriteStats) -> MatchKind:
    """Post-rewrite refinement: expansion work ⇒ partial structural."""
    if kind is MatchKind.PERFECT_STRUCTURAL and rewrite.expansions > 0:
        return MatchKind.PARTIAL_STRUCTURAL
    return kind
