"""Match classification: which of the paper's four cases a send hits.

The classifier is deliberately cheap — the whole point of differential
serialization is to avoid touching the values, so classification looks
only at the template store (structure signature) and the DUT dirty
column:

* no template for the signature        → FIRST_TIME,
* template exists, nothing dirty       → CONTENT_MATCH,
* template exists, something dirty     → structural match; whether it
  was *perfect* or *partial* is known only after the rewrite (did any
  value outgrow its field?), so :func:`refine` upgrades the verdict
  from the rewrite stats.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.stats import MatchKind, RewriteStats
from repro.soap.message import Signature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.template import MessageTemplate

__all__ = ["classify", "refine"]


def classify(
    template: Optional["MessageTemplate"],
    signature: Signature,
    obs=None,
) -> MatchKind:
    """Pre-send classification (structural vs content vs first-time).

    When *obs* traces, emits a ``match-classify`` span carrying the
    (provisional) verdict and the dirty count it was based on.
    """
    if template is None or template.signature != signature:
        kind = MatchKind.FIRST_TIME
        dirty = 0
        template_id = -1
    else:
        dirty = int(template.dut.dirty.sum())
        template_id = template.template_id
        kind = (
            MatchKind.CONTENT_MATCH
            if dirty == 0
            else MatchKind.PERFECT_STRUCTURAL  # provisional; refine() later
        )
    if obs is not None and obs.tracer.enabled:
        obs.tracer.emit(
            "match-classify",
            template_id=template_id,
            match_level=kind.value,
            dirty=dirty,
        )
    return kind


def refine(kind: MatchKind, rewrite: RewriteStats) -> MatchKind:
    """Post-rewrite refinement: expansion work ⇒ partial structural."""
    if kind is MatchKind.PERFECT_STRUCTURAL and rewrite.expansions > 0:
        return MatchKind.PARTIAL_STRUCTURAL
    return kind
