"""Chunking policy — the paper's configurable parameters.

    "Configurable parameters determine the default initial chunk size,
    the threshold at which chunks are split into two, and the space
    that is initially left empty at the end of a chunk (to allow for
    shifting without reallocation)."  (§3.2)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BufferError_

__all__ = ["ChunkPolicy"]


@dataclass(frozen=True, slots=True)
class ChunkPolicy:
    """Parameters governing chunk allocation and expansion.

    Attributes
    ----------
    chunk_size:
        Default capacity of a newly allocated chunk in bytes.  The
        paper's experiments use 8 KiB and 32 KiB.
    reserve:
        Bytes left empty at the end of each chunk during initial
        serialization, so early shifts need no reallocation.
    split_threshold:
        When an overflowing chunk's occupancy is at least this many
        bytes it is split in two; smaller chunks are reallocated
        (grown) instead.
    growth_factor:
        Capacity multiplier used by reallocation.
    """

    chunk_size: int = 32 * 1024
    reserve: int = 512
    split_threshold: int = 4 * 1024
    growth_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise BufferError_("chunk_size must be positive")
        if not (0 <= self.reserve < self.chunk_size):
            raise BufferError_("reserve must satisfy 0 <= reserve < chunk_size")
        if self.split_threshold <= 0:
            raise BufferError_("split_threshold must be positive")
        if self.growth_factor <= 1.0:
            raise BufferError_("growth_factor must exceed 1.0")

    @property
    def soft_limit(self) -> int:
        """Fill limit during initial serialization (capacity − reserve)."""
        return self.chunk_size - self.reserve

    def with_chunk_size(self, chunk_size: int) -> "ChunkPolicy":
        """Copy with a different chunk size (reserve clamped below it)."""
        return ChunkPolicy(
            chunk_size=chunk_size,
            reserve=min(self.reserve, max(0, chunk_size - 1)),
            split_threshold=self.split_threshold,
            growth_factor=self.growth_factor,
        )
