"""Scatter-gather helpers over chunked buffers.

The TCP transport sends a chunked message with ``socket.sendmsg`` —
one syscall over a list of buffers (an iovec) instead of one ``send``
per chunk or a costly coalescing copy.  These helpers build and bound
those lists.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["gather_bytes", "coalesce_views", "total_size", "batch_iovecs", "IOV_MAX"]

#: Conservative bound on iovec entries per sendmsg call (POSIX minimum
#: is 16; Linux allows 1024).
IOV_MAX = 1024


def total_size(views: Iterable[memoryview | bytes]) -> int:
    """Total byte count across buffer views."""
    return sum(len(v) for v in views)


def gather_bytes(views: Iterable[memoryview | bytes]) -> bytes:
    """Coalesce views into one bytes object (copying fallback path)."""
    return b"".join(bytes(v) for v in views)


def coalesce_views(
    views: Sequence[memoryview | bytes], max_copy: int = 4096
) -> List[memoryview | bytes]:
    """Merge runs of *small* views into single byte strings.

    Lots of tiny buffers make syscalls and iovec bookkeeping dominate;
    copying anything below ``max_copy`` into a joined buffer while
    passing large views through untouched is the standard trade.
    """
    out: List[memoryview | bytes] = []
    run: List[bytes] = []
    run_len = 0
    for view in views:
        n = len(view)
        if n == 0:
            continue
        if n < max_copy:
            run.append(bytes(view))
            run_len += n
        else:
            if run:
                out.append(b"".join(run))
                run = []
                run_len = 0
            out.append(view)
    if run:
        out.append(b"".join(run))
    return out


def batch_iovecs(
    views: Sequence[memoryview | bytes], limit: int = IOV_MAX
) -> List[Sequence[memoryview | bytes]]:
    """Split a view list into batches of at most *limit* entries."""
    if len(views) <= limit:
        return [views]
    return [views[i : i + limit] for i in range(0, len(views), limit)]
