"""Scatter-gather helpers over chunked buffers.

The TCP transport sends a chunked message with ``socket.sendmsg`` —
one syscall over a list of buffers (an iovec) instead of one ``send``
per chunk or a costly coalescing copy.  These helpers build and bound
those lists.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

__all__ = [
    "gather_bytes",
    "coalesce_views",
    "total_size",
    "batch_iovecs",
    "IovecCursor",
    "IOV_MAX",
]

#: Conservative bound on iovec entries per sendmsg call (POSIX minimum
#: is 16; Linux allows 1024).
IOV_MAX = 1024


def total_size(views: Iterable[memoryview | bytes]) -> int:
    """Total byte count across buffer views."""
    return sum(len(v) for v in views)


def gather_bytes(views: Iterable[memoryview | bytes]) -> bytes:
    """Coalesce views into one bytes object (copying fallback path)."""
    return b"".join(bytes(v) for v in views)


def coalesce_views(
    views: Sequence[memoryview | bytes], max_copy: int = 4096
) -> List[memoryview | bytes]:
    """Merge runs of *small* views into single byte strings.

    Lots of tiny buffers make syscalls and iovec bookkeeping dominate;
    copying anything below ``max_copy`` into a joined buffer while
    passing large views through untouched is the standard trade.
    """
    out: List[memoryview | bytes] = []
    run: List[bytes] = []
    run_len = 0
    for view in views:
        n = len(view)
        if n == 0:
            continue
        if n < max_copy:
            run.append(bytes(view))
            run_len += n
        else:
            if run:
                out.append(b"".join(run))
                run = []
                run_len = 0
            out.append(view)
    if run:
        out.append(b"".join(run))
    return out


def batch_iovecs(
    views: Sequence[memoryview | bytes], limit: int = IOV_MAX
) -> List[Sequence[memoryview | bytes]]:
    """Split a view list into batches of at most *limit* entries."""
    if len(views) <= limit:
        return [views]
    return [views[i : i + limit] for i in range(0, len(views), limit)]


class IovecCursor:
    """Resumable scatter-gather write position over a view list.

    A non-blocking ``sendmsg`` may stop anywhere — mid-view, or exactly
    on a view boundary — and the next attempt must resume from that
    byte without copying payload.  The cursor tracks ``(view index,
    offset into that view)`` and hands out bounded iovec batches that
    start with a sliced head view, so partial sends resume across
    iovec boundaries with zero payload copies.
    """

    __slots__ = ("_views", "_index", "_offset", "total", "sent")

    def __init__(self, views: Sequence[memoryview | bytes]) -> None:
        self._views: List[memoryview | bytes] = [v for v in views if len(v)]
        self._index = 0
        self._offset = 0
        self.total = sum(len(v) for v in self._views)
        self.sent = 0

    @property
    def done(self) -> bool:
        return self.sent >= self.total

    def next_batch(self, limit: int = IOV_MAX) -> List[memoryview | bytes]:
        """The next iovec batch (≤ *limit* entries) from the cursor."""
        views = self._views
        if self._index >= len(views):
            return []
        head = views[self._index]
        if self._offset:
            head = memoryview(head)[self._offset :]
        batch: List[memoryview | bytes] = [head]
        batch.extend(views[self._index + 1 : self._index + limit])
        return batch

    def advance(self, n: int) -> None:
        """Record *n* bytes written from the front of the cursor."""
        if n < 0:
            raise ValueError("cannot advance by a negative byte count")
        self.sent += n
        views = self._views
        n += self._offset
        while self._index < len(views) and n >= len(views[self._index]):
            n -= len(views[self._index])
            self._index += 1
        self._offset = n

    def drain(
        self, send: Callable[[Sequence[memoryview | bytes]], int],
        limit: int = IOV_MAX,
    ) -> int:
        """Push batches through *send* until done or *send* returns 0.

        *send* is expected to return the bytes it accepted (0 meaning
        "try again later", e.g. a would-block socket).  Returns the
        bytes written by this call.
        """
        written = 0
        while not self.done:
            n = send(self.next_batch(limit))
            if n <= 0:
                break
            self.advance(n)
            written += n
        return written
