"""Chunked message buffers.

The paper stores serialized messages in variable-sized, potentially
noncontiguous chunks so that on-the-fly expansion (*shifting*) moves at
most one chunk's tail instead of the whole message, and so transports
can stream/scatter-gather the pieces.

:class:`~repro.buffers.chunk.Chunk` is one contiguous ``bytearray``
region; :class:`~repro.buffers.chunked.ChunkedBuffer` is the ordered
collection with append/write/insert-gap/split/realloc operations;
:class:`~repro.buffers.config.ChunkPolicy` carries the configurable
parameters the paper lists (default chunk size, split threshold,
reserved tail space).
"""

from repro.buffers.chunk import Chunk
from repro.buffers.chunked import ChunkedBuffer, GapResult, Location
from repro.buffers.config import ChunkPolicy
from repro.buffers.iovec import coalesce_views, gather_bytes, total_size

__all__ = [
    "Chunk",
    "ChunkedBuffer",
    "ChunkPolicy",
    "Location",
    "GapResult",
    "gather_bytes",
    "coalesce_views",
    "total_size",
]
