"""The chunked message buffer.

A :class:`ChunkedBuffer` is an ordered sequence of :class:`Chunk`
objects with **stable chunk ids**: a split inserts a new chunk without
renumbering the others, so DUT entries referring to untouched chunks
stay valid.  The two structural operations the differential layer
needs are:

``append``
    Atomic placement of a byte string during initial serialization —
    the bytes never straddle chunks, so every DUT value span is
    contiguous.  Returns the :class:`Location` where they landed.

``insert_gap``
    Grow the message by ``delta`` bytes at a position (*shifting*).
    In the common case this memmoves the chunk tail in place; when the
    chunk is full the buffer either **reallocates** (grows the chunk)
    or **splits** it at the expanding field's region start, exactly
    the two escape hatches §3.2 describes.  The returned
    :class:`GapResult` tells the DUT layer how to fix its offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.buffers.chunk import Chunk
from repro.buffers.config import ChunkPolicy
from repro.errors import BufferError_, ChunkOverflowError

__all__ = ["Location", "GapResult", "ChunkedBuffer"]


@dataclass(frozen=True, slots=True)
class Location:
    """A position inside a chunked buffer: ``(chunk id, offset)``."""

    cid: int
    offset: int


@dataclass(frozen=True, slots=True)
class GapResult:
    """Outcome of :meth:`ChunkedBuffer.insert_gap`.

    Attributes
    ----------
    mode:
        ``"inplace"`` — tail moved within the chunk; ``"realloc"`` —
        same, after growing the chunk's backing store; ``"split"`` —
        the region was moved to a freshly inserted chunk.
    cid, pos, delta, region_start:
        Echo of the request.
    new_cid:
        Id of the inserted chunk (``split`` mode only).

    Offset fix-up rules for DUT entries located in chunk ``cid``:

    * ``inplace``/``realloc``: entries with ``offset >= pos`` add
      ``delta``.
    * ``split``: entries with ``offset >= region_start`` move to chunk
      ``new_cid`` at ``offset - region_start`` (+ ``delta`` when the
      old offset was ``>= pos``).
    """

    mode: str
    cid: int
    pos: int
    delta: int
    region_start: int
    new_cid: Optional[int] = None


class ChunkedBuffer:
    """Ordered chunks with stable ids (see module docstring)."""

    def __init__(self, policy: Optional[ChunkPolicy] = None) -> None:
        self.policy = policy or ChunkPolicy()
        self._chunks: Dict[int, Chunk] = {}
        self._order: List[int] = []
        self._next_cid = 0
        self._bytes_moved = 0  # instrumentation: memmove traffic from gaps
        #: Monotonic **layout epoch**: bumped by every operation that
        #: moves bytes or changes backing stores (gap open, realloc,
        #: split, steal).  Compiled rewrite plans (``repro.core.plan``)
        #: capture the epoch at build time and are valid only while it
        #: is unchanged — cheap O(1) invalidation with no tracking of
        #: *what* moved.  Note a fresh buffer restarts at 0, so plan
        #: caches must be cleared explicitly on template rebuild.
        self.layout_epoch = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_chunk(self, capacity: int, index: Optional[int] = None) -> Chunk:
        cid = self._next_cid
        self._next_cid += 1
        chunk = Chunk(cid, capacity)
        self._chunks[cid] = chunk
        if index is None:
            self._order.append(cid)
        else:
            self._order.insert(index, cid)
        return chunk

    def append(self, payload: bytes) -> Location:
        """Append *payload* contiguously; return where it landed.

        During initial serialization each chunk is only filled to the
        policy's soft limit, leaving ``reserve`` bytes for later
        shifting.  Payloads larger than a default chunk get a
        dedicated, suitably sized chunk.
        """
        n = len(payload)
        policy = self.policy
        tail = self._chunks[self._order[-1]] if self._order else None
        # Fill only to capacity − reserve, keeping shift slack at the end.
        if tail is not None and tail.used + n <= tail.capacity - policy.reserve:
            offset = tail.append(payload)
            return Location(tail.cid, offset)
        capacity = max(policy.chunk_size, n + policy.reserve)
        chunk = self._new_chunk(capacity)
        offset = chunk.append(payload)
        return Location(chunk.cid, offset)

    # ------------------------------------------------------------------
    # random access
    # ------------------------------------------------------------------
    def chunk(self, cid: int) -> Chunk:
        try:
            return self._chunks[cid]
        except KeyError:
            raise BufferError_(f"no chunk with id {cid}") from None

    def write_at(self, loc_cid: int, offset: int, payload: bytes) -> None:
        """Overwrite bytes inside a chunk's used region."""
        self.chunk(loc_cid).write_at(offset, payload)

    def fill_at(self, loc_cid: int, offset: int, length: int, byte: int = 0x20) -> None:
        """Fill a span with a pad byte (default: space)."""
        self.chunk(loc_cid).fill_at(offset, length, byte)

    def read_at(self, loc_cid: int, offset: int, length: int) -> bytes:
        """Copy *length* bytes out of a chunk (tests/deserializer)."""
        chunk = self.chunk(loc_cid)
        if offset < 0 or offset + length > chunk.used:
            raise BufferError_(
                f"read [{offset}:{offset + length}) outside chunk {loc_cid}"
            )
        return bytes(chunk.data[offset : offset + length])

    # ------------------------------------------------------------------
    # shifting
    # ------------------------------------------------------------------
    def insert_gap(
        self, cid: int, pos: int, delta: int, region_start: int
    ) -> GapResult:
        """Grow the message by *delta* bytes at ``(cid, pos)``.

        ``region_start`` is the start offset of the expanding field's
        region — the split point that keeps the region contiguous.
        """
        if delta < 0:
            raise BufferError_("negative gap")
        if not (0 <= region_start <= pos):
            raise BufferError_("region_start must satisfy 0 <= region_start <= pos")
        chunk = self.chunk(cid)
        if delta == 0:
            return GapResult("inplace", cid, pos, 0, region_start)
        try:
            moved = chunk.used - pos
            chunk.open_gap(pos, delta)
            self._bytes_moved += moved
            self.layout_epoch += 1
            return GapResult("inplace", cid, pos, delta, region_start)
        except ChunkOverflowError:
            pass

        policy = self.policy
        if chunk.used >= policy.split_threshold and region_start > 0:
            return self._split_for_gap(chunk, pos, delta, region_start)
        return self._realloc_for_gap(chunk, pos, delta, region_start)

    def _realloc_for_gap(
        self, chunk: Chunk, pos: int, delta: int, region_start: int
    ) -> GapResult:
        needed = chunk.used + delta + self.policy.reserve
        grown = max(int(chunk.capacity * self.policy.growth_factor), needed)
        chunk.grow(grown)
        moved = chunk.used - pos
        chunk.open_gap(pos, delta)
        self._bytes_moved += moved + chunk.used - delta  # realloc copies everything
        self.layout_epoch += 1
        return GapResult("realloc", chunk.cid, pos, delta, region_start)

    def _split_for_gap(
        self, chunk: Chunk, pos: int, delta: int, region_start: int
    ) -> GapResult:
        # Detach everything from the expanding field's region onward.
        tail = chunk.take_tail(region_start)
        head_len = pos - region_start  # region bytes before the gap
        capacity = max(self.policy.chunk_size, len(tail) + delta + self.policy.reserve)
        index = self._order.index(chunk.cid) + 1
        fresh = self._new_chunk(capacity, index)
        fresh.append(tail[:head_len])
        fresh.append(b"\x00" * delta)  # the gap; caller overwrites it
        fresh.append(tail[head_len:])
        self._bytes_moved += len(tail)
        self.layout_epoch += 1
        return GapResult(
            "split", chunk.cid, pos, delta, region_start, new_cid=fresh.cid
        )

    def steal_move(self, cid: int, src: int, dst: int, length: int) -> None:
        """memmove a short span within one chunk (*stealing* support)."""
        self.chunk(cid).move_range(src, dst, length)
        self._bytes_moved += length
        self.layout_epoch += 1

    # ------------------------------------------------------------------
    # inspection / sending
    # ------------------------------------------------------------------
    @property
    def chunk_ids(self) -> List[int]:
        """Chunk ids in message order (copy)."""
        return list(self._order)

    def chunk_id_at(self, index: int) -> int:
        """Chunk id at *index* in message order (no copy; supports
        iteration that survives mid-loop split insertions)."""
        return self._order[index]

    @property
    def num_chunks(self) -> int:
        return len(self._order)

    @property
    def total_length(self) -> int:
        """Total message bytes across chunks."""
        return sum(self._chunks[cid].used for cid in self._order)

    @property
    def bytes_moved(self) -> int:
        """Cumulative memmove traffic caused by gaps/steals (stats)."""
        return self._bytes_moved

    def views(self) -> List[memoryview]:
        """Zero-copy views of all chunks, in order (scatter-gather)."""
        return [self._chunks[cid].view() for cid in self._order if self._chunks[cid].used]

    def iter_chunks(self) -> Iterator[Chunk]:
        for cid in self._order:
            yield self._chunks[cid]

    def tobytes(self) -> bytes:
        """Materialize the whole message (tests/inspection)."""
        return b"".join(self._chunks[cid].tobytes() for cid in self._order)

    def __len__(self) -> int:
        return self.total_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedBuffer(chunks={self.num_chunks}, bytes={self.total_length}, "
            f"policy={self.policy})"
        )
