"""A single contiguous buffer chunk.

A chunk owns a ``bytearray`` of fixed *capacity* of which the first
*used* bytes hold message data.  All mutation is in place; the only
operation that replaces the backing store is :meth:`grow`
(reallocation).  Tail moves use ``bytearray`` slice assignment, which
is a C ``memmove`` — the cost model the shifting experiments measure.
"""

from __future__ import annotations

from repro.errors import BufferError_, ChunkOverflowError

__all__ = ["Chunk"]


class Chunk:
    """One contiguous region of a chunked message buffer."""

    __slots__ = ("cid", "data", "used")

    def __init__(self, cid: int, capacity: int, used: int = 0) -> None:
        if capacity <= 0:
            raise BufferError_("chunk capacity must be positive")
        if not (0 <= used <= capacity):
            raise BufferError_("used must be within capacity")
        self.cid = cid
        self.data = bytearray(capacity)
        self.used = used

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total bytes the backing store can hold."""
        return len(self.data)

    @property
    def free(self) -> int:
        """Unused bytes at the tail."""
        return len(self.data) - self.used

    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> int:
        """Append *payload* at the tail; return its start offset."""
        n = len(payload)
        used = self.used
        if n > len(self.data) - used:
            raise ChunkOverflowError(
                f"chunk {self.cid}: append of {n} bytes exceeds free {self.free}"
            )
        self.data[used : used + n] = payload
        self.used = used + n
        return used

    def write_at(self, offset: int, payload: bytes) -> None:
        """Overwrite bytes inside the used region."""
        end = offset + len(payload)
        if offset < 0 or end > self.used:
            raise BufferError_(
                f"chunk {self.cid}: write [{offset}:{end}) outside used region "
                f"[0:{self.used})"
            )
        self.data[offset:end] = payload

    def fill_at(self, offset: int, length: int, byte: int) -> None:
        """Fill ``length`` bytes from *offset* with *byte* (pad writes)."""
        end = offset + length
        if offset < 0 or end > self.used:
            raise BufferError_(
                f"chunk {self.cid}: fill [{offset}:{end}) outside used region"
            )
        if length > 0:
            self.data[offset:end] = bytes([byte]) * length

    def open_gap(self, pos: int, delta: int) -> None:
        """Move the tail ``[pos:used)`` right by *delta* bytes (memmove).

        The gap's contents are left as-is (caller overwrites them).
        Raises :class:`ChunkOverflowError` when the tail would exceed
        capacity — the buffer layer then reallocates or splits.
        """
        if delta < 0:
            raise BufferError_("negative gap")
        if not (0 <= pos <= self.used):
            raise BufferError_(f"gap position {pos} outside used region")
        if self.used + delta > len(self.data):
            raise ChunkOverflowError(
                f"chunk {self.cid}: gap of {delta} at {pos} exceeds capacity"
            )
        if delta == 0:
            return
        self.data[pos + delta : self.used + delta] = self.data[pos : self.used]
        self.used += delta

    def move_range(self, src: int, dst: int, length: int) -> None:
        """memmove *length* bytes from *src* to *dst* within the used region.

        Used by *stealing*, which slides a short span instead of the
        whole tail.  Overlap is handled correctly (bytearray slice
        assignment copies through a temporary).
        """
        if length < 0:
            raise BufferError_("negative move length")
        if min(src, dst) < 0 or max(src, dst) + length > self.used:
            raise BufferError_(
                f"chunk {self.cid}: move src={src} dst={dst} len={length} "
                f"outside used region [0:{self.used})"
            )
        if length and src != dst:
            self.data[dst : dst + length] = bytes(self.data[src : src + length])

    def grow(self, new_capacity: int) -> None:
        """Reallocate to a larger backing store (contents preserved)."""
        if new_capacity < self.used:
            raise BufferError_("cannot shrink below used size")
        fresh = bytearray(new_capacity)
        fresh[: self.used] = self.data[: self.used]
        self.data = fresh

    def take_tail(self, pos: int) -> bytes:
        """Remove and return the bytes ``[pos:used)`` (used by splits)."""
        if not (0 <= pos <= self.used):
            raise BufferError_(f"split position {pos} outside used region")
        tail = bytes(self.data[pos : self.used])
        self.used = pos
        return tail

    # ------------------------------------------------------------------
    def view(self) -> memoryview:
        """Zero-copy view of the used region (for scatter-gather sends)."""
        return memoryview(self.data)[: self.used]

    def tobytes(self) -> bytes:
        """Copy of the used region (tests/inspection)."""
        return bytes(self.data[: self.used])

    def __len__(self) -> int:
        return self.used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chunk(cid={self.cid}, used={self.used}, cap={self.capacity})"
