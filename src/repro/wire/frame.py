"""Binary delta-frame codec for repro↔repro traffic.

One frame carries the byte-level difference between two consecutive
stuffed documents of the same template — the splices the client's DUT
dirty set identifies — so a steady-state resend ships kilobytes of
patch instead of megabytes of XML.

Layout (all integers little-endian)::

    magic        4s   b"RDF1"  (Repro Delta Frame, version 1)
    template_id  u64  client-side MessageTemplate identity
    epoch        u32  baseline epoch (bumped per full-XML announce)
    seq          u32  frame sequence within the epoch (1-based)
    doc_len      u64  length of the reconstructed document
    splice_count u32
    crc32        u32  zlib.crc32 over directory + payload
    directory    splice_count × (offset u64, width u32)
    payload      concatenated splice bytes (sum of widths)

A content-match resend is a zero-splice frame: 36 bytes on the wire
for any document size.

:func:`decode_frame` is the hardened boundary: every cap from
:class:`~repro.hardening.ResourceLimits` (splice count, frame size),
every structural property (sorted non-overlapping splices, in-bounds
offsets, payload length equal to the directory's sum) and the CRC are
checked *before* any mirror byte is touched, so a lying frame can only
ever produce a clean :class:`~repro.errors.DeltaFrameError`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import DeltaFrameError
from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits

__all__ = [
    "MAGIC",
    "HEADER",
    "DIR_ENTRY",
    "DeltaFrame",
    "encode_frame",
    "decode_frame",
    "apply_frame",
]

MAGIC = b"RDF1"
HEADER = struct.Struct("<4sQIIQII")
DIR_ENTRY = struct.Struct("<QI")
_DIR_DTYPE = np.dtype([("off", "<u8"), ("width", "<u4")])


@dataclass(slots=True)
class DeltaFrame:
    """One decoded (validated) delta frame."""

    template_id: int
    epoch: int
    seq: int
    doc_len: int
    #: Sorted, non-overlapping absolute byte offsets (int64).
    offsets: np.ndarray
    #: Per-splice byte widths (int64), all positive.
    widths: np.ndarray
    #: Concatenated splice bytes, ``widths.sum()`` long.
    payload: bytes

    @property
    def splice_count(self) -> int:
        return int(self.offsets.shape[0])


def encode_frame(
    template_id: int,
    epoch: int,
    seq: int,
    doc_len: int,
    offsets: Sequence[int],
    widths: Sequence[int],
    payload: bytes,
) -> bytes:
    """Serialize one frame.  Caller guarantees the splice invariants."""
    n = len(offsets)
    if n:
        directory = np.empty(n, dtype=_DIR_DTYPE)
        directory["off"] = offsets
        directory["width"] = widths
        tail = directory.tobytes() + payload
    else:
        tail = payload
    crc = zlib.crc32(tail) & 0xFFFFFFFF
    head = HEADER.pack(MAGIC, template_id, epoch, seq, doc_len, n, crc)
    return head + tail


def decode_frame(
    data: bytes, *, limits: Optional[ResourceLimits] = None
) -> DeltaFrame:
    """Validate and decode one frame (see module docstring)."""
    limits = limits if limits is not None else DEFAULT_LIMITS
    if len(data) > limits.max_delta_frame_bytes:
        raise DeltaFrameError(
            f"frame of {len(data)} bytes exceeds "
            f"max_delta_frame_bytes={limits.max_delta_frame_bytes}",
            "frame-too-large",
        )
    if len(data) < HEADER.size:
        raise DeltaFrameError(
            f"frame truncated at {len(data)} bytes (header is {HEADER.size})",
            "truncated",
        )
    magic, template_id, epoch, seq, doc_len, count, crc = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise DeltaFrameError(f"bad frame magic {magic!r}", "bad-magic")
    if count > limits.max_delta_splices:
        raise DeltaFrameError(
            f"{count} splices exceed max_delta_splices="
            f"{limits.max_delta_splices}",
            "too-many-splices",
        )
    if doc_len > limits.max_body_bytes:
        raise DeltaFrameError(
            f"declared doc_len {doc_len} exceeds "
            f"max_body_bytes={limits.max_body_bytes}",
            "doc-too-large",
        )
    dir_end = HEADER.size + count * DIR_ENTRY.size
    if dir_end > len(data):
        raise DeltaFrameError(
            f"directory for {count} splices overruns the frame", "truncated"
        )
    tail = data[HEADER.size:]
    if zlib.crc32(tail) & 0xFFFFFFFF != crc:
        raise DeltaFrameError("frame CRC mismatch", "crc-mismatch")
    payload = data[dir_end:]
    if count:
        directory = np.frombuffer(
            data, dtype=_DIR_DTYPE, count=count, offset=HEADER.size
        )
        offsets = directory["off"].astype(np.int64)
        widths = directory["width"].astype(np.int64)
        if bool((offsets < 0).any()):
            # u64 offsets past 2**63 wrap negative in the int64 view;
            # negative slice indices would *insert* into the mirror.
            raise DeltaFrameError(
                "splice offset exceeds the representable range",
                "out-of-bounds",
            )
        if int(widths.sum()) != len(payload):
            raise DeltaFrameError(
                "payload length disagrees with the splice directory",
                "payload-mismatch",
            )
        if bool((widths <= 0).any()):
            raise DeltaFrameError("zero-width splice", "bad-splice")
        ends = offsets + widths
        if bool((ends > doc_len).any()):
            raise DeltaFrameError(
                "splice reaches past the declared document length",
                "out-of-bounds",
            )
        if bool((offsets[1:] < ends[:-1]).any()):
            raise DeltaFrameError(
                "splices unsorted or overlapping", "bad-splice"
            )
    else:
        if payload:
            raise DeltaFrameError(
                "payload bytes present with zero splices", "payload-mismatch"
            )
        offsets = np.empty(0, dtype=np.int64)
        widths = np.empty(0, dtype=np.int64)
    return DeltaFrame(
        template_id=int(template_id),
        epoch=int(epoch),
        seq=int(seq),
        doc_len=int(doc_len),
        offsets=offsets,
        widths=widths,
        payload=payload,
    )


def apply_frame(frame: DeltaFrame, mirror: bytearray) -> None:
    """Patch *mirror* in place with the frame's splices.

    The caller has already matched template id / epoch / sequence; the
    only check left is that the mirror really is the document the
    frame was diffed against (by length — content equality is the
    protocol's invariant, re-verified end-to-end by the oracle tests).
    """
    if len(mirror) != frame.doc_len:
        raise DeltaFrameError(
            f"mirror is {len(mirror)} bytes, frame expects {frame.doc_len}",
            "doc-len-mismatch",
        )
    payload = frame.payload
    pos = 0
    for off, width in zip(frame.offsets.tolist(), frame.widths.tolist()):
        mirror[off : off + width] = payload[pos : pos + width]
        pos += width
