"""In-process delta loopback: client encoder → server mirror, no sockets.

:class:`DeltaLoopback` implements the client
:class:`~repro.transport.base.Transport` protocol *plus* the delta
extensions (``set_delta_announce`` / ``send_delta_frame``) and plays
the server role itself: announced full sends deposit mirrors in an
embedded :class:`~repro.wire.server.DeltaSession`, frames are decoded
and applied under real :class:`~repro.hardening.ResourceLimits`, and
every delivered *document* (full body or reconstruction) is exposed to
the caller.

Two consumers:

* the oracle tests assert each reconstructed document is byte-identical
  to the naive client's serialization, across every match level and
  through fallback/resync transitions;
* the bandwidth ablation bench measures payload bytes-on-wire for the
  full-XML vs delta variants without socket noise.

A frame the embedded server cannot apply raises straight through
``send_delta_frame`` — the client stub rolls the send epoch back,
marks the template suspect, and the next send is a full resync, which
is exactly the live-HTTP fallback flow compressed into one call.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.wire.server import DeltaSession

__all__ = ["DeltaLoopback"]


class DeltaLoopback:
    """Transport + in-process delta peer (see module docstring)."""

    def __init__(
        self,
        *,
        limits: Optional[ResourceLimits] = None,
        keep_documents: bool = False,
    ) -> None:
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self.delta = DeltaSession(self.limits)
        self.keep_documents = keep_documents
        #: Every delivered document, in order (when keep_documents).
        self.documents: List[bytes] = []
        self.last_document: Optional[bytes] = None
        self.full_sends = 0
        self.delta_sends = 0
        #: Payload bytes that crossed the "wire" (bodies + frames).
        self.payload_bytes = 0
        self._announce: Optional[tuple] = None

    # -- client-transport surface --------------------------------------
    def set_delta_announce(self, template_id: int, epoch: int) -> None:
        self._announce = (template_id, epoch)

    def send_message(self, views, total_bytes: Optional[int] = None) -> int:
        body = b"".join(bytes(v) for v in views)
        if self._announce is not None:
            template_id, epoch = self._announce
            self._announce = None
            self.delta.store(template_id, epoch, body)
        self.full_sends += 1
        self.payload_bytes += len(body)
        self._deliver(body)
        return len(body)

    def send_delta_frame(self, frame: bytes) -> int:
        document = self.delta.apply(frame, self.limits)
        self.delta_sends += 1
        self.payload_bytes += len(frame)
        self._deliver(document)
        return len(frame)

    def close(self) -> None:
        pass

    # ------------------------------------------------------------------
    def _deliver(self, document: bytes) -> None:
        self.last_document = document
        if self.keep_documents:
            self.documents.append(document)
