"""Server side of the delta-frame protocol: per-session mirror store.

One :class:`DeltaSession` lives on each
:class:`~repro.runtime.sessions.ServerSession`.  Full-XML requests
carrying announce headers deposit a *mirror* — a byte copy of the body
keyed by the client's template id.  A later binary frame is decoded
under the session's :class:`~repro.hardening.ResourceLimits`, matched
against the mirror's epoch/sequence, applied in place, and the
reconstructed document handed to the normal SOAP pipeline (where the
:class:`~repro.server.diffdeser.DifferentialDeserializer` then gets a
guaranteed same-length, value-spans-only diff — its best case).

Every mismatch *drops* the mirror and raises
:class:`~repro.errors.DeltaResyncError`; the front end answers the
resync status and the client re-announces with full XML.  Nothing in
this module lets a bad frame leave a half-patched mirror behind:
decode validates everything first, and state checks precede the write.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import DeltaResyncError
from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.wire.frame import apply_frame, decode_frame

__all__ = ["DeltaSession"]


class _Mirror:
    __slots__ = ("data", "epoch", "seq")

    def __init__(self, data: bytearray, epoch: int) -> None:
        self.data = data
        self.epoch = epoch
        self.seq = 0


class DeltaSession:
    """Mirror documents and counters for one server session."""

    __slots__ = (
        "mirrors",
        "max_mirrors",
        "frames_applied",
        "resyncs",
        "bytes_saved",
        "last_reconstructed",
    )

    def __init__(self, limits: Optional[ResourceLimits] = None) -> None:
        limits = limits if limits is not None else DEFAULT_LIMITS
        self.mirrors: "OrderedDict[int, _Mirror]" = OrderedDict()
        self.max_mirrors = limits.max_delta_mirrors
        self.frames_applied = 0
        self.resyncs = 0
        self.bytes_saved = 0
        #: Most recent reconstructed document (oracle tests compare it
        #: byte-for-byte against the naive serialization).
        self.last_reconstructed: Optional[bytes] = None

    # ------------------------------------------------------------------
    def store(self, template_id: int, epoch: int, body: bytes) -> None:
        """Deposit the announced baseline *body* as a mirror."""
        self.mirrors.pop(template_id, None)
        self.mirrors[template_id] = _Mirror(bytearray(body), epoch)
        while len(self.mirrors) > self.max_mirrors:
            self.mirrors.popitem(last=False)

    def apply(self, frame_bytes: bytes, limits: ResourceLimits) -> bytes:
        """Decode + validate + apply one frame; return the document.

        Raises :class:`~repro.errors.DeltaFrameError` for malformed
        frames and :class:`~repro.errors.DeltaResyncError` for state
        mismatches; both drop any affected mirror first.
        """
        frame = decode_frame(frame_bytes, limits=limits)
        mirror = self.mirrors.get(frame.template_id)
        if mirror is None:
            self.resyncs += 1
            raise DeltaResyncError(
                f"no mirror for template {frame.template_id}",
                "unknown-template",
            )
        if frame.epoch != mirror.epoch:
            self.mirrors.pop(frame.template_id, None)
            self.resyncs += 1
            raise DeltaResyncError(
                f"frame epoch {frame.epoch} != mirror epoch {mirror.epoch}",
                "stale-epoch",
            )
        if frame.seq != mirror.seq + 1:
            self.mirrors.pop(frame.template_id, None)
            self.resyncs += 1
            raise DeltaResyncError(
                f"frame seq {frame.seq} after mirror seq {mirror.seq}",
                "sequence-gap",
            )
        if frame.doc_len != len(mirror.data):
            self.mirrors.pop(frame.template_id, None)
            self.resyncs += 1
            raise DeltaResyncError(
                f"frame doc_len {frame.doc_len} != mirror length "
                f"{len(mirror.data)}",
                "doc-len-mismatch",
            )
        apply_frame(frame, mirror.data)
        mirror.seq = frame.seq
        self.mirrors.move_to_end(frame.template_id)
        self.frames_applied += 1
        document = bytes(mirror.data)
        self.bytes_saved += max(0, len(document) - len(frame_bytes))
        self.last_reconstructed = document
        return document

    def drop(self, template_id: int) -> None:
        self.mirrors.pop(template_id, None)

    def drop_lru(self) -> int:
        """Shed the least-recently-used mirror; return its byte size.

        The cheapest pressure-relief tier: the client's next frame for
        the dropped template answers ``unknown-template`` resync and
        the existing retry machinery re-announces full XML.  Returns 0
        when no mirror is held.
        """
        if not self.mirrors:
            return 0
        _key, mirror = self.mirrors.popitem(last=False)
        return len(mirror.data)

    def clear(self) -> None:
        self.mirrors.clear()

    def approx_bytes(self) -> int:
        """Approximate retained bytes (mirror documents dominate)."""
        return sum(len(m.data) for m in self.mirrors.values())
