"""``repro.wire`` — the negotiated binary delta-frame protocol.

Converts the paper's CPU win into a bandwidth win: once client and
server have negotiated (``X-Repro-Delta`` headers) and the server
holds a mirror of the last full document, a steady-state resend ships
a compact binary patch frame — the splices the DUT dirty set already
identifies — instead of the full XML.  Any mismatch degrades to full
XML plus a resync, so correctness never depends on the optimization.

See ``docs/wire_protocol.md`` for the frame layout, the negotiation
state machine, and the fallback taxonomy.
"""

from repro.wire.client import DeltaEncoder
from repro.wire.frame import (
    DIR_ENTRY,
    HEADER,
    MAGIC,
    DeltaFrame,
    apply_frame,
    decode_frame,
    encode_frame,
)
from repro.wire.loopback import DeltaLoopback
from repro.wire.server import DeltaSession

__all__ = [
    "MAGIC",
    "HEADER",
    "DIR_ENTRY",
    "DeltaFrame",
    "encode_frame",
    "decode_frame",
    "apply_frame",
    "DeltaEncoder",
    "DeltaSession",
    "DeltaLoopback",
]
