"""Client side of the delta-frame protocol: baselines + splice harvest.

The :class:`DeltaEncoder` rides along inside
:class:`~repro.core.client.BSoapClient`:

* every full-XML send of a surviving template *announces* a baseline
  (template id + a fresh epoch) via headers the HTTP framer injects,
  so the server can keep a mirror copy of the body;
* once the server's ``X-Repro-Delta: 1`` response header flips
  :attr:`negotiated`, eligible steady-state sends are encoded as
  binary frames instead: the splices are harvested straight from the
  DUT dirty snapshot taken by ``begin_send()`` — exactly the byte
  regions (value + closing tag + pad) the differential rewrite is
  allowed to touch when no field expanded.

Eligibility is deliberately conservative; anything else falls back to
full XML with a fresh announce, so correctness never depends on the
optimization:

* match level must be content or perfect-structural with zero
  expansions (a moved byte invalidates cached offsets),
* the buffer's ``layout_epoch`` and total length must equal the
  announced baseline's,
* the frame must stay under ``max_splices`` and under
  ``max_frame_fraction`` of the document (at high churn a patch
  approaches the document size and full XML is strictly cheaper).

This module must not import :mod:`repro.core` (the client imports us);
templates and policies are duck-typed.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.wire.frame import DIR_ENTRY, HEADER, encode_frame

__all__ = ["DeltaEncoder"]


class _Baseline:
    """What the client believes the server mirrors for one template."""

    __slots__ = ("epoch", "seq", "doc_len", "layout_epoch")

    def __init__(self, epoch: int, doc_len: int, layout_epoch: int) -> None:
        self.epoch = epoch
        self.seq = 0
        self.doc_len = doc_len
        self.layout_epoch = layout_epoch


class DeltaEncoder:
    """Per-client delta-frame state machine (see module docstring)."""

    def __init__(self, policy, transport, obs=None) -> None:
        self.policy = policy
        self.transport = transport
        #: Offer enabled *and* the transport can carry frames.
        self.active = bool(
            getattr(policy, "offer", False)
            and hasattr(transport, "send_delta_frame")
            and hasattr(transport, "set_delta_announce")
        )
        #: Flipped by the channel when the server's response carries
        #: the acceptance header.  Frames are only sent when True.
        self.negotiated = False
        self.obs = obs
        self._baselines: Dict[int, _Baseline] = {}
        self._epoch_counter = 0
        # Lifetime counters (mirrored into metrics when obs is live).
        self.frames_sent = 0
        self.bytes_saved = 0
        self.fallbacks: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def announce(self, template) -> None:
        """Record a fresh baseline and arm announce headers for the
        imminent full-XML send of *template*."""
        if not self.active:
            return
        self._epoch_counter += 1
        baseline = _Baseline(
            self._epoch_counter,
            template.total_bytes,
            template.buffer.layout_epoch,
        )
        self._baselines[template.template_id] = baseline
        self.transport.set_delta_announce(template.template_id, baseline.epoch)

    def invalidate(self, template_id: int) -> None:
        """Drop one baseline (send failed / template quarantined)."""
        self._baselines.pop(template_id, None)

    def reset_baselines(self) -> None:
        """Drop every baseline (the connection — and with it the
        server session holding the mirrors — died)."""
        self._baselines.clear()

    # ------------------------------------------------------------------
    def try_encode(self, template, snapshot, rewrite) -> Optional[bytes]:
        """Encode this send as a frame, or ``None`` to fall back.

        *snapshot* is the dirty mask captured by ``begin_send()``
        before the rewrite ran; *rewrite* the pass's stats.
        """
        if not (self.active and self.negotiated):
            return None
        baseline = self._baselines.get(template.template_id)
        if baseline is None:
            return self._fallback("no-baseline")
        if rewrite.expansions:
            return self._fallback("expansion")
        buffer = template.buffer
        if buffer.layout_epoch != baseline.layout_epoch:
            return self._fallback("layout-epoch")
        if template.total_bytes != baseline.doc_len:
            return self._fallback("doc-len")

        dut = template.dut
        take = np.flatnonzero(snapshot)
        if take.size:
            chunk_ids = buffer.chunk_ids
            bases = np.zeros(max(chunk_ids) + 1, dtype=np.int64)
            pos = 0
            for cid in chunk_ids:
                bases[cid] = pos
                pos += buffer.chunk(cid).used
            cids = dut.chunk_id[take]
            value_offs = dut.value_off[take].astype(np.int64)
            # The full region a no-expansion rewrite may touch: value
            # bytes, the (possibly moved) closing tag, and the pad.
            widths = (
                dut.field_width[take].astype(np.int64)
                + dut.close_len[take].astype(np.int64)
            )
            offsets = bases[cids] + value_offs
            # Entries are in document order, so offsets are sorted;
            # coalesce byte-adjacent regions into single splices.
            gap = offsets[1:] != offsets[:-1] + widths[:-1]
            starts = np.concatenate(([0], np.flatnonzero(gap) + 1))
            ends = np.concatenate((np.flatnonzero(gap) + 1, [take.size]))
            cumw = np.concatenate(([0], np.cumsum(widths)))
            out_offsets = offsets[starts]
            out_widths = cumw[ends] - cumw[starts]
            if out_offsets.size > self.policy.max_splices:
                return self._fallback("too-many-splices")
            estimated = (
                HEADER.size
                + out_offsets.size * DIR_ENTRY.size
                + int(out_widths.sum())
            )
            if estimated > self.policy.max_frame_fraction * baseline.doc_len:
                return self._fallback("frame-too-large")
            parts = []
            cids_l = cids.tolist()
            offs_l = value_offs.tolist()
            widths_l = widths.tolist()
            last_cid = -1
            data = b""
            for k in range(take.size):
                cid = cids_l[k]
                if cid != last_cid:
                    data = buffer.chunk(cid).data
                    last_cid = cid
                off = offs_l[k]
                parts.append(bytes(data[off : off + widths_l[k]]))
            payload = b"".join(parts)
        else:
            # Content match: nothing dirty — a header-only frame.
            out_offsets = ()
            out_widths = ()
            payload = b""

        baseline.seq += 1
        frame = encode_frame(
            template.template_id,
            baseline.epoch,
            baseline.seq,
            baseline.doc_len,
            out_offsets,
            out_widths,
            payload,
        )
        self.frames_sent += 1
        saved = baseline.doc_len - len(frame)
        if saved > 0:
            self.bytes_saved += saved
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.record_delta_frame("encoded", max(0, saved))
            if obs.tracer.enabled:
                obs.tracer.emit(
                    "delta-encode",
                    template_id=template.template_id,
                    epoch=baseline.epoch,
                    seq=baseline.seq,
                    splices=len(out_offsets),
                    frame_bytes=len(frame),
                    doc_bytes=baseline.doc_len,
                )
        return frame

    def _fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.record_delta_frame("fallback-" + reason, 0)
        return None
