"""§2 cost decomposition: where full serialization spends its time.

    "The most critical factor is the cost of conversion between
    floating point numbers and their ASCII representations.  These
    conversion routines account for 90% of end-to-end time for a SOAP
    RPC call."

The decomposition times the four phases §2 enumerates over the same
double-array workload: (1) traversing the data structures, (2)
translating values to ASCII, (3) copying the XML representation
(including tags) into a buffer, (4) sending the buffer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bench.workloads import random_doubles
from repro.lexical.floats import FloatFormat, format_double_array
from repro.soap.envelope import envelope_layout
from repro.transport.loopback import MemcpySink

__all__ = ["PhaseBreakdown", "decompose_serialization"]


@dataclass(slots=True)
class PhaseBreakdown:
    """Mean per-call milliseconds of each serialization phase."""

    n: int
    traversal_ms: float
    conversion_ms: float
    packing_ms: float
    send_ms: float

    @property
    def total_ms(self) -> float:
        return self.traversal_ms + self.conversion_ms + self.packing_ms + self.send_ms

    @property
    def conversion_share(self) -> float:
        """Fraction of total serialization time spent converting."""
        total = self.total_ms
        return self.conversion_ms / total if total else 0.0


def decompose_serialization(
    n: int, reps: int = 10, fmt: FloatFormat = FloatFormat.MINIMAL
) -> PhaseBreakdown:
    """Measure the four phases for an *n*-double array message."""
    values = random_doubles(n, seed=n)
    layout = envelope_layout("urn:bsoap:bench", "sendDoubles")
    sink = MemcpySink()
    open_item, close_item = b"<item>", b"</item>"

    t_traversal = t_conversion = t_packing = t_send = 0.0
    for _ in range(reps):
        # Phase 1: traverse the in-memory structure (unbox values).
        t0 = time.perf_counter()
        unboxed = values.tolist()
        t1 = time.perf_counter()

        # Phase 2: value → ASCII conversion.
        texts = format_double_array(unboxed, fmt)
        t2 = time.perf_counter()

        # Phase 3: copy XML representation (tags + values) into a buffer.
        body = b"".join(open_item + t + close_item for t in texts)
        message = [layout.prefix, b"<data>", body, b"</data>", layout.suffix]
        t3 = time.perf_counter()

        # Phase 4: send.
        sink.send_message(message)
        t4 = time.perf_counter()

        t_traversal += t1 - t0
        t_conversion += t2 - t1
        t_packing += t3 - t2
        t_send += t4 - t3

    scale = 1000.0 / reps
    return PhaseBreakdown(
        n=n,
        traversal_ms=t_traversal * scale,
        conversion_ms=t_conversion * scale,
        packing_ms=t_packing * scale,
        send_ms=t_send * scale,
    )
