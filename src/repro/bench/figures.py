"""Per-figure experiment definitions (paper §4) and a CLI runner.

Each ``figNN`` function reproduces one figure's curves and returns a
:data:`~repro.bench.report.Series`.  Run them all (or one) with::

    python -m repro.bench.figures              # every figure, quick sizes
    python -m repro.bench.figures fig04 fig05  # a subset
    python -m repro.bench.figures --sizes 1,100,1000,10000 --transport tcp

Absolute times are Python-scale, not the paper's C-scale; the claims
under reproduction are the *shapes*: who wins, by what factor, and
where curves sit relative to each other.  EXPERIMENTS.md records the
comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.gsoap_like import GSoapLikeClient
from repro.baselines.xsoap_like import XSoapLikeClient
from repro.bench.report import Series, format_ratios, format_series
from repro.bench.runner import TransportRig, time_loop
from repro.bench.workloads import (
    MIO_INTERMEDIATE_SPLIT,
    MIO_MAX_SPLIT,
    MIO_MIN_SPLIT,
    double_array_message,
    doubles_of_width,
    int_array_message,
    ints_of_width,
    mio_columns_of_widths,
    mio_message,
    random_doubles,
    random_ints,
    random_mio_columns,
)
from repro.buffers.config import ChunkPolicy
from repro.core.client import BSoapClient
from repro.core.policy import (
    DiffPolicy,
    Expansion,
    OverlayPolicy,
    StuffMode,
    StuffingPolicy,
)

__all__ = ["FIGURES", "run_figure", "main"]

#: Default quick sizes (full paper sweep: 1,100,500,1K,10K,50K,100K).
DEFAULT_SIZES: Tuple[int, ...] = (1, 100, 500, 1000, 10000)

FigureFn = Callable[[Sequence[int], Optional[int], str], Tuple[str, Series]]
FIGURES: Dict[str, FigureFn] = {}


def _figure(name: str):
    def register(fn: FigureFn) -> FigureFn:
        FIGURES[name] = fn
        return fn

    return register


def _mean(timer) -> float:
    return timer.mean_ms


# ----------------------------------------------------------------------
# Figures 1-3: message content matches
# ----------------------------------------------------------------------
def _content_match_figure(
    make_message: Callable[[int], object],
    sizes: Sequence[int],
    reps: Optional[int],
    transport: str,
    *,
    include_xsoap: bool = False,
) -> Series:
    series: Series = {"gSOAP-like": [], "bSOAP Full Serialization": [],
                      "bSOAP Content Match": []}
    if include_xsoap:
        series = {"XSOAP-like": [], **series}
    with TransportRig(transport) as tp:
        for n in sizes:
            message = make_message(n)
            if include_xsoap:
                xsoap = XSoapLikeClient(tp)
                series["XSOAP-like"].append(
                    (n, _mean(time_loop(lambda: xsoap.send(message), reps=reps)))
                )
            gsoap = GSoapLikeClient(tp)
            series["gSOAP-like"].append(
                (n, _mean(time_loop(lambda: gsoap.send(message), reps=reps)))
            )
            bfull = BSoapClient(tp, DiffPolicy(differential_enabled=False))
            series["bSOAP Full Serialization"].append(
                (n, _mean(time_loop(lambda: bfull.send(message), reps=reps)))
            )
            bsoap = BSoapClient(tp)
            call = bsoap.prepare(message)
            call.send()
            series["bSOAP Content Match"].append(
                (n, _mean(time_loop(call.send, reps=reps)))
            )
    return series


@_figure("fig01")
def fig01(sizes, reps, transport):
    """Content matches, arrays of MIOs (paper Figure 1)."""
    series = _content_match_figure(
        lambda n: mio_message(random_mio_columns(n, seed=n)), sizes, reps, transport
    )
    return "Figure 1 — Message Content Matches: MIOs (Send Time, ms)", series


@_figure("fig02")
def fig02(sizes, reps, transport):
    """Content matches, arrays of doubles, incl. XSOAP (Figure 2)."""
    series = _content_match_figure(
        lambda n: double_array_message(random_doubles(n, seed=n)),
        sizes,
        reps,
        transport,
        include_xsoap=True,
    )
    return "Figure 2 — Message Content Matches: Doubles (Send Time, ms)", series


@_figure("fig03")
def fig03(sizes, reps, transport):
    """Content matches, arrays of integers (Figure 3)."""
    series = _content_match_figure(
        lambda n: int_array_message(random_ints(n, seed=n)), sizes, reps, transport
    )
    return "Figure 3 — Message Content Matches: Integers (Send Time, ms)", series


# ----------------------------------------------------------------------
# Figures 4-5: perfect structural matches
# ----------------------------------------------------------------------
_FRACTIONS = (1.0, 0.75, 0.5, 0.25)


def _structural_figure(
    kind: str, sizes: Sequence[int], reps: Optional[int], transport: str
) -> Series:
    """Dirty-fraction sweep with width-stable replacement values."""
    series: Series = {"bSOAP Full Serialization": []}
    for frac in _FRACTIONS:
        series[f"{int(frac * 100)}% Value Re-serialization"] = []
    series["Message Content Match"] = []

    with TransportRig(transport) as tp:
        for n in sizes:
            if kind == "mio":
                cols = mio_columns_of_widths(n, MIO_INTERMEDIATE_SPLIT, seed=n)
                message = mio_message(cols)
                pool = doubles_of_width(
                    n, MIO_INTERMEDIATE_SPLIT[2], seed=n + 999
                )
            else:
                values = doubles_of_width(n, 18, seed=n)
                message = double_array_message(values)
                pool = doubles_of_width(n, 18, seed=n + 999)

            bfull = BSoapClient(tp, DiffPolicy(differential_enabled=False))
            series["bSOAP Full Serialization"].append(
                (n, _mean(time_loop(lambda: bfull.send(message), reps=reps)))
            )

            for frac in _FRACTIONS:
                client = BSoapClient(tp)
                call = client.prepare(message)
                call.send()
                tracked = call.tracked("mesh" if kind == "mio" else "data")
                k = max(1, int(frac * n))
                rng = np.random.default_rng(n)
                flip = [pool, np.roll(pool, 1)]
                state = {"i": 0}

                def mutate():
                    idx = rng.choice(n, k, replace=False) if k < n else np.arange(n)
                    src = flip[state["i"] % 2]
                    state["i"] += 1
                    if kind == "mio":
                        # Paper: only the MIO doubles are re-serialized.
                        tracked.set_items(idx, "v", src[idx])
                    else:
                        tracked.update(idx, src[idx])

                timer = time_loop(call.send, setup=mutate, reps=reps)
                series[f"{int(frac * 100)}% Value Re-serialization"].append(
                    (n, _mean(timer))
                )

            client = BSoapClient(tp)
            call = client.prepare(message)
            call.send()
            series["Message Content Match"].append(
                (n, _mean(time_loop(call.send, reps=reps)))
            )
    return series


@_figure("fig04")
def fig04(sizes, reps, transport):
    """Perfect structural matches, MIOs (Figure 4)."""
    return (
        "Figure 4 — Perfect Structural Matches: MIOs (Send Time, ms)",
        _structural_figure("mio", sizes, reps, transport),
    )


@_figure("fig05")
def fig05(sizes, reps, transport):
    """Perfect structural matches, doubles (Figure 5)."""
    return (
        "Figure 5 — Perfect Structural Matches: Doubles (Send Time, ms)",
        _structural_figure("double", sizes, reps, transport),
    )


# ----------------------------------------------------------------------
# Figures 6-9: shifting
# ----------------------------------------------------------------------
def _shift_policy(chunk_size: int) -> DiffPolicy:
    return DiffPolicy(
        chunk=ChunkPolicy(
            chunk_size=chunk_size,
            reserve=min(512, chunk_size // 8),
            split_threshold=chunk_size // 2,
        )
    )


def _worst_case_shift_point(
    kind: str,
    n: int,
    chunk_size: int,
    tp,
    reps: Optional[int],
) -> float:
    """Every value expands min width → max width (template rebuilt per rep)."""
    if kind == "mio":
        small = mio_columns_of_widths(n, MIO_MIN_SPLIT, seed=n)
        big = mio_columns_of_widths(n, MIO_MAX_SPLIT, seed=n + 7)
        message = mio_message(small)
        pname = "mesh"
    else:
        small = doubles_of_width(n, 1, seed=n)
        big = doubles_of_width(n, 24, seed=n + 7)
        message = double_array_message(small)
        pname = "data"

    state = {}

    def rebuild():
        client = BSoapClient(tp, _shift_policy(chunk_size))
        call = client.prepare(message)
        call.send()
        tracked = call.tracked(pname)
        if kind == "mio":
            idx = np.arange(n)
            for col in ("x", "y", "v"):
                tracked.set_items(idx, col, big[col])
        else:
            tracked.update(np.arange(n), big)
        state["call"] = call

    timer = time_loop(
        lambda: state["call"].send(), setup=rebuild, reps=reps, max_reps=20
    )
    return timer.mean_ms


def _no_shift_reference_point(
    kind: str, n: int, tp, reps: Optional[int]
) -> float:
    """100% value re-serialization at stable max width (no shifting)."""
    if kind == "mio":
        cols = mio_columns_of_widths(n, MIO_MAX_SPLIT, seed=n)
        message = mio_message(cols)
        other = doubles_of_width(n, MIO_MAX_SPLIT[2], seed=n + 31)
        pname = "mesh"
    else:
        values = doubles_of_width(n, 24, seed=n)
        message = double_array_message(values)
        other = doubles_of_width(n, 24, seed=n + 31)
        pname = "data"
    client = BSoapClient(tp)
    call = client.prepare(message)
    call.send()
    tracked = call.tracked(pname)
    flip = [other, np.roll(other, 1)]
    state = {"i": 0}
    idx = np.arange(n)

    def mutate():
        src = flip[state["i"] % 2]
        state["i"] += 1
        if kind == "mio":
            tracked.set_items(idx, "v", src)
            # x/y re-serialized too in the 100% case: same values, so
            # rewrite them with themselves (width-stable).
            tracked.set_items(idx, "x", tracked.column("x"))
            tracked.set_items(idx, "y", tracked.column("y"))
        else:
            tracked.update(idx, src)

    return time_loop(call.send, setup=mutate, reps=reps).mean_ms


def _worst_case_figure(
    kind: str, sizes: Sequence[int], reps: Optional[int], transport: str
) -> Series:
    series: Series = {
        "Worst Case Shifting, 32K Chunks": [],
        "Worst Case Shifting, 8K Chunks": [],
        "100% Re-serialization, No Shifting": [],
    }
    with TransportRig(transport) as tp:
        for n in sizes:
            series["Worst Case Shifting, 32K Chunks"].append(
                (n, _worst_case_shift_point(kind, n, 32 * 1024, tp, reps))
            )
            series["Worst Case Shifting, 8K Chunks"].append(
                (n, _worst_case_shift_point(kind, n, 8 * 1024, tp, reps))
            )
            series["100% Re-serialization, No Shifting"].append(
                (n, _no_shift_reference_point(kind, n, tp, reps))
            )
    return series


@_figure("fig06")
def fig06(sizes, reps, transport):
    """Worst-case shifting, MIOs: 3 → 46 characters (Figure 6)."""
    return (
        "Figure 6 — Worst Case Shifting: MIOs (Send Time, ms)",
        _worst_case_figure("mio", sizes, reps, transport),
    )


@_figure("fig07")
def fig07(sizes, reps, transport):
    """Worst-case shifting, doubles: 1 → 24 characters (Figure 7)."""
    return (
        "Figure 7 — Worst Case Shifting: Doubles (Send Time, ms)",
        _worst_case_figure("double", sizes, reps, transport),
    )


def _partial_shift_figure(
    kind: str, sizes: Sequence[int], reps: Optional[int], transport: str
) -> Series:
    """Fraction sweep: intermediate-width values expand to maximum."""
    series: Series = {}
    for frac in _FRACTIONS:
        series[f"{int(frac * 100)}% Re-serialization with Shifting"] = []
    series["100% Re-serialization, No Shifting"] = []

    with TransportRig(transport) as tp:
        for n in sizes:
            if kind == "mio":
                inter = mio_columns_of_widths(n, MIO_INTERMEDIATE_SPLIT, seed=n)
                message = mio_message(inter)
                big_v = doubles_of_width(n, MIO_MAX_SPLIT[2], seed=n + 7)
                big_xy = ints_of_width(n, 11, seed=n + 9)
                pname = "mesh"
            else:
                inter_vals = doubles_of_width(n, 18, seed=n)
                message = double_array_message(inter_vals)
                big = doubles_of_width(n, 24, seed=n + 7)
                pname = "data"

            for frac in _FRACTIONS:
                k = max(1, int(frac * n))
                state = {}

                def rebuild(k=k):
                    client = BSoapClient(tp, _shift_policy(32 * 1024))
                    call = client.prepare(message)
                    call.send()
                    tracked = call.tracked(pname)
                    rng = np.random.default_rng(n + k)
                    idx = (
                        np.sort(rng.choice(n, k, replace=False))
                        if k < n
                        else np.arange(n)
                    )
                    if kind == "mio":
                        tracked.set_items(idx, "x", big_xy[idx])
                        tracked.set_items(idx, "y", np.roll(big_xy, 3)[idx])
                        tracked.set_items(idx, "v", big_v[idx])
                    else:
                        tracked.update(idx, big[idx])
                    state["call"] = call

                timer = time_loop(
                    lambda: state["call"].send(),
                    setup=rebuild,
                    reps=reps,
                    max_reps=20,
                )
                series[f"{int(frac * 100)}% Re-serialization with Shifting"].append(
                    (n, timer.mean_ms)
                )

            series["100% Re-serialization, No Shifting"].append(
                (n, _no_shift_reference_point(kind, n, tp, reps))
            )
    return series


@_figure("fig08")
def fig08(sizes, reps, transport):
    """Partial shifting, MIOs: 36 → 46 characters (Figure 8)."""
    return (
        "Figure 8 — Shifting Performance: MIOs (Send Time, ms)",
        _partial_shift_figure("mio", sizes, reps, transport),
    )


@_figure("fig09")
def fig09(sizes, reps, transport):
    """Partial shifting, doubles: 18 → 24 characters (Figure 9)."""
    return (
        "Figure 9 — Shifting Performance: Doubles (Send Time, ms)",
        _partial_shift_figure("double", sizes, reps, transport),
    )


# ----------------------------------------------------------------------
# Figures 10-11: stuffing
# ----------------------------------------------------------------------
def _stuffing_figure(
    kind: str, sizes: Sequence[int], reps: Optional[int], transport: str
) -> Series:
    if kind == "mio":
        max_stuff = StuffingPolicy(StuffMode.MAX)
        inter_stuff = StuffingPolicy(
            StuffMode.FIXED,
            {"int": MIO_INTERMEDIATE_SPLIT[0], "double": MIO_INTERMEDIATE_SPLIT[2]},
        )
        min_cols = mio_columns_of_widths(max(sizes), MIO_MIN_SPLIT, seed=1)
        max_cols = mio_columns_of_widths(max(sizes), MIO_MAX_SPLIT, seed=2)
        make_msg = lambda n, cols: mio_message(
            {k: v[:n] for k, v in cols.items()}
        )
        pname = "mesh"
    else:
        max_stuff = StuffingPolicy(StuffMode.MAX)
        inter_stuff = StuffingPolicy(StuffMode.FIXED, {"double": 18})
        min_cols = doubles_of_width(max(sizes), 1, seed=1)
        max_cols = doubles_of_width(max(sizes), 24, seed=2)
        make_msg = lambda n, vals: double_array_message(vals[:n])
        pname = "data"

    series: Series = {
        "Max Field Width: Full Closing Tag Shift": [],
        "Max Field Width: No Closing Tag Shift": [],
        "Intermediate Field Width: No Closing Tag Shift": [],
        "Min Field Width: No Closing Tag Shift": [],
    }

    with TransportRig(transport) as tp:
        for n in sizes:
            # No-shift curves: content-match resends of messages whose
            # fields are stuffed to min/intermediate/max width — the
            # "larger messages" cost of stuffing.
            for label, stuff in (
                ("Max Field Width: No Closing Tag Shift", max_stuff),
                ("Intermediate Field Width: No Closing Tag Shift", inter_stuff),
                ("Min Field Width: No Closing Tag Shift", StuffingPolicy()),
            ):
                client = BSoapClient(tp, DiffPolicy(stuffing=stuff))
                call = client.prepare(make_msg(n, min_cols))
                call.send()
                series[label].append((n, time_loop(call.send, reps=reps).mean_ms))

            # Tag-shift curve: smallest values written over largest
            # values inside max-width fields — maximal closing-tag
            # movement plus whitespace fill on every field.
            client = BSoapClient(tp, DiffPolicy(stuffing=max_stuff))
            call = client.prepare(make_msg(n, max_cols))
            call.send()
            tracked = call.tracked(pname)
            idx = np.arange(n)
            state = {"i": 0}

            def mutate():
                use_min = state["i"] % 2 == 0
                state["i"] += 1
                src = min_cols if use_min else max_cols
                if kind == "mio":
                    for col in ("x", "y", "v"):
                        tracked.set_items(idx, col, src[col][:n])
                else:
                    tracked.update(idx, src[:n])

            # Only min-value writes represent the full tag shift; the
            # alternation keeps every iteration a full-width move.
            timer = time_loop(call.send, setup=mutate, reps=reps)
            series["Max Field Width: Full Closing Tag Shift"].append(
                (n, timer.mean_ms)
            )
    return series


@_figure("fig10")
def fig10(sizes, reps, transport):
    """Stuffing, MIOs: 3/36/46-character fields (Figure 10)."""
    return (
        "Figure 10 — Stuffing Performance: MIOs (Send Time, ms)",
        _stuffing_figure("mio", sizes, reps, transport),
    )


@_figure("fig11")
def fig11(sizes, reps, transport):
    """Stuffing, doubles: 1/18/24-character fields (Figure 11)."""
    return (
        "Figure 11 — Stuffing Performance: Doubles (Send Time, ms)",
        _stuffing_figure("double", sizes, reps, transport),
    )


# ----------------------------------------------------------------------
# Figure 12: chunk overlaying
# ----------------------------------------------------------------------
@_figure("fig12")
def fig12(sizes, reps, transport):
    """Chunk overlaying vs separate chunks (Figure 12)."""
    series: Series = {
        "Chunk Overlay (doubles)": [],
        "100% Value Re-serialization (doubles)": [],
        "Chunk Overlay (MIOs)": [],
        "100% Value Re-serialization (MIOs)": [],
    }
    overlay_policy = DiffPolicy(
        chunk=ChunkPolicy(chunk_size=32 * 1024),
        stuffing=StuffingPolicy(StuffMode.MAX),
        overlay=OverlayPolicy(enabled=True, min_items=1),
    )
    with TransportRig(transport) as tp:
        for n in sizes:
            for kind in ("doubles", "mios"):
                if kind == "doubles":
                    message = double_array_message(random_doubles(n, seed=n))
                    pname = "data"
                else:
                    message = mio_message(random_mio_columns(n, seed=n))
                    pname = "mesh"

                client = BSoapClient(tp, overlay_policy)
                client.send(message)
                timer = time_loop(lambda: client.send(message), reps=reps)
                label = "Chunk Overlay (doubles)" if kind == "doubles" else (
                    "Chunk Overlay (MIOs)"
                )
                series[label].append((n, timer.mean_ms))

                plain = BSoapClient(
                    tp,
                    DiffPolicy(
                        chunk=ChunkPolicy(chunk_size=32 * 1024),
                        stuffing=StuffingPolicy(StuffMode.MAX),
                    ),
                )
                call = plain.prepare(message)
                call.send()
                tracked = call.tracked(pname)
                idx = np.arange(n)
                # Alternate between two value sets so every iteration
                # writes *changed* values (same work the overlay does).
                if kind == "mios":
                    alts = [
                        {c: np.roll(tracked.column(c), s) for c in ("x", "y", "v")}
                        for s in (0, 1)
                    ]
                else:
                    alts = [np.roll(tracked.data, s) for s in (0, 1)]
                state = {"i": 0}

                def mutate():
                    src = alts[state["i"] % 2]
                    state["i"] += 1
                    if kind == "mios":
                        for col in ("x", "y", "v"):
                            tracked.set_items(idx, col, src[col])
                    else:
                        tracked.update(idx, src)

                timer = time_loop(call.send, setup=mutate, reps=reps)
                label = (
                    "100% Value Re-serialization (doubles)"
                    if kind == "doubles"
                    else "100% Value Re-serialization (MIOs)"
                )
                series[label].append((n, timer.mean_ms))
    return (
        "Figure 12 — Chunk Overlaying Performance (Send Time, ms)",
        series,
    )


# ----------------------------------------------------------------------
# §2: the conversion bottleneck
# ----------------------------------------------------------------------
@_figure("sec2")
def sec2(sizes, reps, transport):
    """§2 claim: float→ASCII conversion dominates serialization."""
    from repro.bench.profile90 import decompose_serialization

    series: Series = {
        "Traversal": [],
        "Conversion (float→ASCII)": [],
        "Tag emission + packing": [],
        "Send (memcpy)": [],
        "Conversion share %": [],
    }
    for n in sizes:
        phases = decompose_serialization(n, reps=reps or 10)
        series["Traversal"].append((n, phases.traversal_ms))
        series["Conversion (float→ASCII)"].append((n, phases.conversion_ms))
        series["Tag emission + packing"].append((n, phases.packing_ms))
        series["Send (memcpy)"].append((n, phases.send_ms))
        series["Conversion share %"].append((n, phases.conversion_share * 100))
    return (
        "Section 2 — Serialization cost decomposition (ms; share in %)",
        series,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def run_figure(
    name: str,
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: Optional[int] = None,
    transport: str = "memcpy",
) -> Tuple[str, Series]:
    """Run one figure experiment by name."""
    fn = FIGURES.get(name)
    if fn is None:
        raise KeyError(f"unknown figure {name!r}; have {sorted(FIGURES)}")
    return fn(sizes, reps, transport)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.figures",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=sorted(FIGURES),
        help=f"figures to run (default: all of {sorted(FIGURES)})",
    )
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated array sizes (paper: 1,100,500,1000,10000,50000,100000)",
    )
    parser.add_argument("--reps", type=int, default=None, help="fixed repetitions")
    parser.add_argument(
        "--transport",
        default="memcpy",
        choices=TransportRig.KINDS,
        help="transport rig (tcp = localhost dummy server, as in the paper)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render each figure as an ASCII log-log chart too",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also append the rendered tables to this file "
        "(for regenerating EXPERIMENTS.md data)",
    )
    args = parser.parse_args(argv)
    sizes = tuple(int(s) for s in args.sizes.split(","))

    sink_file = open(args.out, "a") if args.out else None
    try:
        for name in args.figures:
            title, series = run_figure(name, sizes, args.reps, args.transport)
            blocks = [format_series(title, series)]
            if name in ("fig01", "fig02", "fig03"):
                blocks.append(
                    format_ratios(
                        series,
                        [("bSOAP Full Serialization", "bSOAP Content Match")],
                        sizes,
                    )
                )
            if args.plot:
                from repro.bench.plots import ascii_plot

                blocks.append(ascii_plot(title, series))
            text = "\n".join(blocks)
            print()
            print(text)
            if sink_file is not None:
                sink_file.write("\n" + text + "\n")
                sink_file.flush()
    finally:
        if sink_file is not None:
            sink_file.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
