"""Policy-grid sweeps: how the knobs interact.

The paper lists its configurables (chunk size, split threshold,
reserve, stuffing widths) and notes they must be balanced against each
other (§3.2).  This module sweeps a grid of
(chunk size × stuffing mode × expansion strategy) over a chosen
workload and reports Send Time per cell — the tool for answering
"which configuration should *my* application use?".

Run:  python -m repro.bench.sweep --workload structural --n 10000
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.runner import TransportRig, time_loop
from repro.bench.workloads import double_array_message, doubles_of_width
from repro.buffers.config import ChunkPolicy
from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy, Expansion, StuffingPolicy, StuffMode

__all__ = ["SweepCell", "run_sweep", "WORKLOADS", "main"]

DEFAULT_CHUNK_SIZES = (8 * 1024, 32 * 1024, 128 * 1024)
DEFAULT_STUFFING = ("none", "fixed18", "max")
DEFAULT_EXPANSION = ("shift", "steal")


def _stuffing(name: str) -> StuffingPolicy:
    if name == "none":
        return StuffingPolicy()
    if name == "fixed18":
        return StuffingPolicy(StuffMode.FIXED, {"double": 18})
    if name == "max":
        return StuffingPolicy(StuffMode.MAX)
    raise ValueError(f"unknown stuffing {name!r}")


def _policy(chunk_size: int, stuffing: str, expansion: str) -> DiffPolicy:
    return DiffPolicy(
        chunk=ChunkPolicy(
            chunk_size=chunk_size,
            reserve=min(512, chunk_size // 8),
            split_threshold=chunk_size // 2,
        ),
        stuffing=_stuffing(stuffing),
        expansion=Expansion(expansion),
    )


@dataclass(slots=True)
class SweepCell:
    """One grid point's result."""

    chunk_size: int
    stuffing: str
    expansion: str
    mean_ms: float
    expansions: int
    message_bytes: int


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _structural_workload(n: int, policy: DiffPolicy, tp, reps: Optional[int]):
    """Steady-state: 25% of values rewritten per send, width-stable."""
    message = double_array_message(doubles_of_width(n, 14, seed=0))
    client = BSoapClient(tp, policy)
    call = client.prepare(message)
    call.send()
    pool = doubles_of_width(n, 14, seed=9)
    k = n // 4
    rng = np.random.default_rng(1)
    flip = [pool, np.roll(pool, 1)]
    state = {"i": 0, "expansions": 0}

    def mutate():
        idx = rng.choice(n, k, replace=False)
        call.tracked("data").update(idx, flip[state["i"] % 2][idx])
        state["i"] += 1

    def send():
        report = call.send()
        state["expansions"] += report.rewrite.expansions

    timer = time_loop(send, setup=mutate, reps=reps)
    return timer.mean_ms, state["expansions"], call.template.total_bytes


def _growth_workload(n: int, policy: DiffPolicy, tp, reps: Optional[int]):
    """Adversarial: 10% of values grow 14→24 chars per round, template
    rebuilt each round (expansion stress)."""
    message = double_array_message(doubles_of_width(n, 14, seed=0))
    big = doubles_of_width(n, 24, seed=7)
    rng = np.random.default_rng(1)
    idx = np.sort(rng.choice(n, n // 10, replace=False))
    state: Dict[str, object] = {"expansions": 0, "bytes": 0}

    def rebuild():
        client = BSoapClient(tp, policy)
        call = client.prepare(message)
        call.send()
        call.tracked("data").update(idx, big[idx])
        state["call"] = call

    def send():
        report = state["call"].send()  # type: ignore[attr-defined]
        state["expansions"] += report.rewrite.expansions
        state["bytes"] = report.bytes_sent

    timer = time_loop(send, setup=rebuild, reps=reps, max_reps=15)
    return timer.mean_ms, state["expansions"], state["bytes"]


WORKLOADS: Dict[str, Callable] = {
    "structural": _structural_workload,
    "growth": _growth_workload,
}


# ----------------------------------------------------------------------
def run_sweep(
    workload: str = "structural",
    n: int = 10_000,
    *,
    chunk_sizes: Sequence[int] = DEFAULT_CHUNK_SIZES,
    stuffing: Sequence[str] = DEFAULT_STUFFING,
    expansion: Sequence[str] = DEFAULT_EXPANSION,
    transport: str = "memcpy",
    reps: Optional[int] = None,
) -> List[SweepCell]:
    """Measure every grid cell; returns cells in grid order."""
    fn = WORKLOADS.get(workload)
    if fn is None:
        raise KeyError(f"unknown workload {workload!r}; have {sorted(WORKLOADS)}")
    cells: List[SweepCell] = []
    with TransportRig(transport) as tp:
        for chunk_size in chunk_sizes:
            for stuff in stuffing:
                for exp in expansion:
                    policy = _policy(chunk_size, stuff, exp)
                    mean_ms, expansions, nbytes = fn(n, policy, tp, reps)
                    cells.append(
                        SweepCell(chunk_size, stuff, exp, mean_ms, expansions, nbytes)
                    )
    return cells


def format_sweep(cells: Sequence[SweepCell]) -> str:
    """Aligned grid table, best cell marked."""
    best = min(c.mean_ms for c in cells)
    lines = [
        f"{'chunk':>8} {'stuffing':>9} {'expansion':>9} "
        f"{'mean ms':>10} {'expansions':>11} {'msg bytes':>11}"
    ]
    for c in cells:
        marker = "  <= best" if c.mean_ms == best else ""
        lines.append(
            f"{c.chunk_size // 1024:>6}K {c.stuffing:>9} {c.expansion:>9} "
            f"{c.mean_ms:>10.3f} {c.expansions:>11} {c.message_bytes:>11}{marker}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.sweep",
        description="Sweep bSOAP policy grids over a workload.",
    )
    parser.add_argument("--workload", default="structural", choices=sorted(WORKLOADS))
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument(
        "--transport", default="memcpy", choices=TransportRig.KINDS
    )
    args = parser.parse_args(argv)
    cells = run_sweep(
        args.workload, args.n, transport=args.transport, reps=args.reps
    )
    print(f"workload={args.workload} n={args.n} transport={args.transport}")
    print(format_sweep(cells))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
