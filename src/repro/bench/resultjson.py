"""The repo's standard JSON benchmark-result format.

Every throughput/latency bench that persists results (the
``BENCH_*.json`` trajectory at the repo root) emits one document in
this shape, so tooling — the CI smoke job, plotting, cross-PR
comparisons — can consume any bench without per-bench parsers:

.. code-block:: json

    {
      "schema": "repro-bench-result/1",
      "bench": "runtime_throughput",
      "created_unix": 1754438400,
      "env": {"python": "3.12.3", "platform": "Linux-..."},
      "params": {"calls": 200, "n": 256},
      "results": [
        {"mode": "pool", "pool_size": 4, "match_level": "perfect-structural",
         "calls_per_sec": 1234.5, "p50_ms": 0.71, "p99_ms": 2.2, ...}
      ],
      "notes": ""
    }

``results`` rows are flat (JSON scalars only) so they load straight
into a dataframe.  :func:`validate_result` is the schema check the CI
smoke job runs against freshly emitted documents.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "SCHEMA",
    "make_result",
    "make_metrics_result",
    "validate_result",
    "dump_result",
]

SCHEMA = "repro-bench-result/1"

_SCALAR = (int, float, str, bool, type(None))


def make_result(
    bench: str,
    params: Mapping[str, object],
    results: Sequence[Mapping[str, object]],
    notes: str = "",
) -> Dict[str, object]:
    """Assemble a schema-conforming result document."""
    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "bench": bench,
        "created_unix": int(time.time()),
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "params": dict(params),
        "results": [dict(r) for r in results],
        "notes": notes,
    }
    validate_result(doc)
    return doc


def make_metrics_result(
    rows: Sequence[Mapping[str, object]],
    bench: str = "metrics_snapshot",
    params: Optional[Mapping[str, object]] = None,
    notes: str = "",
) -> Dict[str, object]:
    """A result document holding a metrics snapshot.

    *rows* come from :func:`repro.obs.export.metrics_rows` — flat
    ``{"metric", "type", "labels", "value", ...}`` records — so live
    registry snapshots land in the same ``repro-bench-result/1``
    tooling as every bench.  An empty registry still yields a valid
    document (the schema requires a non-empty ``results`` list, so a
    placeholder row marks the snapshot as empty).
    """
    if not rows:
        rows = [{"metric": "", "type": "empty", "labels": "", "value": 0}]
    doc = make_result(bench, params or {}, rows, notes)
    return validate_result(doc, required_columns=("metric", "type", "value"))


def validate_result(
    doc: object, required_columns: Sequence[str] = ()
) -> Dict[str, object]:
    """Check *doc* against the standard shape; returns it on success.

    Raises ``ValueError`` listing every violation.  *required_columns*
    adds bench-specific metric columns each result row must carry.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise ValueError(f"bench result must be a JSON object, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    if not isinstance(doc.get("created_unix"), int):
        problems.append("created_unix must be an integer timestamp")
    env = doc.get("env")
    if not isinstance(env, dict) or not all(
        isinstance(env.get(k), str) for k in ("python", "platform")
    ):
        problems.append("env must carry string 'python' and 'platform'")
    if not isinstance(doc.get("params"), dict):
        problems.append("params must be an object")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("results must be a non-empty list")
    else:
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                problems.append(f"results[{i}] must be an object")
                continue
            for key, value in row.items():
                if not isinstance(value, _SCALAR):
                    problems.append(
                        f"results[{i}].{key} must be a JSON scalar, "
                        f"got {type(value).__name__}"
                    )
            for column in required_columns:
                if column not in row:
                    problems.append(f"results[{i}] missing column {column!r}")
    if "notes" in doc and not isinstance(doc["notes"], str):
        problems.append("notes must be a string")
    if problems:
        raise ValueError("invalid bench result: " + "; ".join(problems))
    return doc


def dump_result(doc: Mapping[str, object], path: Optional[str]) -> None:
    """Write *doc* as pretty JSON to *path* (or stdout when ``None``)."""
    text = json.dumps(doc, indent=2, sort_keys=False) + "\n"
    if path is None:
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
