"""Send-Time measurement and transport rigs.

Reproduces the paper's methodology: each reported point is the average
of repeated Send-Time samples (the paper used 100); the timed window
covers message preparation through the final ``send()`` (see
:class:`~repro.transport.timing.SendTimer`).  Mutating application
data between sends happens *outside* the timed window, matching the
paper's "starting a timer before preparing the message for sending".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import TransportError
from repro.transport.dummy_server import DummyServer
from repro.transport.http import HTTPTransport
from repro.transport.loopback import MemcpySink, NullSink
from repro.transport.tcp import TCPTransport
from repro.transport.timing import SendTimer

__all__ = ["time_loop", "adaptive_reps", "TransportRig", "Sample"]


@dataclass(slots=True)
class Sample:
    """One measured point."""

    label: str
    n: int
    reps: int
    mean_ms: float
    min_ms: float
    max_ms: float


def adaptive_reps(
    estimate_s: float,
    *,
    target_s: float = 0.6,
    min_reps: int = 3,
    max_reps: int = 100,
) -> int:
    """Repetitions so a point costs roughly *target_s* wall seconds."""
    if estimate_s <= 0:
        return max_reps
    return max(min_reps, min(max_reps, int(target_s / estimate_s)))


def time_loop(
    timed: Callable[[], object],
    *,
    setup: Optional[Callable[[], object]] = None,
    reps: Optional[int] = None,
    warmup: int = 1,
    target_s: float = 0.6,
    max_reps: int = 100,
) -> SendTimer:
    """Measure ``timed()`` *reps* times; *setup()* runs untimed before
    each sample (data mutation, template rebuild...).

    When *reps* is None it is chosen adaptively from a first probe.
    """
    for _ in range(warmup):
        if setup is not None:
            setup()
        timed()

    if reps is None:
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        timed()
        probe = time.perf_counter() - t0
        reps = adaptive_reps(probe, target_s=target_s, max_reps=max_reps)

    timer = SendTimer()
    for _ in range(reps):
        if setup is not None:
            setup()
        with timer:
            timed()
    return timer


class TransportRig:
    """Context manager building the requested transport stack.

    Kinds
    -----
    ``"null"``
        Discard sink — pure serialization cost.
    ``"memcpy"`` (default)
        Drain-copy sink — models the kernel send copy without socket
        noise; the most reproducible stand-in for the paper's setup.
    ``"tcp"``
        Real localhost TCP to an in-process dummy drain server with
        the paper's socket options (closest to the paper's rig).
    ``"http"`` / ``"http10"``
        HTTP/1.1 chunked (resp. HTTP/1.0 content-length) framing over
        the TCP transport.
    """

    KINDS = ("null", "memcpy", "tcp", "http", "http10")

    def __init__(self, kind: str = "memcpy") -> None:
        if kind not in self.KINDS:
            raise TransportError(f"unknown transport rig kind {kind!r}")
        self.kind = kind
        self.server: Optional[DummyServer] = None
        self.transport = None

    def __enter__(self):
        if self.kind == "null":
            self.transport = NullSink()
        elif self.kind == "memcpy":
            self.transport = MemcpySink()
        else:
            self.server = DummyServer().start()
            tcp = TCPTransport("127.0.0.1", self.server.port)
            if self.kind == "tcp":
                self.transport = tcp
            elif self.kind == "http":
                self.transport = HTTPTransport(tcp, mode="chunked")
            else:
                self.transport = HTTPTransport(tcp, mode="content-length")
        return self.transport

    def __exit__(self, *exc) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        if self.server is not None:
            self.server.stop()
            self.server = None
