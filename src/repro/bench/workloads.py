"""Workload generators with controlled serialized widths.

The paper's width studies depend on values of *exact* lexical sizes:
one-character doubles, 18-character doubles, 24-character (maximum)
doubles; 3/36/46-character MIOs; 1/11-character ints.  The generators
here use pattern construction plus rejection sampling against the real
formatter, so every produced value's :func:`format_double` /
:func:`format_int` output has exactly the requested length.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SchemaError
from repro.lexical.floats import DOUBLE_MAX_WIDTH, FloatFormat, format_double
from repro.lexical.integers import INT_MAX_WIDTH, format_int
from repro.schema.composite import ArrayType
from repro.schema.mio import MIO_TYPE, make_mio_array_type
from repro.schema.types import DOUBLE, INT
from repro.soap.message import Parameter, SOAPMessage

__all__ = [
    "PAPER_SIZES",
    "SERVICE_NS",
    "doubles_of_width",
    "ints_of_width",
    "mio_columns_of_widths",
    "random_doubles",
    "random_ints",
    "random_mio_columns",
    "double_array_message",
    "int_array_message",
    "mio_message",
    "MIO_MIN_SPLIT",
    "MIO_MAX_SPLIT",
    "MIO_INTERMEDIATE_SPLIT",
]

#: Array sizes used throughout the paper's §4 ("1, 100, 500, 1K, 10K,
#: 50K, and 100K").
PAPER_SIZES: Tuple[int, ...] = (1, 100, 500, 1000, 10000, 50000, 100000)

SERVICE_NS = "urn:bsoap:bench"

#: MIO component widths (x, y, v) summing to the paper's totals.
MIO_MIN_SPLIT = (1, 1, 1)  # 3-character MIO
MIO_INTERMEDIATE_SPLIT = (11, 11, 14)  # 36-character MIO (Fig. 8)
MIO_MAX_SPLIT = (11, 11, 24)  # 46-character MIO


def _candidates_double(width: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Raw candidate doubles aimed at a given lexical width."""
    if width < 1 or width > DOUBLE_MAX_WIDTH:
        raise SchemaError(f"double width {width} out of range 1..{DOUBLE_MAX_WIDTH}")
    if width == 1:
        return rng.integers(1, 10, k).astype(np.float64)
    if width == 2:
        # Two-char minimal doubles: negative single digits or 10..99.
        return rng.integers(10, 100, k).astype(np.float64)
    if width <= 18:
        # "0." + (width-2) digits, last digit nonzero.
        digits = width - 2
        frac = rng.integers(10 ** (digits - 1), 10**digits, k)
        frac = frac - (frac % 10 == 0)  # avoid trailing zero
        return frac.astype(np.float64) / (10.0**digits)
    # Long forms use scientific notation with a 3-digit exponent:
    # [-]d.<m digits>e-XYZ → total = sign + 2 + m + 5.
    sign = width >= 24  # only the 24-char form needs the minus sign
    m = width - 7 - (1 if sign else 0)
    lead = rng.integers(1, 10, k)
    mant = rng.integers(10 ** (m - 1), 10**m, k)
    mant = mant - (mant % 10 == 0)
    exp = rng.integers(120, 300, k)
    values = (lead + mant / (10.0**m)) * np.power(10.0, -exp)
    return -values if sign else values


def doubles_of_width(
    n: int, width: int, seed: int = 0, fmt: FloatFormat = FloatFormat.MINIMAL
) -> np.ndarray:
    """*n* doubles whose lexical form is exactly *width* characters."""
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=np.float64)
    filled = 0
    attempts = 0
    while filled < n:
        attempts += 1
        if attempts > 200:  # pragma: no cover - generator bug guard
            raise SchemaError(f"cannot generate width-{width} doubles")
        batch = _candidates_double(width, max(64, (n - filled) * 2), rng)
        for v in batch:
            if len(format_double(float(v), fmt)) == width:
                out[filled] = v
                filled += 1
                if filled == n:
                    break
    return out


def ints_of_width(n: int, width: int, seed: int = 0) -> np.ndarray:
    """*n* integers whose decimal form is exactly *width* characters."""
    if width < 1 or width > INT_MAX_WIDTH:
        raise SchemaError(f"int width {width} out of range 1..{INT_MAX_WIDTH}")
    rng = np.random.default_rng(seed)
    if width == INT_MAX_WIDTH:
        # "-" + 10 digits, within int32: -1000000000 .. -2147483647.
        values = -rng.integers(10**9, 2**31 - 1, n)
    else:
        values = rng.integers(10 ** (width - 1) if width > 1 else 1, 10**width, n)
    values = values.astype(np.int64)
    check = format_int(int(values[0]))
    if len(check) != width:  # pragma: no cover - generator bug guard
        raise SchemaError(f"int width generator produced {check!r} for width {width}")
    return values


def mio_columns_of_widths(
    n: int, split: Tuple[int, int, int], seed: int = 0
) -> Dict[str, np.ndarray]:
    """MIO columns whose (x, y, v) widths are exactly *split*."""
    xw, yw, vw = split
    return {
        "x": ints_of_width(n, xw, seed),
        "y": ints_of_width(n, yw, seed + 1),
        "v": doubles_of_width(n, vw, seed + 2),
    }


# ----------------------------------------------------------------------
# realistic (uncontrolled-width) workloads
# ----------------------------------------------------------------------
def random_doubles(n: int, seed: int = 0) -> np.ndarray:
    """Uniform [0, 1) doubles — realistic scientific payload."""
    return np.random.default_rng(seed).random(n)


def random_ints(n: int, seed: int = 0) -> np.ndarray:
    """Uniform 32-bit-ish integers."""
    return np.random.default_rng(seed).integers(-(2**31), 2**31, n)


def random_mio_columns(n: int, seed: int = 0) -> Dict[str, np.ndarray]:
    """Mesh coordinates + field values, realistic distributions."""
    rng = np.random.default_rng(seed)
    return {
        "x": rng.integers(0, 10000, n),
        "y": rng.integers(0, 10000, n),
        "v": rng.random(n),
    }


# ----------------------------------------------------------------------
# message builders
# ----------------------------------------------------------------------
def double_array_message(
    values: np.ndarray, operation: str = "sendDoubles"
) -> SOAPMessage:
    return SOAPMessage(
        operation, SERVICE_NS, [Parameter("data", ArrayType(DOUBLE), values)]
    )


def int_array_message(values: np.ndarray, operation: str = "sendInts") -> SOAPMessage:
    return SOAPMessage(
        operation, SERVICE_NS, [Parameter("data", ArrayType(INT), values)]
    )


def mio_message(
    columns: Dict[str, np.ndarray], operation: str = "sendMios"
) -> SOAPMessage:
    return SOAPMessage(
        operation, SERVICE_NS, [Parameter("mesh", make_mio_array_type(), columns)]
    )
