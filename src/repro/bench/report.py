"""Series formatting for the figure runner and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["Series", "format_series", "ratio", "format_ratios"]

#: label → [(array size, mean Send Time ms), ...]
Series = Dict[str, List[Tuple[int, float]]]


def format_series(title: str, series: Series) -> str:
    """Render a figure's curves as one aligned table (sizes as rows)."""
    sizes: List[int] = sorted({n for points in series.values() for n, _ in points})
    labels = list(series)
    by_label = {
        label: {n: ms for n, ms in points} for label, points in series.items()
    }
    width = max(12, *(len(l) for l in labels)) + 2
    lines = [title, "=" * len(title)]
    header = f"{'n':>8}" + "".join(f"{l:>{width}}" for l in labels)
    lines.append(header)
    for n in sizes:
        row = f"{n:>8}"
        for label in labels:
            ms = by_label[label].get(n)
            row += f"{ms:>{width}.4f}" if ms is not None else " " * (width - 1) + "-"
        lines.append(row)
    return "\n".join(lines)


def ratio(series: Series, numerator: str, denominator: str, n: int) -> float:
    """``numerator/denominator`` Send-Time ratio at size *n*."""
    num = dict(series[numerator])[n]
    den = dict(series[denominator])[n]
    return num / den


def format_ratios(
    series: Series, pairs: Sequence[Tuple[str, str]], sizes: Sequence[int]
) -> str:
    """Summarize speedup ratios (paper-style "N times faster" claims)."""
    lines = []
    for num, den in pairs:
        have = [
            n
            for n in sizes
            if n in dict(series.get(num, [])) and n in dict(series.get(den, []))
        ]
        if not have:
            continue
        rendered = ", ".join(f"n={n}: {ratio(series, num, den, n):.1f}x" for n in have)
        lines.append(f"{num} / {den}: {rendered}")
    return "\n".join(lines)
