"""ASCII log-log plots for figure series.

The paper's figures are log-log Send-Time curves; ``--plot`` on the
figure runner renders the same picture in the terminal so shapes
(orderings, crossovers, slopes) are visible without leaving the shell.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.bench.report import Series

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks covering [lo, hi]."""
    if lo <= 0:
        lo = hi / 1e6 if hi > 0 else 1e-6
    start = math.floor(math.log10(lo))
    end = math.ceil(math.log10(hi))
    return [10.0**e for e in range(start, end + 1)]


def ascii_plot(
    title: str,
    series: Series,
    *,
    width: int = 72,
    height: int = 22,
) -> str:
    """Render *series* as a log-log scatter/line chart.

    Zero or negative values are dropped (log scale).  Each curve gets
    a marker; overlapping points show the later curve's marker.
    """
    points_by_label: Dict[str, List[Tuple[float, float]]] = {
        label: [(float(n), float(ms)) for n, ms in pts if n > 0 and ms > 0]
        for label, pts in series.items()
    }
    points_by_label = {k: v for k, v in points_by_label.items() if v}
    if not points_by_label:
        return f"{title}\n(no positive data to plot)"

    xs = [x for pts in points_by_label.values() for x, _ in pts]
    ys = [y for pts in points_by_label.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_hi = x_lo * 10
    if y_lo == y_hi:
        y_hi = y_lo * 10

    lx_lo, lx_hi = math.log10(x_lo), math.log10(x_hi)
    ly_lo, ly_hi = math.log10(y_lo), math.log10(y_hi)

    def col(x: float) -> int:
        return round((math.log10(x) - lx_lo) / (lx_hi - lx_lo) * (width - 1))

    def row(y: float) -> int:
        frac = (math.log10(y) - ly_lo) / (ly_hi - ly_lo)
        return (height - 1) - round(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]

    # Light decade gridlines.
    for tick in _log_ticks(y_lo, y_hi):
        if y_lo <= tick <= y_hi:
            r = row(tick)
            for c in range(width):
                grid[r][c] = "·"
    for tick in _log_ticks(x_lo, x_hi):
        if x_lo <= tick <= x_hi:
            c = col(tick)
            for r in range(height):
                if grid[r][c] == " ":
                    grid[r][c] = "·"

    # Curves: draw straight segments between consecutive points.
    for index, (label, pts) in enumerate(points_by_label.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        pts = sorted(pts)
        cells = [(row(y), col(x)) for x, y in pts]
        for (r1, c1), (r2, c2) in zip(cells, cells[1:]):
            steps = max(abs(r2 - r1), abs(c2 - c1), 1)
            for s in range(steps + 1):
                r = round(r1 + (r2 - r1) * s / steps)
                c = round(c1 + (c2 - c1) * s / steps)
                grid[r][c] = marker
        for r, c in cells:
            grid[r][c] = marker

    # Assemble with a y-axis gutter.
    lines = [title, "=" * min(len(title), width)]
    gutter = 11
    for r in range(height):
        # Label rows holding decade ticks.
        label = ""
        for tick in _log_ticks(y_lo, y_hi):
            if y_lo <= tick <= y_hi and row(tick) == r:
                label = f"{tick:.3g} ms"
                break
        lines.append(f"{label:>{gutter}} |" + "".join(grid[r]))
    lines.append(" " * gutter + " +" + "-" * width)
    tick_line = [" "] * width
    for tick in _log_ticks(x_lo, x_hi):
        if x_lo <= tick <= x_hi:
            c = col(tick)
            text = f"{tick:.3g}"
            for i, ch in enumerate(text):
                if c + i < width:
                    tick_line[c + i] = ch
    lines.append(" " * gutter + "  " + "".join(tick_line) + "  (array size)")
    lines.append("")
    for index, label in enumerate(points_by_label):
        lines.append(f"  {_MARKERS[index % len(_MARKERS)]}  {label}")
    return "\n".join(lines)
