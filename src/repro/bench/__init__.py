"""Benchmark harness: workloads, measurement, per-figure experiments.

The paper's evaluation (§4) is reproduced figure by figure:

* :mod:`repro.bench.workloads` — arrays of ints/doubles/MIOs with
  *controlled serialized widths* (the studies depend on values being
  exactly 1/18/24 characters etc.),
* :mod:`repro.bench.runner` — Send-Time measurement (averages over
  repetitions, per the paper's 100-sample methodology) and transport
  rigs (memcpy sink / TCP to a dummy server / HTTP framing),
* :mod:`repro.bench.figures` — one experiment function per paper
  figure, runnable via ``python -m repro.bench.figures``,
* :mod:`repro.bench.report` — series/ratio pretty-printing,
* :mod:`repro.bench.profile90` — the §2 cost-decomposition experiment
  (conversion ≈ 90% of serialization).
"""

from repro.bench.workloads import (
    PAPER_SIZES,
    SERVICE_NS,
    double_array_message,
    doubles_of_width,
    int_array_message,
    ints_of_width,
    mio_columns_of_widths,
    mio_message,
    random_doubles,
    random_ints,
    random_mio_columns,
)
from repro.bench.runner import TransportRig, adaptive_reps, time_loop
from repro.bench.report import Series, format_series, ratio

__all__ = [
    "PAPER_SIZES",
    "SERVICE_NS",
    "doubles_of_width",
    "ints_of_width",
    "mio_columns_of_widths",
    "random_doubles",
    "random_ints",
    "random_mio_columns",
    "double_array_message",
    "int_array_message",
    "mio_message",
    "TransportRig",
    "time_loop",
    "adaptive_reps",
    "Series",
    "format_series",
    "ratio",
]
