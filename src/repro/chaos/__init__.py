"""Deterministic chaos soak for the overload-hardened serving stack.

Where :mod:`repro.resilience.faults` injects faults *inside* one
client's transport and :mod:`repro.hardening.fuzz` throws malformed
bytes at an in-process service, this package attacks the **whole
deployed shape**: a real :class:`~repro.server.service.HTTPSoapServer`
(admission control + memory-budgeted session state) serving a fleet of
real :class:`~repro.channel.RPCChannel` clients over real sockets,
while a seeded coordinator injects connection drops, slow-loris drips,
partial writes, stalls, session kills, and memory-pressure pulses
(:mod:`repro.chaos.faults`), and checks after every phase that the
stack kept its promises (:mod:`repro.chaos.harness`).

Run it::

    PYTHONPATH=src python -m repro.chaos --seed 12345

Everything — worker payloads, fault schedules, retry jitter — derives
from the seed, so a failing soak replays exactly.  See
``docs/overload.md`` for the degradation ladder the soak exercises.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    ghost_announce,
    inject_partial_write,
    inject_slowloris,
    inject_stall,
    kill_one_session,
)
from repro.chaos.harness import (
    PHASES,
    ChaosConfig,
    ChaosReport,
    PhaseReport,
    run_chaos,
)

__all__ = [
    "FAULT_KINDS",
    "PHASES",
    "ChaosConfig",
    "ChaosReport",
    "PhaseReport",
    "run_chaos",
    "ghost_announce",
    "inject_partial_write",
    "inject_slowloris",
    "inject_stall",
    "kill_one_session",
]
