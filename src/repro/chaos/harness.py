"""The chaos soak: a real server, a real fleet, a seeded fault diet.

One :func:`run_chaos` drives a live
:class:`~repro.server.service.HTTPSoapServer` (admission control on,
delta + skip-scan enabled, a deliberately small state budget) with a
fleet of :class:`~repro.channel.RPCChannel` workers pinned across all
four match levels, while a coordinator injects the fault schedule from
:mod:`repro.chaos.faults` phase by phase:

``baseline → network → session-kill → pressure → recovery``

After each phase the fleet quiesces and the invariants are checked:

* **correctness** — every completed call returned the exact checksum
  of the array it sent; failures are only the *allowed* kinds (503
  with Retry-After, 408, connection resets, resyncs that outlived the
  retry budget).  A wrong answer is a violation, no matter the chaos.
* **reconciliation** — the metrics registry and the session manager's
  ``merged_counters`` were incremented at the same sites, so their
  totals must agree exactly; admission metrics must agree with the
  controller's own counters; the server must have handled at least as
  many requests as clients saw succeed.
* **no poisoned state** — a pristine probe channel gets a correct
  answer after every phase (all four levels in the final phase).
* **memory** — once idle, accounted state is back under the budget.
* **degradation → recovery** — by the end of the soak every shed tier
  (mirror, seek table, session) has fired at least once, and calls
  kept succeeding afterwards (the recovery phase is all-green).

Everything derives from one seed; see ``python -m repro.chaos --help``.
"""

from __future__ import annotations

import dataclasses
import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.naive import NaiveClient
from repro.chaos.faults import (
    ghost_announce,
    inject_partial_write,
    inject_slowloris,
    inject_stall,
    kill_one_session,
)
from repro.core.policy import DeltaPolicy
from repro.errors import (
    DeltaResyncError,
    HTTPStatusError,
    SOAPFaultError,
    TransportError,
)
from repro.hardening.limits import ResourceLimits
from repro.hardening.overload import SHED_TIERS, AdmissionController, OverloadPolicy
from repro.obs import Observability
from repro.resilience.budget import RetryBudget
from repro.resilience.retry import RetryPolicy
from repro.runtime.loadgen import (
    MATCH_LEVELS,
    build_service,
    level_policy,
    message_sequence,
)
from repro.channel import RPCChannel
from repro.transport.loopback import CollectSink

__all__ = ["ChaosConfig", "PhaseReport", "ChaosReport", "run_chaos", "PHASES"]

#: Phase order; each phase's fault diet is documented in the module
#: docstring and implemented in :func:`_run_phase`.
PHASES = ("baseline", "network", "session-kill", "pressure", "recovery")

#: HTTP statuses a client may legitimately see under chaos (everything
#: else surfacing from a call is a violation).
_ALLOWED_STATUSES = frozenset({408, 409, 503})


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one soak (defaults = the CI acceptance run)."""

    seed: int = 12345
    #: Worker channels; spread round-robin across the four match levels.
    clients: int = 8
    #: Calls per worker per phase (5 phases × clients × this = total).
    calls_per_phase: int = 26
    #: Doubles per worker request array.
    array_n: int = 64
    #: Per-call service time on the server (ms).
    delay_ms: float = 0.0
    #: State budget — small on purpose, so the pressure phase can blow
    #: it with a handful of ghost announces.
    budget_bytes: int = 384 * 1024
    #: Ghost announce documents per pressure pulse and their array
    #: size; sized so ghost deserializer+response state alone exceeds
    #: the budget (forcing the ladder past mirrors and seek tables
    #: into whole-session sheds).
    ghost_docs: int = 16
    ghost_n: int = 768
    #: Server read deadline (slow-loris must resolve quickly).
    read_deadline: float = 0.9
    #: Admission gates — tight enough that the fleet sees real 503s.
    max_concurrent_requests: int = 4
    max_queue_depth: int = 4
    queue_timeout: float = 0.1
    #: Client retry ceiling (Retry-After hints clamp to this).
    client_max_delay: float = 0.3
    #: Front end under test: ``"threaded"`` (thread per connection) or
    #: ``"async"`` (the event-loop server) — the whole fault diet must
    #: resolve identically on both.
    server: str = "threaded"

    def total_calls(self) -> int:
        return len(PHASES) * self.clients * self.calls_per_phase


@dataclass
class PhaseReport:
    """Outcome of one phase, fleet-wide."""

    name: str
    calls_ok: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    duration_s: float = 0.0
    sheds: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        err = sum(self.errors.values())
        shed = (
            " sheds=" + ",".join(f"{t}:{n}" for t, n in self.sheds.items())
            if self.sheds
            else ""
        )
        return (
            f"phase {self.name:12s} ok={self.calls_ok:4d} "
            f"allowed-errors={err:3d} violations={len(self.violations)}"
            f"{shed} ({self.duration_s:.1f}s)"
        )


@dataclass
class ChaosReport:
    """Whole-soak outcome: per-phase reports + final counters."""

    seed: int
    phases: List[PhaseReport] = field(default_factory=list)
    counters: Dict[str, object] = field(default_factory=dict)

    @property
    def violations(self) -> List[str]:
        return [v for p in self.phases for v in p.violations]

    @property
    def calls_ok(self) -> int:
        return sum(p.calls_ok for p in self.phases)

    def summary(self) -> str:
        lines = [f"chaos seed {self.seed}: {self.calls_ok} calls ok"]
        lines += [p.summary() for p in self.phases]
        sheds = {
            t: self.counters.get(f"sheds_{t}", 0) for t in SHED_TIERS
        }
        lines.append(
            "tiers exercised: "
            + ", ".join(f"{t}={n}" for t, n in sheds.items())
        )
        return "\n".join(lines)


class _Worker:
    """One fleet member: a channel pinned to a match level."""

    def __init__(
        self,
        index: int,
        config: ChaosConfig,
        host: str,
        port: int,
        retry_budget: RetryBudget,
    ) -> None:
        self.index = index
        self.level = MATCH_LEVELS[index % len(MATCH_LEVELS)]
        self.config = config
        self.rng = random.Random(config.seed * 7919 + index)
        policy = level_policy(self.level)
        if index % 2 == 0:
            # Half the fleet negotiates binary delta frames, so mirror
            # sheds and 409 resyncs happen against real traffic.
            policy = dataclasses.replace(policy, delta=DeltaPolicy(offer=True))
        self.channel = RPCChannel(
            host,
            port,
            policy=policy,
            retry=RetryPolicy(
                max_attempts=4,
                base_delay=0.01,
                max_delay=config.client_max_delay,
                seed=config.seed + index,
            ),
            budget=retry_budget,
        )
        self._seq = 0

    def run_phase(self, phase: str, report: PhaseReport, lock: threading.Lock) -> None:
        config = self.config
        messages = message_sequence(
            self.level,
            config.array_n,
            config.calls_per_phase,
            seed=config.seed + self.index * 1000 + self._seq,
        )
        self._seq += 1
        ok = 0
        errors: Dict[str, int] = {}
        violations: List[str] = []
        for message in messages:
            if phase == "network" and self.rng.random() < 0.10:
                # Client-side connection drop: redial + quarantine.
                self.channel._raw.disconnect()
            expected = float(np.sum(message.params[0].value))
            try:
                response = self.channel.call(message)
            except SOAPFaultError as exc:
                violations.append(
                    f"[{phase}] worker {self.index} ({self.level}): "
                    f"server faulted on valid input: {exc}"
                )
                continue
            except HTTPStatusError as exc:
                if exc.status in _ALLOWED_STATUSES:
                    key = f"http-{exc.status}"
                    errors[key] = errors.get(key, 0) + 1
                else:
                    violations.append(
                        f"[{phase}] worker {self.index}: unexpected "
                        f"status {exc.status}"
                    )
                continue
            except (DeltaResyncError, TransportError) as exc:
                key = type(exc).__name__
                errors[key] = errors.get(key, 0) + 1
                continue
            except Exception as exc:  # noqa: BLE001 - the invariant
                violations.append(
                    f"[{phase}] worker {self.index}: {type(exc).__name__}: {exc}"
                )
                continue
            got = response.values.get("return")
            if not isinstance(got, float) or not math.isclose(
                got, expected, rel_tol=1e-9, abs_tol=1e-6
            ):
                violations.append(
                    f"[{phase}] worker {self.index} ({self.level}): "
                    f"checksum {got!r} != expected {expected!r}"
                )
                continue
            ok += 1
        with lock:
            report.calls_ok += ok
            for key, count in errors.items():
                report.errors[key] = report.errors.get(key, 0) + count
            report.violations.extend(violations)

    def close(self) -> None:
        try:
            self.channel.close()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass


def _ghost_body(config: ChaosConfig) -> bytes:
    """A valid full-XML checksum request sized for pressure pulses."""
    sink = CollectSink()
    client = NaiveClient(sink)
    message = message_sequence("content", config.ghost_n, 1, seed=config.seed)[0]
    client.send(message)
    return sink.last


def _probe(host: str, port: int, config: ChaosConfig, levels) -> List[str]:
    """Pristine-channel probes: correct answers or the state is poisoned."""
    problems: List[str] = []
    for level in levels:
        message = message_sequence(level, 16, 1, seed=config.seed + 99)[0]
        expected = float(np.sum(message.params[0].value))
        try:
            channel = RPCChannel(
                host,
                port,
                policy=level_policy(level),
                retry=RetryPolicy(
                    max_attempts=6,
                    base_delay=0.02,
                    max_delay=config.client_max_delay,
                    seed=config.seed,
                ),
            )
        except TransportError as exc:
            problems.append(f"probe({level}): cannot connect: {exc}")
            continue
        try:
            response = channel.call(message)
            got = response.values.get("return")
            if not isinstance(got, float) or not math.isclose(
                got, expected, rel_tol=1e-9, abs_tol=1e-6
            ):
                problems.append(
                    f"probe({level}): checksum {got!r} != {expected!r}"
                )
        except Exception as exc:  # noqa: BLE001 - probes must succeed
            problems.append(f"probe({level}): {type(exc).__name__}: {exc}")
        finally:
            channel.close()
    return problems


def _counter_value(obs: Observability, name: str, **labels) -> float:
    metrics = obs.metrics
    if metrics is None:
        return 0.0
    metric = metrics.get(name)
    if metric is None:
        return 0.0
    return float(metric.value(**labels))


def _check_invariants(
    phase: str,
    report: PhaseReport,
    service,
    admission: AdmissionController,
    host: str,
    port: int,
    config: ChaosConfig,
    fleet_ok_total: int,
) -> None:
    """Post-quiesce invariants (see module docstring)."""
    # Memory: after an explicit relief pass over an idle registry,
    # accounted state must fit the budget.
    service.sessions.relieve_pressure()
    accountant = service.accountant
    usage = accountant.usage_bytes
    if usage > accountant.budget_bytes:
        report.violations.append(
            f"[{phase}] state {usage}B over budget "
            f"{accountant.budget_bytes}B after idle relief"
        )

    # Reconciliation: metrics vs merged_counters, same increment sites.
    merged = service.sessions.merged_counters()
    obs = service.obs
    pairs = (
        ("repro_requests_handled_total", {}, merged["requests_handled"]),
        ("repro_faults_returned_total", {}, merged["faults_returned"]),
        (
            "repro_admission_total",
            {"outcome": "admitted"},
            admission.admitted,
        ),
    )
    for name, labels, expected in pairs:
        got = _counter_value(obs, name, **labels)
        if int(got) != int(expected):
            report.violations.append(
                f"[{phase}] metric {name}{labels or ''} = {int(got)} but "
                f"counter says {int(expected)}"
            )
    for gate, count in admission.counters().items():
        if not gate.startswith("rejected_"):
            continue
        outcome = "rejected-" + gate[len("rejected_") :]
        got = _counter_value(obs, "repro_admission_total", outcome=outcome)
        if int(got) != int(count):
            report.violations.append(
                f"[{phase}] repro_admission_total{{{outcome}}} = {int(got)} "
                f"but controller says {count}"
            )
    for tier in SHED_TIERS:
        got = _counter_value(obs, "repro_overload_events_total", tier=tier)
        if int(got) != int(accountant.sheds.get(tier, 0)):
            report.violations.append(
                f"[{phase}] repro_overload_events_total{{{tier}}} = "
                f"{int(got)} but accountant says {accountant.sheds.get(tier)}"
            )
    # The server cannot have answered fewer requests than clients saw
    # succeed (lost responses make it strictly greater, never less).
    if merged["requests_handled"] < fleet_ok_total:
        report.violations.append(
            f"[{phase}] server handled {merged['requests_handled']} < "
            f"{fleet_ok_total} client-observed successes"
        )

    # Poisoned-state probe: every phase gets a content probe, the
    # final phase all four levels.
    levels = MATCH_LEVELS if phase == PHASES[-1] else ("content",)
    report.violations.extend(
        f"[{phase}] {p}" for p in _probe(host, port, config, levels)
    )
    report.sheds = {
        t: int(accountant.sheds.get(t, 0)) for t in SHED_TIERS
    }


def run_chaos(config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run the full soak; see the module docstring for the contract."""
    config = config or ChaosConfig()
    obs = Observability.metrics_only()
    limits = ResourceLimits(
        max_state_bytes=config.budget_bytes,
        read_deadline=config.read_deadline,
    )
    admission = AdmissionController(
        OverloadPolicy(
            max_concurrent_requests=config.max_concurrent_requests,
            max_queue_depth=config.max_queue_depth,
            queue_timeout=config.queue_timeout,
        ),
        obs=obs,
    )
    service = build_service(
        config.delay_ms, limits=limits, admission=admission, obs=obs
    )
    from repro.server.async_server import make_server

    server = make_server(service, server=config.server).start()
    report = ChaosReport(seed=config.seed)
    coordinator_rng = random.Random(config.seed)
    retry_budget = RetryBudget(deposit_per_success=0.2, capacity=30.0)
    ghost_body = _ghost_body(config)
    workers: List[_Worker] = []
    try:
        workers = [
            _Worker(i, config, server.host, server.port, retry_budget)
            for i in range(config.clients)
        ]
        fleet_ok = 0
        for phase in PHASES:
            phase_report = PhaseReport(name=phase)
            started = time.monotonic()
            _run_phase(
                phase,
                phase_report,
                workers,
                service,
                server,
                config,
                coordinator_rng,
                ghost_body,
            )
            phase_report.duration_s = time.monotonic() - started
            fleet_ok += phase_report.calls_ok
            _check_invariants(
                phase,
                phase_report,
                service,
                admission,
                server.host,
                server.port,
                config,
                fleet_ok,
            )
            report.phases.append(phase_report)
        # Degradation → recovery: the soak must have pushed every tier
        # at least once, and the recovery phase proves service after.
        final = report.phases[-1]
        for tier in SHED_TIERS:
            if service.accountant.sheds.get(tier, 0) < 1:
                final.violations.append(
                    f"[recovery] shed tier {tier!r} never exercised"
                )
        report.counters = {
            **service.sessions.merged_counters(),
            **admission.counters(),
            **retry_budget.counters(),
        }
    finally:
        for worker in workers:
            worker.close()
        server.stop()
    return report


def _run_phase(
    phase: str,
    report: PhaseReport,
    workers: List[_Worker],
    service,
    server,  # HTTPSoapServer | AsyncHTTPSoapServer
    config: ChaosConfig,
    rng: random.Random,
    ghost_body: bytes,
) -> None:
    """Run the fleet for one phase with its fault diet active."""
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=worker.run_phase,
            args=(phase, report, lock),
            name=f"chaos-w{worker.index}",
            daemon=True,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()

    if phase == "network":
        # Interleave socket abuse with live traffic.
        for kind in ("slowloris", "partial-write", "stall", "partial-write"):
            if kind == "slowloris":
                inject_slowloris(
                    server.host,
                    server.port,
                    read_deadline=config.read_deadline,
                    rng=rng,
                )
            elif kind == "partial-write":
                inject_partial_write(server.host, server.port, rng=rng)
            else:
                inject_stall(server.host, server.port)
    elif phase == "session-kill":
        deadline = time.monotonic() + 10.0
        kills = 0
        while any(t.is_alive() for t in threads):
            if time.monotonic() > deadline:
                break
            if kill_one_session(service, rng) is not None:
                kills += 1
            time.sleep(0.005)
        report.errors["sessions-killed"] = kills
    elif phase == "pressure":
        # Two pulses: mid-traffic and once more near the end, so sheds
        # race live requests and idle relief both.
        for pulse in range(2):
            for j in range(config.ghost_docs):
                status = ghost_announce(
                    service,
                    ghost_body,
                    session_id=f"ghost-{pulse}-{j}",
                    template_id=j,
                )
                if status != 200:
                    report.violations.append(
                        f"[pressure] ghost announce answered {status}"
                    )
            time.sleep(0.05)

    for thread in threads:
        thread.join(timeout=120.0)
        if thread.is_alive():
            report.violations.append(
                f"[{phase}] worker thread {thread.name} hung"
            )
