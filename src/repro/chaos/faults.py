"""Deterministic fault injectors for the chaos soak.

Each injector perturbs exactly one thing the serving stack claims to
survive, and each maps to a documented recovery path
(``docs/failure_model.md``, ``docs/overload.md``):

===============  ====================================================
fault            expected recovery
===============  ====================================================
drop             client redials; quarantined templates force a full
                 resynchronizing resend (server: fresh session)
slowloris        server answers 408 within ``read_deadline`` and
                 reclaims the connection slot
partial-write    server answers 400 (peer EOF mid-request); nothing
                 else on the server is affected
stall            connect-then-nothing; the slot is reclaimed by the
                 read deadline, no session state was created
kill-session     server session vanishes between two requests on a
                 live connection → next delta frame answers 409
                 resync, next plain request pays a first-time parse
pressure         ghost sessions blow the state budget → the tier
                 ladder sheds mirrors, seek tables, then whole
                 sessions; traffic keeps being answered throughout
===============  ====================================================

Socket injectors talk to a real listening server and *always* read the
answer (or EOF): the point is that the server stays polite under abuse,
which can only be observed by finishing the conversation.  Everything
is parameterized by a :class:`random.Random` owned by the caller, so a
seeded harness replays the same schedule.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Optional

__all__ = [
    "FAULT_KINDS",
    "inject_slowloris",
    "inject_partial_write",
    "inject_stall",
    "kill_one_session",
    "ghost_announce",
]

FAULT_KINDS = (
    "drop",
    "slowloris",
    "partial-write",
    "stall",
    "kill-session",
    "pressure",
)

#: Prefix of a legitimate POST — what the partial-write and slow-loris
#: injectors dribble before misbehaving.
_REQUEST_PREFIX = (
    b"POST /soap HTTP/1.1\r\n"
    b"Host: chaos\r\n"
    b"Content-Type: text/xml\r\n"
    b"Content-Length: 4096\r\n"
)


def _read_answer(sock: socket.socket, timeout: float) -> Optional[int]:
    """Read whatever the server answers; return the status (or None).

    None means the server closed without a response — for a connection
    that never delivered a complete request *before its deadline*,
    that is acceptable only as EOF after a rejection was attempted;
    callers treat None as "no answer observed" and judge accordingly.
    """
    sock.settimeout(timeout)
    data = b""
    try:
        while b"\r\n" not in data and len(data) < 1024:
            chunk = sock.recv(1024)
            if not chunk:
                break
            data += chunk
    except (socket.timeout, OSError):
        pass
    if data.startswith(b"HTTP/1.1 ") and len(data) >= 12:
        try:
            return int(data[9:12])
        except ValueError:
            return None
    return None


def inject_slowloris(
    host: str, port: int, *, read_deadline: float, rng: random.Random
) -> Optional[int]:
    """Dribble header bytes slower than the read deadline allows.

    Returns the status the server answered (expected: 408), or None if
    it closed the drip without one.
    """
    with socket.create_connection((host, port), timeout=read_deadline + 2) as sock:
        dribble = _REQUEST_PREFIX[: rng.randint(8, len(_REQUEST_PREFIX) - 1)]
        step = max(1, len(dribble) // 6)
        deadline = time.monotonic() + read_deadline + 1.5
        sent = 0
        try:
            while sent < len(dribble) and time.monotonic() < deadline:
                sock.sendall(dribble[sent : sent + step])
                sent += step
                time.sleep(min(0.35, read_deadline / 3))
        except OSError:
            pass  # server already gave up on us — exactly the point
        return _read_answer(sock, read_deadline + 1.5)


def inject_partial_write(
    host: str, port: int, *, rng: random.Random, timeout: float = 2.0
) -> Optional[int]:
    """Send a truncated request then shut down the write side.

    Returns the status the server answered (expected: 400).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        body = _REQUEST_PREFIX + b"\r\n" + b"<truncated"
        cut = rng.randint(len(_REQUEST_PREFIX) + 2, len(body))
        sock.sendall(body[:cut])
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        return _read_answer(sock, timeout)


def inject_stall(host: str, port: int, *, timeout: float = 0.2) -> None:
    """Connect, say nothing, hang up — a slot-wasting no-op client."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            time.sleep(timeout / 2)
    except OSError:
        pass


def kill_one_session(service, rng: random.Random) -> Optional[object]:
    """Close one random live, non-default server session.

    Models eviction racing a live connection: the connection's *next*
    request finds its session gone and must recover (409 resync for a
    delta frame, first-time full parse otherwise).  Returns the killed
    key, or None when only the default session is live.
    """
    keys = [
        s.key
        for s in service.sessions.sessions()
        if not s.pinned and s.in_use == 0
    ]
    if not keys:
        return None
    key = keys[rng.randrange(len(keys))]
    service.sessions.close_session(key)
    return key


def ghost_announce(
    service, body: bytes, *, session_id: str, template_id: int
) -> int:
    """Deposit *body* as a delta mirror on a synthetic ghost session.

    Drives the real ``handle_wire`` announce path, so the ghost session
    accrues every state component a genuine client creates (mirror,
    deserializer template, seek table, response template) — the
    memory-pressure pulse is made of exactly the state the shed ladder
    exists for.  Returns the HTTP status (200 for a valid body).
    """
    status, _extra, _resp = service.handle_wire(
        body,
        {
            "x-repro-delta": "1",
            "x-repro-delta-template": str(template_id),
            "x-repro-delta-epoch": "0",
        },
        session_id,
    )
    return status
