"""CLI for the chaos soak: ``python -m repro.chaos [--seed N] ...``.

Exit status 0 = every invariant held through every phase; 1 = at least
one violation (all printed).  CI runs a fixed-seed smoke on every push
and a randomized longer soak in the slow job.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.chaos.harness import ChaosConfig, run_chaos

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded chaos soak against the live serving stack.",
    )
    defaults = ChaosConfig()
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--clients", type=int, default=defaults.clients,
        help="worker channels, spread across the four match levels",
    )
    parser.add_argument(
        "--calls-per-phase", type=int, default=defaults.calls_per_phase,
        help="calls per worker per phase (5 phases)",
    )
    parser.add_argument("--array-n", type=int, default=defaults.array_n)
    parser.add_argument("--delay-ms", type=float, default=defaults.delay_ms)
    parser.add_argument(
        "--budget-bytes", type=int, default=defaults.budget_bytes,
        help="server state budget (small = pressure phase bites)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=defaults.max_concurrent_requests,
    )
    parser.add_argument(
        "--queue-depth", type=int, default=defaults.max_queue_depth,
    )
    parser.add_argument(
        "--server", choices=("threaded", "async"), default=defaults.server,
        help="front end under test (the fault diet must resolve on both)",
    )
    args = parser.parse_args(argv)

    config = ChaosConfig(
        seed=args.seed,
        clients=args.clients,
        calls_per_phase=args.calls_per_phase,
        array_n=args.array_n,
        delay_ms=args.delay_ms,
        budget_bytes=args.budget_bytes,
        max_concurrent_requests=args.max_concurrent,
        max_queue_depth=args.queue_depth,
        server=args.server,
    )
    print(
        f"chaos soak: seed={config.seed} clients={config.clients} "
        f"server={config.server} "
        f"total-calls={config.total_calls()} budget={config.budget_bytes}B"
    )
    report = run_chaos(config)
    print(report.summary())
    violations = report.violations
    if violations:
        print(f"\n{len(violations)} violation(s):")
        for violation in violations[:25]:
            print(f"  - {violation}")
        if len(violations) > 25:
            print(f"  ... and {len(violations) - 25} more")
        return 1
    print("all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
