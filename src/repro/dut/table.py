"""The DUT table: NumPy structure-of-arrays over template entries.

Each entry corresponds to one serialized leaf value and carries the
paper's five fields (§3.1):

* ``type``   — index into :data:`repro.schema.types.PRIMITIVES`
  ("a pointer to a data structure that contains information about the
  data item's type, including the maximum size of its serialized
  form"),
* ``dirty``  — changed since last written into the message,
* location  — ``(chunk_id, value_off)``, a direct pointer into the
  serialized form (constant-time lookup),
* ``ser_len`` — characters currently used by the value,
* ``field_width`` — characters allocated to the value
  (``ser_len ≤ field_width`` always).

Entries are stored in document order, which gives two structural
facts the fix-up math exploits: entries of one chunk occupy a
contiguous index range, and ``value_off`` is strictly increasing
within that range.  A shift therefore updates one contiguous NumPy
slice found by binary search instead of scanning the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.buffers.chunked import GapResult
from repro.errors import DUTError

__all__ = ["DUTTableBuilder", "DUTTable", "DUTEntryView"]


@dataclass(frozen=True, slots=True)
class DUTEntryView:
    """A read-only snapshot of one DUT entry (tests/debugging)."""

    index: int
    chunk_id: int
    value_off: int
    ser_len: int
    field_width: int
    type_id: int
    close_len: int
    dirty: bool

    @property
    def slack(self) -> int:
        """Whitespace pad currently available in the field."""
        return self.field_width - self.ser_len

    @property
    def region_end_offset(self) -> int:
        """One past the field region: value + close tag + pad."""
        return self.value_off + self.field_width + self.close_len


class DUTTableBuilder:
    """Accumulates entries during initial serialization; then freezes."""

    def __init__(self) -> None:
        self._chunk_id: List[int] = []
        self._value_off: List[int] = []
        self._ser_len: List[int] = []
        self._field_width: List[int] = []
        self._type_id: List[int] = []
        self._close_len: List[int] = []

    def add(
        self,
        chunk_id: int,
        value_off: int,
        ser_len: int,
        field_width: int,
        type_id: int,
        close_len: int,
    ) -> int:
        """Append one entry; returns its index."""
        if ser_len > field_width:
            raise DUTError(
                f"ser_len {ser_len} exceeds field_width {field_width} at entry "
                f"{len(self._chunk_id)}"
            )
        self._chunk_id.append(chunk_id)
        self._value_off.append(value_off)
        self._ser_len.append(ser_len)
        self._field_width.append(field_width)
        self._type_id.append(type_id)
        self._close_len.append(close_len)
        return len(self._chunk_id) - 1

    def add_batch(
        self,
        chunk_id: int,
        value_offs: List[int],
        ser_lens: List[int],
        field_widths: List[int],
        type_id: int,
        close_len: int,
    ) -> None:
        """Bulk-append entries sharing one chunk, type, and close tag.

        This is the template builder's hot path: one extend per column
        instead of one :meth:`add` call per array item.
        """
        n = len(value_offs)
        if not (len(ser_lens) == len(field_widths) == n):
            raise DUTError("add_batch column lengths differ")
        self._chunk_id.extend([chunk_id] * n)
        self._value_off.extend(value_offs)
        self._ser_len.extend(ser_lens)
        self._field_width.extend(field_widths)
        self._type_id.extend([type_id] * n)
        self._close_len.extend([close_len] * n)

    def add_batch_mixed(
        self,
        chunk_id: int,
        value_offs: List[int],
        ser_lens: List[int],
        field_widths: List[int],
        type_ids: List[int],
        close_lens: List[int],
    ) -> None:
        """Bulk-append entries sharing one chunk but mixed leaf types
        (struct arrays)."""
        n = len(value_offs)
        self._chunk_id.extend([chunk_id] * n)
        self._value_off.extend(value_offs)
        self._ser_len.extend(ser_lens)
        self._field_width.extend(field_widths)
        self._type_id.extend(type_ids)
        self._close_len.extend(close_lens)

    def __len__(self) -> int:
        return len(self._chunk_id)

    def freeze(self) -> "DUTTable":
        """Materialize the SoA columns (validates ser_len ≤ width)."""
        ser_len = np.asarray(self._ser_len, dtype=np.int32)
        field_width = np.asarray(self._field_width, dtype=np.int32)
        if bool((ser_len > field_width).any()):
            raise DUTError("freeze: some ser_len exceeds field_width")
        return DUTTable(
            chunk_id=np.asarray(self._chunk_id, dtype=np.int32),
            value_off=np.asarray(self._value_off, dtype=np.int64),
            ser_len=ser_len,
            field_width=field_width,
            type_id=np.asarray(self._type_id, dtype=np.int8),
            close_len=np.asarray(self._close_len, dtype=np.int16),
        )


class DUTTable:
    """Frozen structure-of-arrays DUT table (see module docstring)."""

    __slots__ = (
        "chunk_id",
        "value_off",
        "ser_len",
        "field_width",
        "type_id",
        "close_len",
        "dirty",
        "_ranges",
    )

    def __init__(
        self,
        chunk_id: np.ndarray,
        value_off: np.ndarray,
        ser_len: np.ndarray,
        field_width: np.ndarray,
        type_id: np.ndarray,
        close_len: np.ndarray,
    ) -> None:
        n = len(chunk_id)
        for name, col in (
            ("value_off", value_off),
            ("ser_len", ser_len),
            ("field_width", field_width),
            ("type_id", type_id),
            ("close_len", close_len),
        ):
            if len(col) != n:
                raise DUTError(f"column {name} length {len(col)} != {n}")
        self.chunk_id = chunk_id
        self.value_off = value_off
        self.ser_len = ser_len
        self.field_width = field_width
        self.type_id = type_id
        self.close_len = close_len
        self.dirty = np.zeros(n, dtype=bool)
        self._ranges: Dict[int, Tuple[int, int]] = {}
        self._rebuild_ranges()

    # ------------------------------------------------------------------
    # structure maintenance
    # ------------------------------------------------------------------
    def _rebuild_ranges(self) -> None:
        """Recompute the contiguous entry index range of each chunk.

        Vectorized: chunk transitions come from one ``diff`` over the
        id column instead of a Python scan (this runs on every
        template build).
        """
        self._ranges.clear()
        cids = self.chunk_id
        n = len(cids)
        if n == 0:
            return
        boundaries = np.flatnonzero(np.diff(cids)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        run_ids = cids[starts]
        for cid, lo, hi in zip(run_ids.tolist(), starts.tolist(), ends.tolist()):
            if cid in self._ranges:
                raise DUTError(
                    f"chunk {cid} entries are not contiguous in document order"
                )
            self._ranges[cid] = (lo, hi)

    def chunk_range(self, cid: int) -> Tuple[int, int]:
        """Entry index range ``[lo, hi)`` of chunk *cid* (may be empty)."""
        return self._ranges.get(cid, (0, 0))

    def first_at_or_after(self, cid: int, offset: int) -> int:
        """First entry index in chunk *cid* with ``value_off >= offset``.

        Returns the range's ``hi`` when none qualifies.
        """
        lo, hi = self.chunk_range(cid)
        if lo == hi:
            return hi
        return lo + int(np.searchsorted(self.value_off[lo:hi], offset, side="left"))

    # ------------------------------------------------------------------
    # gap fix-up
    # ------------------------------------------------------------------
    def apply_gap(self, result: GapResult) -> None:
        """Repair locations after :meth:`ChunkedBuffer.insert_gap`.

        The arithmetic mirrors :class:`~repro.buffers.chunked.GapResult`'s
        documented rules, restricted to the (contiguous) affected
        entries found by binary search.
        """
        if result.delta == 0:
            return
        cid = result.cid
        lo, hi = self.chunk_range(cid)
        if lo == hi:
            return

        if result.mode in ("inplace", "realloc"):
            j = self.first_at_or_after(cid, result.pos)
            if j < hi:
                self.value_off[j:hi] += result.delta
            return

        if result.mode != "split":  # pragma: no cover - defensive
            raise DUTError(f"unknown gap mode {result.mode!r}")
        if result.new_cid is None:
            raise DUTError("split gap result missing new_cid")

        start = self.first_at_or_after(cid, result.region_start)
        if start == hi:
            return
        mid = self.first_at_or_after(cid, result.pos)
        # Entries [start, hi) move to the new chunk, rebased to
        # region_start; those at/after pos additionally absorb delta.
        self.value_off[start:hi] -= result.region_start
        if mid < hi:
            self.value_off[mid:hi] += result.delta
        self.chunk_id[start:hi] = result.new_cid

        # Update ranges: old chunk keeps [lo, start), new chunk owns
        # [start, hi).  Other chunks are untouched (stable ids).
        if start == lo:
            del self._ranges[cid]
        else:
            self._ranges[cid] = (lo, start)
        self._ranges[result.new_cid] = (start, hi)

    # ------------------------------------------------------------------
    # dirty tracking
    # ------------------------------------------------------------------
    @property
    def any_dirty(self) -> bool:
        """Whether any entry needs re-serialization (content-match test)."""
        return bool(self.dirty.any())

    def dirty_indices(self, lo: int = 0, hi: Optional[int] = None) -> np.ndarray:
        """Indices of dirty entries within ``[lo, hi)``."""
        hi = len(self.dirty) if hi is None else hi
        return lo + np.flatnonzero(self.dirty[lo:hi])

    def mark_all_dirty(self) -> None:
        self.dirty[:] = True

    def clear_dirty(self, lo: int = 0, hi: Optional[int] = None) -> None:
        hi = len(self.dirty) if hi is None else hi
        self.dirty[lo:hi] = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.chunk_id)

    def entry(self, i: int) -> DUTEntryView:
        """Snapshot of entry *i*."""
        if not (0 <= i < len(self.chunk_id)):
            raise DUTError(f"entry index {i} out of range")
        return DUTEntryView(
            index=i,
            chunk_id=int(self.chunk_id[i]),
            value_off=int(self.value_off[i]),
            ser_len=int(self.ser_len[i]),
            field_width=int(self.field_width[i]),
            type_id=int(self.type_id[i]),
            close_len=int(self.close_len[i]),
            dirty=bool(self.dirty[i]),
        )

    def iter_entries(self) -> Iterator[DUTEntryView]:
        for i in range(len(self.chunk_id)):
            yield self.entry(i)

    @property
    def total_slack(self) -> int:
        """Whitespace currently stuffed across all fields."""
        return int((self.field_width - self.ser_len).sum())

    def validate(self) -> None:
        """Check the structural invariants (used by tests).

        * ``ser_len ≤ field_width`` everywhere,
        * entries of a chunk contiguous, offsets strictly increasing,
        * field regions within one chunk do not overlap.
        """
        if (self.ser_len > self.field_width).any():
            bad = int(np.flatnonzero(self.ser_len > self.field_width)[0])
            raise DUTError(f"entry {bad}: ser_len exceeds field_width")
        for cid, (lo, hi) in self._ranges.items():
            offs = self.value_off[lo:hi]
            if len(offs) > 1 and not (np.diff(offs) > 0).all():
                raise DUTError(f"chunk {cid}: value offsets not increasing")
            region_end = (
                self.value_off[lo:hi]
                + self.field_width[lo:hi]
                + self.close_len[lo:hi]
            )
            if len(offs) > 1 and (region_end[:-1] > offs[1:]).any():
                raise DUTError(f"chunk {cid}: overlapping field regions")
