"""Data Update Tracking (DUT) tables and tracked values.

The DUT table (§3.1) associates each in-memory data item with its
location in the serialized message template.  This implementation is
structure-of-arrays: one NumPy column per DUT field, so dirty scans,
offset fix-ups after shifts, and per-chunk range queries are vectorized
(see the ablation bench comparing this against per-entry Python
objects).

Applications never touch the table directly; they mutate
:class:`~repro.dut.tracked.TrackedArray` /
:class:`~repro.dut.tracked.TrackedStructArray` /
:class:`~repro.dut.tracked.TrackedScalar` wrappers — the paper's
"objects that contain get and set methods, whose implementation will
update the DUT table transparently".
"""

from repro.dut.table import DUTEntryView, DUTTable, DUTTableBuilder
from repro.dut.tracked import (
    TrackedArray,
    TrackedScalar,
    TrackedStringArray,
    TrackedStructArray,
)
from repro.dut.objects import PyDUTTable

__all__ = [
    "DUTTable",
    "DUTTableBuilder",
    "DUTEntryView",
    "TrackedArray",
    "TrackedStructArray",
    "TrackedScalar",
    "TrackedStringArray",
    "PyDUTTable",
]
