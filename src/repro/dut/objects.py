"""Per-entry Python-object DUT table — the ablation baseline.

A direct transcription of the paper's C design into Python objects:
one record per entry, linear scans for dirty entries and offset
fix-ups.  Functionally equivalent to the NumPy SoA
:class:`~repro.dut.table.DUTTable`; the ablation bench
(``benchmarks/bench_ablation_dut.py``) quantifies why the SoA layout
is the right Python implementation.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.buffers.chunked import GapResult
from repro.errors import DUTError

__all__ = ["PyDUTEntry", "PyDUTTable"]


class PyDUTEntry:
    """One mutable DUT record (the paper's table row, literally)."""

    __slots__ = (
        "chunk_id",
        "value_off",
        "ser_len",
        "field_width",
        "type_id",
        "close_len",
        "dirty",
    )

    def __init__(
        self,
        chunk_id: int,
        value_off: int,
        ser_len: int,
        field_width: int,
        type_id: int,
        close_len: int,
    ) -> None:
        if ser_len > field_width:
            raise DUTError("ser_len exceeds field_width")
        self.chunk_id = chunk_id
        self.value_off = value_off
        self.ser_len = ser_len
        self.field_width = field_width
        self.type_id = type_id
        self.close_len = close_len
        self.dirty = False


class PyDUTTable:
    """List-of-objects DUT table with the same operations as the SoA one."""

    def __init__(self) -> None:
        self.entries: List[PyDUTEntry] = []

    def add(
        self,
        chunk_id: int,
        value_off: int,
        ser_len: int,
        field_width: int,
        type_id: int,
        close_len: int,
    ) -> int:
        self.entries.append(
            PyDUTEntry(chunk_id, value_off, ser_len, field_width, type_id, close_len)
        )
        return len(self.entries) - 1

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    @property
    def any_dirty(self) -> bool:
        return any(e.dirty for e in self.entries)

    def dirty_indices(self) -> List[int]:
        return [i for i, e in enumerate(self.entries) if e.dirty]

    def mark_dirty(self, i: int) -> None:
        self.entries[i].dirty = True

    def clear_dirty(self) -> None:
        for e in self.entries:
            e.dirty = False

    # ------------------------------------------------------------------
    def apply_gap(self, result: GapResult) -> None:
        """Linear-scan offset fix-up (the cost the SoA table avoids)."""
        if result.delta == 0:
            return
        if result.mode in ("inplace", "realloc"):
            for e in self.entries:
                if e.chunk_id == result.cid and e.value_off >= result.pos:
                    e.value_off += result.delta
            return
        if result.mode != "split":
            raise DUTError(f"unknown gap mode {result.mode!r}")
        for e in self.entries:
            if e.chunk_id == result.cid and e.value_off >= result.region_start:
                moved = e.value_off >= result.pos
                e.value_off -= result.region_start
                if moved:
                    e.value_off += result.delta
                e.chunk_id = result.new_cid  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def iter_dirty(self) -> Iterator[Tuple[int, PyDUTEntry]]:
        for i, e in enumerate(self.entries):
            if e.dirty:
                yield i, e
