"""Tracked values: the application-facing write path.

The paper requires "all serializable data to be located in objects
that contain get and set methods, whose implementation will update the
DUT table transparently" (§3.1).  These wrappers are those objects:
after a template is built, each parameter's wrapper is *bound* to a
NumPy view of its slice of the DUT ``dirty`` column, so a ``set``
flips dirty bits directly in the table with no indirection.

Before binding (i.e. before the first send) mutations are unobserved
— everything is serialized on the first send anyway.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DUTError, SchemaError
from repro.lexical.cache import format_double_fixed_blob
from repro.lexical.floats import FloatFormat, format_double_array
from repro.lexical.integers import format_int_array
from repro.schema.composite import StructType
from repro.schema.types import BOOLEAN, DOUBLE, INT, LONG, STRING, XSDType

__all__ = [
    "TrackedArray",
    "TrackedStructArray",
    "TrackedScalar",
    "TrackedStringArray",
    "format_column",
]


def format_column(
    xsd_type: XSDType,
    values: np.ndarray | Sequence,
    fmt: FloatFormat,
    cached: bool = False,
) -> List[bytes]:
    """Batch-format a homogeneous column of values.

    ``cached=True`` routes doubles through the conversion memo and
    ints through the small-int table (:mod:`repro.lexical.cache`);
    output bytes are identical either way.
    """
    if xsd_type is DOUBLE:
        return format_double_array(values, fmt, cached=cached)
    if xsd_type is INT or xsd_type is LONG:
        return format_int_array(values, cached=cached)
    return [xsd_type.format(v) for v in values]


class _Bindable:
    """Shared bind/dirty plumbing."""

    _dirty: Optional[np.ndarray] = None

    def bind_dirty(self, view: np.ndarray) -> None:
        """Attach the DUT dirty-column view covering this value's leaves."""
        if view.shape != self._expected_shape():
            raise DUTError(
                f"dirty view shape {view.shape} != expected {self._expected_shape()}"
            )
        self._dirty = view

    def unbind(self) -> None:
        self._dirty = None

    @property
    def bound(self) -> bool:
        return self._dirty is not None

    def _expected_shape(self) -> tuple:  # pragma: no cover - abstract
        raise NotImplementedError


class TrackedArray(_Bindable):
    """A primitive-typed array with transparent update tracking.

    Parameters
    ----------
    values:
        Initial contents (copied into a NumPy array of the type's
        dtype so later in-place mutation is well-defined).
    xsd_type:
        One of the numeric/boolean primitives.
    """

    __slots__ = ("xsd_type", "_data", "_dirty")

    def __init__(self, values: Sequence | np.ndarray, xsd_type: XSDType) -> None:
        if xsd_type.np_dtype is None:
            raise SchemaError(
                f"TrackedArray does not support {xsd_type.name}; "
                "use TrackedStringArray"
            )
        self.xsd_type = xsd_type
        self._data = np.array(values, dtype=xsd_type.np_dtype, copy=True)
        if self._data.ndim != 1:
            raise SchemaError("TrackedArray requires a 1-D value sequence")
        self._dirty = None

    # -- reads ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, idx):
        return self._data[idx]

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the current values."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    # -- writes (mark dirty) ---------------------------------------------
    def __setitem__(self, idx, value) -> None:
        self._data[idx] = value
        if self._dirty is not None:
            self._dirty[idx] = True

    def update(self, indices, values) -> None:
        """Scatter *values* into *indices*, marking them dirty."""
        self._data[indices] = values
        if self._dirty is not None:
            self._dirty[indices] = True

    def fill_from(self, values: Sequence | np.ndarray) -> None:
        """Replace all contents (equal length), marking changed slots dirty.

        Uses a vectorized comparison so unchanged elements stay clean —
        this is the auto-diff path for applications that hand the stub
        plain arrays each call.
        """
        incoming = np.asarray(values, dtype=self._data.dtype)
        if incoming.shape != self._data.shape:
            raise DUTError(
                f"fill_from shape {incoming.shape} != {self._data.shape}; "
                "array length changes are a structure mismatch"
            )
        if self._dirty is not None:
            changed = incoming != self._data
            # NaN != NaN would spuriously dirty; treat NaN→NaN as unchanged.
            if self._data.dtype.kind == "f":
                both_nan = np.isnan(incoming) & np.isnan(self._data)
                changed &= ~both_nan
            np.logical_or(self._dirty, changed, out=self._dirty)
        self._data[:] = incoming

    # -- serialization support -------------------------------------------
    def lexical_all(self, fmt: FloatFormat, cached: bool = False) -> List[bytes]:
        """Lexical forms of every element, in order."""
        return format_column(self.xsd_type, self._data, fmt, cached=cached)

    def lexical_for(
        self, leaf_indices: np.ndarray, fmt: FloatFormat, cached: bool = False
    ) -> List[bytes]:
        """Lexical forms for specific leaf indices, in the given order."""
        return format_column(
            self.xsd_type, self._data[leaf_indices], fmt, cached=cached
        )

    def lexical_fixed_blob(
        self, leaf_indices: np.ndarray, cached: bool = False
    ) -> Optional[bytes]:
        """Fixed-width batch form for the rewrite-plan splice path.

        Doubles only: one contiguous ``n × 24``-byte blob (row *k* is
        leaf ``leaf_indices[k]``'s exact lexical form under
        :attr:`FloatFormat.FIXED`), or ``None`` when any selected
        value is non-finite — the caller falls back to the
        variable-width path.
        """
        if self.xsd_type is not DOUBLE:
            return None
        return format_double_fixed_blob(self._data[leaf_indices], cached=cached)

    def _expected_shape(self) -> tuple:
        return (len(self._data),)


class TrackedStructArray(_Bindable):
    """An array of flat structs stored struct-of-arrays.

    Columns are keyed by field name (``x``/``y``/``v`` for MIOs).  The
    leaf (DUT entry) order is item-major: leaf ``i*arity + f`` is item
    ``i``'s field ``f`` — the document order of the serialized form.
    """

    __slots__ = ("struct", "_cols", "_n", "_dirty")

    def __init__(
        self, columns: Dict[str, Sequence | np.ndarray], struct: StructType
    ) -> None:
        self.struct = struct
        expected = {f.name for f in struct.fields}
        if set(columns) != expected:
            raise SchemaError(
                f"columns {sorted(columns)} != struct fields {sorted(expected)}"
            )
        self._cols: Dict[str, np.ndarray] = {}
        lengths = set()
        for f in struct.fields:
            if f.xsd_type.np_dtype is None:
                col = np.array(list(columns[f.name]), dtype=object)
            else:
                col = np.array(columns[f.name], dtype=f.xsd_type.np_dtype, copy=True)
            if col.ndim != 1:
                raise SchemaError(f"column {f.name!r} must be 1-D")
            self._cols[f.name] = col
            lengths.add(len(col))
        if len(lengths) != 1:
            raise SchemaError(f"columns have differing lengths {sorted(lengths)}")
        self._n = lengths.pop()
        self._dirty = None

    @classmethod
    def from_records(
        cls, records: Sequence, struct: StructType
    ) -> "TrackedStructArray":
        """Build from an iterable of objects with field-named attributes
        (or tuples in field order)."""
        cols: Dict[str, list] = {f.name: [] for f in struct.fields}
        for rec in records:
            if isinstance(rec, tuple):
                for f, v in zip(struct.fields, rec):
                    cols[f.name].append(v)
            else:
                for f in struct.fields:
                    cols[f.name].append(getattr(rec, f.name))
        return cls(cols, struct)

    # -- reads ----------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def arity(self) -> int:
        return self.struct.arity

    def column(self, name: str) -> np.ndarray:
        """Read-only view of one field column."""
        view = self._cols[name].view()
        if view.dtype != object:
            view.flags.writeable = False
        return view

    def get(self, i: int, field: str):
        return self._cols[field][i]

    # -- writes ----------------------------------------------------------
    def _field_pos(self, field: str) -> int:
        for pos, f in enumerate(self.struct.fields):
            if f.name == field:
                return pos
        raise SchemaError(f"struct {self.struct.name!r} has no field {field!r}")

    def set(self, i: int, field: str, value) -> None:
        """Set one field of one item, marking its leaf dirty."""
        pos = self._field_pos(field)
        self._cols[field][i] = value
        if self._dirty is not None:
            self._dirty[i, pos] = True

    def set_items(self, indices, field: str, values) -> None:
        """Scatter into one column, marking those leaves dirty."""
        pos = self._field_pos(field)
        self._cols[field][indices] = values
        if self._dirty is not None:
            self._dirty[indices, pos] = True

    def set_column(self, field: str, values: Sequence | np.ndarray) -> None:
        """Replace an entire column, diffing to mark only real changes."""
        col = self._cols[field]
        incoming = np.asarray(values, dtype=col.dtype)
        if incoming.shape != col.shape:
            raise DUTError("set_column length mismatch is a structure mismatch")
        if self._dirty is not None:
            changed = incoming != col
            if col.dtype.kind == "f":
                changed &= ~(np.isnan(incoming) & np.isnan(col))
            pos = self._field_pos(field)
            np.logical_or(self._dirty[:, pos], changed, out=self._dirty[:, pos])
        col[:] = incoming

    # -- serialization support -------------------------------------------
    def lexical_all(self, fmt: FloatFormat, cached: bool = False) -> List[bytes]:
        """All leaves in document (item-major) order."""
        arity = self.arity
        per_field = [
            format_column(f.xsd_type, self._cols[f.name], fmt, cached=cached)
            for f in self.struct.fields
        ]
        out: List[bytes] = [b""] * (self._n * arity)
        for fpos, texts in enumerate(per_field):
            out[fpos::arity] = texts
        return out

    def lexical_for(
        self, leaf_indices: np.ndarray, fmt: FloatFormat, cached: bool = False
    ) -> List[bytes]:
        """Lexical forms for specific leaf indices, preserving order."""
        arity = self.arity
        out: List[Optional[bytes]] = [None] * len(leaf_indices)
        fields = leaf_indices % arity
        items = leaf_indices // arity
        for fpos, f in enumerate(self.struct.fields):
            sel = np.flatnonzero(fields == fpos)
            if len(sel) == 0:
                continue
            texts = format_column(
                f.xsd_type, self._cols[f.name][items[sel]], fmt, cached=cached
            )
            for k, text in zip(sel, texts):
                out[k] = text
        return out  # type: ignore[return-value]

    def _expected_shape(self) -> tuple:
        return (self._n, self.arity)


class TrackedScalar(_Bindable):
    """A single tracked value (one DUT entry)."""

    __slots__ = ("xsd_type", "_value", "_dirty")

    def __init__(self, value, xsd_type: XSDType) -> None:
        self.xsd_type = xsd_type
        self._value = value
        self._dirty = None

    @property
    def value(self):
        return self._value

    @value.setter
    def value(self, new) -> None:
        self._value = new
        if self._dirty is not None:
            self._dirty[0] = True

    def lexical_all(self, fmt: FloatFormat, cached: bool = False) -> List[bytes]:
        if self.xsd_type is DOUBLE:
            from repro.lexical.floats import format_double

            return [format_double(self._value, fmt)]
        return [self.xsd_type.format(self._value)]

    def lexical_for(
        self, leaf_indices: np.ndarray, fmt: FloatFormat, cached: bool = False
    ) -> List[bytes]:
        return [self.lexical_all(fmt)[0] for _ in leaf_indices]

    def __len__(self) -> int:
        return 1

    def _expected_shape(self) -> tuple:
        return (1,)


class TrackedStringArray(_Bindable):
    """An array of strings (unstuffable — widths grow on demand)."""

    __slots__ = ("_items", "_dirty")

    def __init__(self, values: Sequence[str]) -> None:
        self._items: List[str] = [str(v) for v in values]
        self._dirty = None

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i: int) -> str:
        return self._items[i]

    def __setitem__(self, i: int, value: str) -> None:
        self._items[i] = str(value)
        if self._dirty is not None:
            self._dirty[i] = True

    @property
    def xsd_type(self) -> XSDType:
        return STRING

    def lexical_all(self, fmt: FloatFormat, cached: bool = False) -> List[bytes]:
        return [STRING.format(s) for s in self._items]

    def lexical_for(
        self, leaf_indices: np.ndarray, fmt: FloatFormat, cached: bool = False
    ) -> List[bytes]:
        return [STRING.format(self._items[int(i)]) for i in leaf_indices]

    def _expected_shape(self) -> tuple:
        return (len(self._items),)
