"""Request/response RPC channel.

Bundles the full client-side stack — bSOAP differential serialization,
HTTP framing, a persistent TCP connection, response parsing, and SOAP
Fault propagation — behind one ``call()``.  This is the convenience
layer a generated stub or an application uses against a real
:class:`~repro.server.service.HTTPSoapServer`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.core.stats import SendReport
from repro.errors import SOAPFaultError, TransportError
from repro.schema.registry import TypeRegistry
from repro.server.diffdeser import DeserReport, DifferentialDeserializer
from repro.server.parser import DecodedMessage, SOAPRequestParser
from repro.soap.fault import SOAPFault
from repro.soap.message import SOAPMessage
from repro.soap.rpc import RPCResponse
from repro.transport.http import HTTPTransport
from repro.transport.tcp import TCPTransport

__all__ = ["RPCChannel"]


class RPCChannel:
    """A connected SOAP-RPC endpoint with differential serialization.

    Parameters
    ----------
    host, port:
        The HTTP SOAP server to connect to.
    registry:
        Type registry used to decode responses (struct types must be
        registered to round-trip).
    policy:
        Client policy; stuffing (e.g. ``StuffMode.MAX``) lets the
        server's differential deserializer work across requests.
    http_mode:
        ``"chunked"`` (HTTP/1.1, default) or ``"content-length"``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        registry: Optional[TypeRegistry] = None,
        policy: Optional[DiffPolicy] = None,
        http_mode: str = "chunked",
        path: str = "/soap",
    ) -> None:
        self._tcp = TCPTransport(host, port)
        self._http = HTTPTransport(self._tcp, mode=http_mode, host=host, path=path)
        self.client = BSoapClient(self._http, policy)
        # Responses are differentially deserialized: a service reusing
        # its response template sends same-skeleton bodies, so the
        # channel re-parses only the result values that changed — the
        # client-side mirror of the server's request handling.
        self.deserializer = DifferentialDeserializer(registry)
        self.parser = self.deserializer.parser
        self.calls = 0
        self.faults = 0
        self.last_deser_report: Optional[DeserReport] = None

    # ------------------------------------------------------------------
    def call(self, message: SOAPMessage) -> RPCResponse:
        """Send *message*, await the HTTP response, decode it.

        Raises :class:`~repro.errors.SOAPFaultError` when the server
        answered with a SOAP Fault, :class:`TransportError` on wire
        problems.  The client-side :class:`SendReport` of the request
        (match kind, rewrite statistics) is kept on
        :attr:`last_send_report`.
        """
        report = self.client.send(message)
        self.last_send_report = report
        status, _headers, body = self._tcp.recv_http_response()
        self.calls += 1
        if status != 200:
            raise TransportError(f"HTTP {status} from server")
        fault = SOAPFault.from_xml(body)
        if fault is not None:
            self.faults += 1
            fault.raise_()
        decoded, self.last_deser_report = self.deserializer.deserialize(body)
        return RPCResponse(
            operation=decoded.operation,
            values={p.name: p.value for p in decoded.params},
        )

    #: SendReport of the most recent call (match kind, rewrite stats).
    last_send_report: Optional[SendReport] = None

    def close(self) -> None:
        self._tcp.close()

    def __enter__(self) -> "RPCChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
