"""Request/response RPC channel with fault-tolerant differential sends.

Bundles the full client-side stack — bSOAP differential serialization,
HTTP framing, a reconnecting TCP connection, response parsing, and
SOAP Fault propagation — behind one ``call()``.  This is the
convenience layer a generated stub or an application uses against a
real :class:`~repro.server.service.HTTPSoapServer`.

Failure handling (see DESIGN.md §"Failure model and recovery"):

* Each ``call()`` runs under a :class:`~repro.resilience.retry.RetryPolicy`:
  retryable failures (connection reset, closed mid-response, HTTP 5xx,
  undecodable response) are retried with exponential backoff; fatal
  ones (SOAP Faults, malformed framing, 4xx) propagate immediately.
* A failed send epoch was already rolled back inside
  :class:`~repro.core.client.BSoapClient`; a failure *after* the send
  (response lost) additionally quarantines the template.  Either way
  the retry's resend is a forced full serialization that
  resynchronizes the server's differential deserializer.
* The transport is a :class:`~repro.resilience.reconnect.ReconnectingTCPTransport`
  — any transport error drops the socket, so a half-received response
  can never desynchronize request/response pairing; the retry dials a
  fresh connection.
* A :class:`~repro.resilience.breaker.CircuitBreaker` counts
  consecutive failed calls; once open, the channel degrades to plain
  full-serialization mode until enough calls succeed, then closes and
  differential sending resumes.

Semantics are at-least-once: a response lost after the server consumed
the request is retried, so non-idempotent operations may execute twice.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.core.stats import SendReport
from repro.obs import NULL_OBS, Observability
from repro.errors import (
    DeltaResyncError,
    HTTPStatusError,
    ReproError,
    SOAPFaultError,
    TransportError,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import RetryBudget
from repro.resilience.reconnect import ReconnectingTCPTransport
from repro.resilience.retry import RetryPolicy, parse_retry_after
from repro.schema.registry import TypeRegistry
from repro.server.diffdeser import DeserReport, DifferentialDeserializer
from repro.soap.fault import SOAPFault
from repro.soap.message import SOAPMessage
from repro.soap.rpc import RPCResponse
from repro.transport.http import HTTPTransport

__all__ = ["RPCChannel"]


class RPCChannel:
    """A connected SOAP-RPC endpoint with differential serialization.

    Parameters
    ----------
    host, port:
        The HTTP SOAP server to connect to.
    registry:
        Type registry used to decode responses (struct types must be
        registered to round-trip).
    policy:
        Client policy; stuffing (e.g. ``StuffMode.MAX``) lets the
        server's differential deserializer work across requests.
    http_mode:
        ``"chunked"`` (HTTP/1.1, default) or ``"content-length"``.
    retry:
        Per-call retry schedule; default
        :class:`~repro.resilience.retry.RetryPolicy()`.  Pass
        ``RetryPolicy(max_attempts=1)`` to disable retries.
    breaker:
        Failure breaker; once open the channel sends full
        serializations only (never rejects calls).
    raw_transport:
        Override the byte transport (tests inject a
        :class:`~repro.resilience.faults.FaultInjectingTransport`
        here).  Must offer ``send_message`` / ``recv_http_response``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        registry: Optional[TypeRegistry] = None,
        policy: Optional[DiffPolicy] = None,
        http_mode: str = "chunked",
        path: str = "/soap",
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        budget: Optional[RetryBudget] = None,
        raw_transport=None,
        obs: Optional[Observability] = None,
    ) -> None:
        if raw_transport is None:
            raw_transport = ReconnectingTCPTransport(host, port)
            raw_transport.connect()  # fail fast on a bad address
        self._raw = raw_transport
        #: Shared with the client and framer, so one registry carries
        #: the per-send counters, wire bytes, and call latency/retries.
        self.obs: Observability = obs if obs is not None else NULL_OBS
        resolved_policy = policy if policy is not None else DiffPolicy()
        self._http = HTTPTransport(
            self._raw,
            mode=http_mode,
            host=host,
            path=path,
            obs=self.obs,
            delta_offer=resolved_policy.delta.offer,
        )
        self.client = BSoapClient(self._http, resolved_policy, obs=self.obs)
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        #: Optional pool-wide retry budget (see
        #: :mod:`repro.resilience.budget`): each retry must win a
        #: token; a dry budget surfaces the original error instead of
        #: amplifying an overload.  None → per-call policy only.
        self.budget = budget
        # Responses are differentially deserialized: a service reusing
        # its response template sends same-skeleton bodies, so the
        # channel re-parses only the result values that changed — the
        # client-side mirror of the server's request handling.
        self.deserializer = DifferentialDeserializer(registry)
        self.parser = self.deserializer.parser
        self.calls = 0
        self.faults = 0
        #: Failed attempts that were retried, channel lifetime total.
        self.retries_total = 0
        #: Retries the policy allowed but the shared budget denied.
        self.retries_denied = 0
        #: True once the channel hit a fatal transport problem with a
        #: non-reconnecting raw transport (it cannot recover).
        self.broken = False
        self.last_deser_report: Optional[DeserReport] = None
        #: Raw body bytes of the most recent decoded response (oracle
        #: byte-equivalence checks in the concurrency tests).
        self.last_response_body: Optional[bytes] = None
        # Counters may be read (channel_stats) while a pipelined
        # send/receive pair mutates them from two threads.
        self._stats_lock = threading.Lock()

    #: SendReport of the most recent call (match kind, rewrite stats,
    #: retry/rollback accounting).
    last_send_report: Optional[SendReport] = None

    # ------------------------------------------------------------------
    def call(self, message: SOAPMessage) -> RPCResponse:
        """Send *message*, await the HTTP response, decode it.

        Retries per :attr:`retry` on transient failures; raises
        :class:`~repro.errors.SOAPFaultError` when the server answered
        with a SOAP Fault, :class:`TransportError` (or a subclass) when
        the wire problem outlived the retry budget.
        """
        started = time.monotonic()
        failures = 0
        while True:
            try:
                report, response = self._attempt(message)
            except SOAPFaultError:
                # The round trip worked; the *server* answered a Fault.
                self.breaker.record_success()
                if self.budget is not None:
                    self.budget.record_success()
                with self._stats_lock:
                    self.calls += 1
                    self.faults += 1
                raise
            except ReproError as exc:
                self.breaker.record_failure()
                failures += 1
                # Delivery of this attempt is unconfirmed either way:
                # drop the connection (half a response may be buffered)
                # and force the next send of this structure to resync.
                self._mark_broken()
                self.client.quarantine(message)
                if not self.retry.retryable(exc):
                    raise
                # A server Retry-After hint (503 under admission
                # control) raises the backoff to at least the hint and
                # cools down the transport's redial.
                raw_hint = getattr(exc, "retry_after", None)
                hint = (
                    float(raw_hint)
                    if isinstance(raw_hint, (int, float))
                    else None
                )
                if hint is not None:
                    note = getattr(self._raw, "note_retry_after", None)
                    if note is not None:
                        note(min(hint, self.retry.max_delay))
                delay = self.retry.backoff(failures, hint=hint)
                if not self.retry.admits(
                    failures, time.monotonic() - started, delay
                ):
                    raise
                if self.budget is not None and not self.budget.try_spend():
                    # Policy says retry; the pool-wide budget says the
                    # fleet is already amplifying — surface the error.
                    with self._stats_lock:
                        self.retries_denied += 1
                    raise
                with self._stats_lock:
                    self.retries_total += 1
                time.sleep(delay)
                continue
            self.breaker.record_success()
            if self.budget is not None:
                self.budget.record_success()
            report.retries = failures
            self.last_send_report = report
            with self._stats_lock:
                self.calls += 1
            self.obs.record_call(time.monotonic() - started, failures)
            return response

    def _attempt(self, message: SOAPMessage):
        """One un-retried send/receive/decode cycle."""
        report = self.send_request(message)
        response = self.recv_response()
        return report, response

    # ------------------------------------------------------------------
    # pipelining building blocks (see repro.runtime.pipeline)
    # ------------------------------------------------------------------
    def send_request(self, message: SOAPMessage) -> SendReport:
        """Serialize and transmit *message* without awaiting the reply.

        Half of one :meth:`call`: a pipelined sender issues several
        ``send_request``s back-to-back and a receiver matches
        :meth:`recv_response` replies in FIFO order.  The client's
        template epoch is rolled back on failure exactly as in
        :meth:`call`; retry scheduling is the caller's job.
        """
        self.client.force_full = not self.breaker.allow_differential()
        return self.client.send(message)

    def recv_response(self) -> RPCResponse:
        """Receive and decode the next HTTP response on the connection."""
        tracing = self.obs.tracer.enabled
        if tracing:
            t0 = time.perf_counter()
        status, headers, body = self._raw.recv_http_response()
        with self._stats_lock:
            self.client.stats.bytes_received += len(body)
        self.obs.record_bytes_received(len(body))
        wire = self.client.wire
        if status == 409 and headers.get("x-repro-delta-resync"):
            # The server lost (or refused) our delta mirror: treat as a
            # retryable transport problem — the retry path quarantines
            # the template, which forces a full resynchronizing resend.
            raise DeltaResyncError("server requested delta resync")
        if status != 200:
            raise HTTPStatusError(
                status, retry_after=parse_retry_after(headers.get("retry-after"))
            )
        if wire is not None and headers.get("x-repro-delta") == "1":
            wire.negotiated = True
        try:
            fault = SOAPFault.from_xml(body)
        except (ReproError, UnicodeDecodeError) as exc:
            raise TransportError(f"response undecodable: {exc}") from exc
        if fault is not None:
            fault.raise_()
        try:
            decoded, deser_report = self.deserializer.deserialize(body)
        except (ReproError, UnicodeDecodeError) as exc:
            # A corrupted 200 body: the request likely succeeded but
            # the answer is unusable — classified retryable.
            raise TransportError(f"response undecodable: {exc}") from exc
        self.last_deser_report = deser_report
        self.last_response_body = body
        if tracing:
            self.obs.tracer.emit(
                "recv",
                duration_s=time.perf_counter() - t0,
                bytes=len(body),
                deser_kind=deser_report.kind.value,
                leaves_parsed=deser_report.leaves_parsed,
                total_leaves=deser_report.total_leaves,
            )
        return RPCResponse(
            operation=decoded.operation,
            values={p.name: p.value for p in decoded.params},
        )

    def _mark_broken(self) -> None:
        """Drop the connection so no stale half-response survives."""
        if self.client.wire is not None:
            # A new connection means a new server session with no delta
            # mirrors: every template must re-announce its baseline.
            self.client.wire.reset_baselines()
        disconnect = getattr(self._raw, "disconnect", None)
        if disconnect is not None:
            disconnect()
        else:
            # A plain one-shot transport cannot reconnect: close it and
            # flag the channel so callers know it is dead.
            self._raw.close()
            self.broken = True

    # ------------------------------------------------------------------
    def channel_stats(self) -> Dict[str, object]:
        """Resilience counters for this channel (and its client).

        Snapshotted under the channel's stats lock, so concurrent
        readers never observe torn counter updates from a pipelined
        sender/receiver pair.
        """
        stats = self.client.stats
        with self._stats_lock:
            return {
                "calls": self.calls,
                "faults": self.faults,
                "retries": self.retries_total,
                "retries_denied": self.retries_denied,
                "reconnects": getattr(self._raw, "reconnects", 0),
                "rollbacks": stats.rollbacks,
                "forced_full_sends": stats.forced_full_sends,
                "breaker_state": self.breaker.state,
                "breaker_opens": self.breaker.opens,
            }

    def count_call(self, *, fault: bool = False) -> None:
        """Record one completed call (used by the pipelined wrapper)."""
        with self._stats_lock:
            self.calls += 1
            if fault:
                self.faults += 1

    def close(self) -> None:
        self._raw.close()

    def __enter__(self) -> "RPCChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
