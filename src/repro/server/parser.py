"""Schema-guided SOAP request parsing (the full-deserialization baseline).

The parser builds a light element tree from the scanner's event
stream, then decodes the RPC body into typed values: NumPy arrays for
numeric array parameters, column dicts for struct arrays, Python
scalars otherwise.

Crucially for differential deserialization, it also records the **raw
byte span of every leaf value** (including any whitespace stuffing
inside the span's tail) in document order, plus enough layout to
update any leaf in place later — the server-side mirror of the DUT
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ResourceLimitError, SOAPError
from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.schema.composite import StructType
from repro.schema.registry import TypeRegistry
from repro.schema.types import XSDType, primitive_by_name
from repro.soap.encoding import parse_array_type_attr
from repro.xmlkit.scanner import (
    Characters,
    EndElement,
    Event,
    StartElement,
    XMLScanner,
)

__all__ = ["SOAPRequestParser", "DecodedMessage", "DecodedParam", "ParseResult"]


def _leaf_from_text(xsd_type: XSDType, text: str):
    """Decode a leaf from *scanner-decoded* text.

    The scanner has already resolved entity references, so string
    leaves are taken verbatim (re-running ``STRING.parse`` would
    double-unescape); numeric/boolean leaves go through their lexical
    parser on the ASCII bytes.
    """
    if xsd_type.np_dtype is None:  # string
        return text
    try:
        raw = text.encode("ascii")
    except UnicodeEncodeError:
        raise SOAPError(
            f"non-ASCII text in {xsd_type.name!r} leaf: {text[:40]!r}"
        ) from None
    return xsd_type.parse(raw)


@dataclass(slots=True)
class _Node:
    """One parsed element: name, attrs, children, text + raw text span."""

    name: str
    attrs: Dict[str, str]
    children: List["_Node"]
    text: str
    span: Optional[Tuple[int, int]]  # raw byte span of the text content

    @property
    def local(self) -> str:
        return self.name.rsplit(":", 1)[-1]


@dataclass(slots=True)
class DecodedParam:
    """One decoded parameter."""

    name: str
    kind: str  # "array" | "struct_array" | "scalar"
    value: object
    element_type: Optional[Union[XSDType, StructType]] = None


@dataclass(slots=True)
class DecodedMessage:
    """The logical content of a parsed RPC request."""

    operation: str
    params: List[DecodedParam] = field(default_factory=list)

    def param(self, name: str) -> DecodedParam:
        for p in self.params:
            if p.name == name:
                return p
        raise SOAPError(f"decoded message has no parameter {name!r}")

    def value(self, name: str):
        return self.param(name).value


@dataclass(slots=True)
class _ParamLayout:
    """Leaf → storage mapping for in-place differential updates."""

    param: DecodedParam
    leaf_base: int
    leaf_count: int
    arity: int
    leaf_types: Tuple[XSDType, ...]
    field_names: Tuple[str, ...]  # empty for primitive arrays/scalars


class ParseResult:
    """Full-parse output: message + leaf spans + in-place setters."""

    def __init__(
        self,
        message: DecodedMessage,
        spans: np.ndarray,
        layouts: List[_ParamLayout],
        regions: Optional[np.ndarray] = None,
    ) -> None:
        self.message = message
        #: (k, 2) int64 array of raw value-text spans, document order.
        self.spans = spans
        #: (k, 2) int64 array of *field-region* spans: value + closing
        #: tag + trailing whitespace pad.  All bytes that may legally
        #: change when only this leaf's value changes fall inside its
        #: region — what differential deserialization diffs against.
        self.regions = regions if regions is not None else spans
        self._layouts = layouts
        self._bases = np.asarray([l.leaf_base for l in layouts], dtype=np.int64)

    @property
    def leaf_count(self) -> int:
        return int(self.spans.shape[0])

    @property
    def layouts(self) -> List[_ParamLayout]:
        """Per-parameter leaf→storage layouts (document order).

        Read-only for consumers like the skip-scan
        :class:`~repro.schema.skipscan.SeekTable`, which compiles its
        vectorized commit arrays from ``leaf_base`` / ``leaf_count`` /
        ``param`` here.
        """
        return self._layouts

    def leaf_type(self, j: int) -> XSDType:
        layout = self._layout_for(j)
        return layout.leaf_types[(j - layout.leaf_base) % layout.arity]

    def _layout_for(self, j: int) -> _ParamLayout:
        pos = int(np.searchsorted(self._bases, j, side="right")) - 1
        return self._layouts[pos]

    def set_leaf(self, j: int, raw: bytes) -> None:
        """Re-parse one leaf from raw bytes and store it in place."""
        layout = self._layout_for(j)
        fpos = (j - layout.leaf_base) % layout.arity
        self.store_leaf(j, layout.leaf_types[fpos].parse(raw))

    def store_leaf(self, j: int, value: object) -> None:
        """Store an already-parsed leaf value in place.

        The skip-scan commit phase: the value was produced by the same
        lexical parser :meth:`set_leaf` would have used, just earlier
        (two-phase parse-then-commit, so a mid-batch parse failure
        never leaves the decode half-updated).
        """
        layout = self._layout_for(j)
        local = j - layout.leaf_base
        item = local // layout.arity
        fpos = local % layout.arity
        param = layout.param
        if param.kind == "array":
            param.value[item] = value  # type: ignore[index]
        elif param.kind == "struct_array":
            param.value[layout.field_names[fpos]][item] = value  # type: ignore[index]
        else:
            param.value = value


class _Frame:
    """Mutable per-element state during the iterative tree build."""

    __slots__ = ("start", "children", "text_parts", "span")

    def __init__(self, start: StartElement) -> None:
        self.start = start
        self.children: List[_Node] = []
        self.text_parts: List[str] = []
        self.span: Optional[Tuple[int, int]] = None


class SOAPRequestParser:
    """Parses SOAP 1.1 RPC requests against a type registry.

    *limits* (default :data:`~repro.hardening.DEFAULT_LIMITS`) bounds
    body size, nesting depth, element/attribute counts, and token
    lengths; crossing any of them raises
    :class:`~repro.errors.ResourceLimitError` (a
    :class:`~repro.errors.SOAPError`, so services answer with a
    Client fault).
    """

    def __init__(
        self,
        registry: Optional[TypeRegistry] = None,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self.registry = registry or TypeRegistry()
        self.limits = limits if limits is not None else DEFAULT_LIMITS

    # ------------------------------------------------------------------
    # tree building
    # ------------------------------------------------------------------
    def _build_tree(self, data: bytes) -> _Node:
        """Build the element tree with an explicit stack.

        Iterative on purpose: nesting depth is attacker-controlled, so
        the build must never recurse (a 10k-deep document would
        otherwise die with ``RecursionError`` instead of faulting).
        The scanner enforces ``limits`` incrementally while the event
        list materializes.
        """
        if len(data) > self.limits.max_body_bytes:
            raise ResourceLimitError(
                f"body of {len(data)} bytes exceeds "
                f"max_body_bytes={self.limits.max_body_bytes}",
                "max_body_bytes",
            )
        events: List[Event] = list(
            XMLScanner(data, keep_whitespace=True, limits=self.limits)
        )
        i = 0
        while i < len(events) and not isinstance(events[i], StartElement):
            i += 1
        if i == len(events):
            raise SOAPError("no root element")

        stack: List[_Frame] = [_Frame(events[i])]
        i += 1
        n = len(events)
        while i < n:
            ev = events[i]
            frame = stack[-1]
            if isinstance(ev, EndElement):
                span = frame.span
                if span is None and not frame.children:
                    # Empty leaf: zero-length span at the close tag.
                    off = ev.offset if ev.offset >= 0 else 0
                    span = (off, off)
                node = _Node(
                    frame.start.name,
                    dict(frame.start.attrs),
                    frame.children,
                    "".join(frame.text_parts),
                    span,
                )
                stack.pop()
                if not stack:
                    return node
                stack[-1].children.append(node)
            elif isinstance(ev, Characters):
                frame.text_parts.append(ev.text)
                nxt = events[i + 1] if i + 1 < n else ev
                end_off = getattr(nxt, "offset", ev.offset + len(ev.text))
                frame.span = (
                    frame.span[0] if frame.span else ev.offset,
                    end_off,
                )
            elif isinstance(ev, StartElement):
                stack.append(_Frame(ev))
            i += 1
        raise SOAPError("unterminated element tree")

    # ------------------------------------------------------------------
    # typed decoding
    # ------------------------------------------------------------------
    def parse(self, data: bytes) -> ParseResult:
        """Full parse: decode the message and record all leaf spans."""
        root = self._build_tree(data)
        if root.local != "Envelope":
            raise SOAPError(f"root element is {root.name!r}, expected Envelope")
        body = self._child_by_local(root, "Body")
        if body is None or not body.children:
            raise SOAPError("missing or empty SOAP Body")
        op_node = body.children[0]
        message = DecodedMessage(operation=op_node.local)

        spans: List[Tuple[int, int]] = []
        layouts: List[_ParamLayout] = []
        for pnode in op_node.children:
            param, layout_entries = self._decode_param(pnode, len(spans))
            message.params.append(param)
            layouts.append(layout_entries[0])
            spans.extend(layout_entries[1])
        span_arr = (
            np.asarray(spans, dtype=np.int64)
            if spans
            else np.empty((0, 2), dtype=np.int64)
        )
        regions = self._field_regions(data, span_arr)
        return ParseResult(message, span_arr, layouts, regions)

    @staticmethod
    def _field_regions(data: bytes, spans: np.ndarray) -> np.ndarray:
        """Extend each value span to its full field region.

        The region runs from the value start through the closing tag
        and any whitespace stuffing, up to the next markup byte —
        mirroring the sender-side DUT field layout.
        """
        if spans.shape[0] == 0:
            return spans
        regions = spans.copy()
        n = len(data)
        ws = b" \t\r\n"
        for j in range(spans.shape[0]):
            end = int(spans[j, 1])
            # Skip the closing tag that immediately follows the value.
            gt = data.find(b">", end)
            if gt < 0:  # pragma: no cover - malformed, keep text span
                continue
            pos = gt + 1
            while pos < n and data[pos] in ws:
                pos += 1
            regions[j, 1] = pos
        return regions

    @staticmethod
    def _child_by_local(node: _Node, local: str) -> Optional[_Node]:
        for child in node.children:
            if child.local == local:
                return child
        return None

    def _resolve_type(self, prefixed: str) -> Union[XSDType, StructType]:
        local = prefixed.rsplit(":", 1)[-1]
        resolved = self.registry.lookup(local) if local in self.registry else None
        if resolved is None:
            resolved = primitive_by_name(local)
        if isinstance(resolved, (XSDType, StructType)):
            return resolved
        raise SOAPError(f"type {prefixed!r} is not usable as an element type")

    def _decode_param(
        self, node: _Node, leaf_base: int
    ) -> Tuple[DecodedParam, Tuple[_ParamLayout, List[Tuple[int, int]]]]:
        attrs = node.attrs
        array_decl = None
        for key, value in attrs.items():
            if key.rsplit(":", 1)[-1] == "arrayType":
                array_decl = value
                break

        if array_decl is not None:
            type_name, declared = parse_array_type_attr(array_decl)
            element = self._resolve_type(type_name)
            if isinstance(element, StructType):
                return self._decode_struct_array(node, element, declared, leaf_base)
            return self._decode_primitive_array(node, element, declared, leaf_base)

        xsi = None
        for key, value in attrs.items():
            if key.rsplit(":", 1)[-1] == "type":
                xsi = value
                break
        if xsi is not None and xsi.rsplit(":", 1)[-1] in self.registry:
            maybe = self.registry.lookup(xsi.rsplit(":", 1)[-1])
            if isinstance(maybe, StructType):
                return self._decode_scalar_struct(node, maybe, leaf_base)
        element = self._resolve_type(xsi) if xsi else primitive_by_name("string")
        if isinstance(element, StructType):
            return self._decode_scalar_struct(node, element, leaf_base)
        value = _leaf_from_text(element, node.text)
        param = DecodedParam(node.local, "scalar", value, element)
        span = node.span or (0, 0)
        layout = _ParamLayout(param, leaf_base, 1, 1, (element,), ())
        return param, (layout, [span])

    def _decode_primitive_array(
        self, node: _Node, element: XSDType, declared: Optional[int], leaf_base: int
    ) -> Tuple[DecodedParam, Tuple[_ParamLayout, List[Tuple[int, int]]]]:
        items = node.children
        if declared is not None and declared != len(items):
            raise SOAPError(
                f"arrayType declared {declared} items, found {len(items)}"
            )
        spans: List[Tuple[int, int]] = []
        item_texts: List[str] = []
        for item in items:
            item_texts.append(item.text)
            spans.append(item.span or (0, 0))
        values = [_leaf_from_text(element, t) for t in item_texts]
        if element.np_dtype is not None:
            container: object = np.asarray(values, dtype=element.np_dtype)
        else:
            container = values
        param = DecodedParam(node.local, "array", container, element)
        layout = _ParamLayout(param, leaf_base, len(items), 1, (element,), ())
        return param, (layout, spans)

    def _decode_struct_array(
        self, node: _Node, struct: StructType, declared: Optional[int], leaf_base: int
    ) -> Tuple[DecodedParam, Tuple[_ParamLayout, List[Tuple[int, int]]]]:
        items = node.children
        if declared is not None and declared != len(items):
            raise SOAPError(
                f"arrayType declared {declared} items, found {len(items)}"
            )
        arity = struct.arity
        fields = struct.fields
        cols: Dict[str, List[object]] = {f.name: [] for f in fields}
        spans: List[Tuple[int, int]] = []
        for item in items:
            if len(item.children) != arity:
                raise SOAPError(
                    f"struct item has {len(item.children)} fields, expected {arity}"
                )
            for f, child in zip(fields, item.children):
                if child.local != f.name:
                    raise SOAPError(
                        f"struct field {child.local!r} does not match schema "
                        f"field {f.name!r}"
                    )
                cols[f.name].append(_leaf_from_text(f.xsd_type, child.text))
                spans.append(child.span or (0, 0))
        columns: Dict[str, object] = {}
        for f in fields:
            if f.xsd_type.np_dtype is not None:
                columns[f.name] = np.asarray(cols[f.name], dtype=f.xsd_type.np_dtype)
            else:
                columns[f.name] = cols[f.name]
        param = DecodedParam(node.local, "struct_array", columns, struct)
        layout = _ParamLayout(
            param,
            leaf_base,
            len(items) * arity,
            arity,
            tuple(f.xsd_type for f in fields),
            tuple(f.name for f in fields),
        )
        return param, (layout, spans)

    def _decode_scalar_struct(
        self, node: _Node, struct: StructType, leaf_base: int
    ) -> Tuple[DecodedParam, Tuple[_ParamLayout, List[Tuple[int, int]]]]:
        arity = struct.arity
        if len(node.children) != arity:
            raise SOAPError("scalar struct field count mismatch")
        columns: Dict[str, object] = {}
        spans: List[Tuple[int, int]] = []
        for f, child in zip(struct.fields, node.children):
            if child.local != f.name:
                raise SOAPError(f"unexpected struct field {child.local!r}")
            value = _leaf_from_text(f.xsd_type, child.text)
            columns[f.name] = (
                np.asarray([value], dtype=f.xsd_type.np_dtype)
                if f.xsd_type.np_dtype is not None
                else [value]
            )
            spans.append(child.span or (0, 0))
        param = DecodedParam(node.local, "struct_array", columns, struct)
        layout = _ParamLayout(
            param,
            leaf_base,
            arity,
            arity,
            tuple(f.xsd_type for f in struct.fields),
            tuple(f.name for f in struct.fields),
        )
        return param, (layout, spans)
