"""Server side: parsing, dispatch, and differential deserialization.

The paper's evaluation server is a drain
(:class:`~repro.transport.dummy_server.DummyServer`); this package is
the *real* server the examples and integration tests use:

* :mod:`repro.server.parser` — schema-guided full SOAP request
  parsing (the baseline cost),
* :mod:`repro.server.diffdeser` — **differential deserialization**,
  the paper's §6 future-work idea: keep the previous raw message and
  its value-span map; when a new message matches the stored skeleton,
  byte-compare and re-parse only the spans that changed,
* :mod:`repro.server.service` — operation registry + dispatch +
  response serialization through a bSOAP client (so responses benefit
  from differential serialization too, the "heavily-used servers"
  scenario of §3.4),
* :mod:`repro.server.async_server` — the C10K event-loop front end
  with zero-copy vectored response sends (``docs/async_server.md``);
  :func:`make_server` is the ``server="threaded"|"async"`` switch.
"""

from repro.server.parser import DecodedMessage, DecodedParam, SOAPRequestParser
from repro.server.diffdeser import DeserKind, DeserReport, DifferentialDeserializer
from repro.server.service import HTTPSoapServer, Operation, SOAPService
from repro.server.async_server import AsyncHTTPSoapServer, SERVER_MODES, make_server
from repro.server.tagdispatch import OperationPeeker

__all__ = [
    "SOAPRequestParser",
    "DecodedMessage",
    "DecodedParam",
    "DifferentialDeserializer",
    "DeserKind",
    "DeserReport",
    "SOAPService",
    "Operation",
    "HTTPSoapServer",
    "AsyncHTTPSoapServer",
    "SERVER_MODES",
    "make_server",
    "OperationPeeker",
]
