"""Non-blocking C10K front end with zero-copy vectored response sends.

The threaded :class:`~repro.server.service.HTTPSoapServer` spends one
OS thread per connection, which tops out at hundreds of clients —
nowhere near the millions-of-users traffic the ROADMAP names.  This
module rebuilds the serving layer as an event loop:

* **one loop thread** runs a ``selectors`` readiness loop doing
  non-blocking accept/read/write over every connection;
* **per-connection state machines** (``reading → handling → writing →
  reading``) buffer bytes until :func:`~repro.transport.http.parse_http_request`
  yields a complete request, then feed the existing
  :class:`~repro.server.service.SOAPService` pipeline — admission
  control, delta mirrors, skip-scan deserialization, the memory-shed
  ladder, and the 400/408/413/503 taxonomy are all the *same code* the
  threaded server runs;
* **a small handler pool** executes the (CPU-bound, GIL-protected)
  SOAP work so a slow handler never stalls the readiness loop; each
  connection handles at most one request at a time, in order;
* **read deadlines** are a :class:`~repro.server.timerwheel.TimerWheel`
  instead of per-socket blocking timeouts: arming, re-arming (on
  request-level progress, exactly the threaded server's rule) and
  cancelling are O(1), independent of connection count;
* **responses go out vectored**: the service hands back a
  :class:`~repro.server.service.ResponsePayload` holding the
  serializer's chunk views, and the write path pushes ``[header] +
  chunk views`` through ``socket.sendmsg`` with an
  :class:`~repro.buffers.iovec.IovecCursor` resuming partial sends
  across iovec boundaries — a steady-state perfect-structural resend
  never copies its payload bytes (``vectored=False`` keeps the
  flattening path for the ablation benchmark).

The write-before-next-request ordering is what makes zero-copy safe:
the chunk views alias the session responder's live buffers, which only
that session's *next* request rewrites — and the state machine does
not dispatch request *i+1* until response *i* has fully left the
socket.

See ``docs/async_server.md`` for the architecture walkthrough and
when to pick ``server="threaded"`` vs ``server="async"``.
"""

from __future__ import annotations

import errno
import itertools
import selectors
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple

from repro.buffers.iovec import IOV_MAX, IovecCursor
from repro.errors import (
    HTTPFramingError,
    IncompleteHTTPError,
    RequestTooLargeError,
)
from repro.server.service import (
    ACCEPT_ERRNOS,
    _STATUS_PHRASES,
    HTTPSoapServer,
    ResponsePayload,
    SOAPService,
)
from repro.server.timerwheel import TimerWheel
from repro.transport.http import parse_http_request

__all__ = ["AsyncHTTPSoapServer", "SERVER_MODES", "make_server"]

#: Connection states the per-state gauge reports.
CONN_STATES = ("reading", "handling", "writing")

#: Sentinel timer key for resuming a paused accept loop.
_ACCEPT_RESUME = "__accept_resume__"

#: Bytes pulled per read-readiness event.  Large enough that a bulk
#: sender drains in few syscalls, small enough to stay fair across
#: thousands of ready connections.
_RECV_SIZE = 1 << 18


class _Connection:
    """One connection's state machine (loop-thread private)."""

    __slots__ = (
        "sock",
        "fd",
        "session_id",
        "state",
        "buffered",
        "served",
        "cursor",
        "payload",
        "close_after_write",
        "events",
    )

    def __init__(self, sock: socket.socket, session_id: str) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.session_id = session_id
        self.state = "reading"
        self.buffered = b""
        self.served = 0
        #: Resumable iovec write position (state == "writing" only).
        self.cursor: Optional[IovecCursor] = None
        #: The in-flight response; held only while writing so its chunk
        #: views stay alive, released the moment the write completes.
        self.payload: Optional[ResponsePayload] = None
        self.close_after_write = False
        #: Selector event mask currently registered (0 = unregistered).
        self.events = 0


class AsyncHTTPSoapServer:
    """Event-loop HTTP front end over a :class:`SOAPService`.

    Drop-in alternative to :class:`HTTPSoapServer` (same constructor
    shape, ``start``/``stop``/context-manager surface, metrics names,
    and rejection taxonomy).  Extra knobs:

    Parameters
    ----------
    handler_threads:
        Size of the pool running SOAP handling off the loop thread, so
        a *blocking* handler (I/O, sleeps) never stalls the readiness
        loop.  ``0`` handles requests inline on the loop thread — the
        right choice for CPU-bound handlers under the GIL, where
        offloading only adds two thread handoffs per request and the
        loop batches every ready request in one scheduling quantum.
    vectored:
        ``True`` (default) sends responses as ``sendmsg`` scatter-
        gather over the serializer's chunk views; ``False`` flattens
        every response into one contiguous buffer first (the copying
        baseline the ablation benchmark measures).
    """

    ACCEPT_BACKOFF = HTTPSoapServer.ACCEPT_BACKOFF

    def __init__(
        self,
        service: SOAPService,
        host: str = "127.0.0.1",
        *,
        handler_threads: int = 4,
        vectored: bool = True,
    ) -> None:
        if handler_threads < 0:
            raise ValueError("handler_threads must be >= 0 (0 = inline)")
        self.service = service
        self.host = host
        self.port = 0
        self.vectored = vectored
        self.handler_threads = handler_threads
        self.accept_errors = 0
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._conns: Dict[int, _Connection] = {}
        self._conn_ids = itertools.count(1)
        self._running = threading.Event()
        self._wheel = TimerWheel(tick=0.05)
        self._accept_paused = False
        # Completed handler results, appended by pool threads and
        # drained by the loop thread after a wakeup byte.
        self._done: Deque[Tuple[_Connection, int, List[str], ResponsePayload]] = deque()
        self._done_lock = threading.Lock()
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        self._state_counts = {state: 0 for state in CONN_STATES}
        self._gauges_dirty = False
        # Reusable receive buffer (loop-thread private): recv_into it
        # and copy out only the bytes that arrived — plain recv(n)
        # mallocs (and for these sizes, mmaps) n bytes per call.
        self._recv_buf = bytearray(_RECV_SIZE)
        metrics = service.obs.metrics
        if metrics is not None:
            self._rejects_counter = metrics.counter(
                "repro_http_rejects_total",
                "Connections/requests rejected at the HTTP layer, by status",
                ("status",),
            )
            self._accept_errors_counter = metrics.counter(
                "repro_accept_errors_total",
                "accept() failures survived by backing off, by errno name",
                ("errno",),
            )
            self._open_conns_gauge = metrics.gauge(
                "repro_http_open_connections",
                "Live connections currently held by the front end",
            )
            self._conn_state_gauge = metrics.gauge(
                "repro_http_connections_state",
                "Live connections by state-machine state (async server)",
                ("state",),
            )
        else:
            self._rejects_counter = None
            self._accept_errors_counter = None
            self._open_conns_gauge = None
            self._conn_state_gauge = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncHTTPSoapServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(4096)
        listener.setblocking(False)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        if self.handler_threads > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.handler_threads,
                thread_name_prefix="soap-async-handler",
            )
        self._running.set()
        self.service.sessions.set_frontend_census(self.frontend_census)
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="soap-async-loop", daemon=True
        )
        self._loop_thread.start()
        return self

    def stop(self) -> None:
        self._running.clear()
        self.service.sessions.set_frontend_census(None)
        self._wakeup()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "AsyncHTTPSoapServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # introspection (mirrors the threaded server)
    # ------------------------------------------------------------------
    def open_connections(self) -> int:
        return len(self._conns)

    def connection_states(self) -> Dict[str, int]:
        """Live connection count per state-machine state."""
        return dict(self._state_counts)

    def frontend_census(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            "open_connections": self.open_connections(),
            "accept_errors": self.accept_errors,
        }
        for state, count in self._state_counts.items():
            out[f"connections_{state}"] = count
        return out

    # ------------------------------------------------------------------
    # gauge/state bookkeeping (loop thread only)
    # ------------------------------------------------------------------
    def _set_state(self, conn: _Connection, state: str) -> None:
        counts = self._state_counts
        counts[conn.state] -= 1
        counts[state] += 1
        conn.state = state
        self._gauges_dirty = True

    def _publish_gauges(self) -> None:
        # Batched: called once per loop iteration when anything moved,
        # not per transition — a request crosses three states, and at
        # C10K rates per-transition gauge writes are real loop time.
        self._gauges_dirty = False
        if self._open_conns_gauge is not None:
            self._open_conns_gauge.set(len(self._conns))
        if self._conn_state_gauge is not None:
            for state, count in self._state_counts.items():
                self._conn_state_gauge.set(count, state=state)

    def _retry_after_hint(self) -> int:
        admission = self.service.admission
        if admission is not None:
            return admission.policy.retry_after_min
        return 1

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _wakeup(self) -> None:
        wake = self._wake_w
        if wake is None:
            return
        try:
            wake.send(b"\0")
        except OSError:
            pass  # buffer full → a wakeup is already pending

    def _run_loop(self) -> None:
        selector = self._selector
        assert selector is not None
        try:
            while self._running.is_set():
                timeout = self._wheel.timeout_until_next(0.2)
                for key, _mask in selector.select(timeout):
                    kind = key.data
                    if kind == "accept":
                        self._on_accept_ready()
                    elif kind == "wakeup":
                        self._drain_wakeup()
                    else:
                        self._on_conn_event(kind, _mask)
                self._drain_done()
                self._fire_timers()
                if self._gauges_dirty:
                    self._publish_gauges()
        finally:
            self._teardown()

    def _teardown(self) -> None:
        selector = self._selector
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        if selector is not None:
            try:
                selector.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._selector = None
        for sock in (self._listener, self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass
        self._listener = self._wake_r = self._wake_w = None

    def _drain_wakeup(self) -> None:
        assert self._wake_r is not None
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _fire_timers(self) -> None:
        for key in self._wheel.expire():
            if key == _ACCEPT_RESUME:
                self._resume_accepting()
                continue
            conn = self._conns.get(key)
            if conn is None:
                continue
            if conn.state == "reading":
                # No complete request within the read deadline — idle
                # keep-alive or a slow-loris drip; either way the slot
                # is reclaimed with a 408 (threaded-server taxonomy).
                self._reject(conn, 408)

    # ------------------------------------------------------------------
    # accept
    # ------------------------------------------------------------------
    def _accept_raw(self) -> Tuple[socket.socket, object]:
        """The raw accept call (seam for fd-exhaustion fault tests)."""
        assert self._listener is not None
        return self._listener.accept()

    def _on_accept_ready(self) -> None:
        while self._running.is_set():
            try:
                sock, _addr = self._accept_raw()
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                if exc.errno in ACCEPT_ERRNOS:
                    self._note_accept_error(exc)
                    self._pause_accepting()
                    return
                return
            sock.setblocking(False)
            limit = self.service.limits.max_concurrent_connections
            session_id = f"conn-{next(self._conn_ids)}"
            conn = _Connection(sock, session_id)
            self._conns[conn.fd] = conn
            self._state_counts[conn.state] += 1
            if len(self._conns) > limit:
                self._reject(conn, 503, retry_after=self._retry_after_hint())
            else:
                self._register(conn, selectors.EVENT_READ)
                self._wheel.arm(conn.fd, self.service.limits.read_deadline)
            self._gauges_dirty = True

    def _note_accept_error(self, exc: OSError) -> None:
        self.accept_errors += 1
        if self._accept_errors_counter is not None:
            self._accept_errors_counter.inc(
                errno=errno.errorcode.get(exc.errno, str(exc.errno))
            )
        if self._rejects_counter is not None:
            self._rejects_counter.inc(status="503")

    def _pause_accepting(self) -> None:
        if self._accept_paused or self._selector is None:
            return
        self._accept_paused = True
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover - already out
            pass
        self._wheel.arm(_ACCEPT_RESUME, self.ACCEPT_BACKOFF)

    def _resume_accepting(self) -> None:
        if not self._accept_paused or self._selector is None:
            return
        self._accept_paused = False
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")

    # ------------------------------------------------------------------
    # selector bookkeeping
    # ------------------------------------------------------------------
    def _register(self, conn: _Connection, events: int) -> None:
        assert self._selector is not None
        if conn.events == events:
            return
        if conn.events == 0:
            self._selector.register(conn.sock, events, conn)
        else:
            self._selector.modify(conn.sock, events, conn)
        conn.events = events

    def _unregister(self, conn: _Connection) -> None:
        if conn.events and self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover
                pass
        conn.events = 0

    def _close_conn(self, conn: _Connection) -> None:
        self._unregister(conn)
        self._wheel.cancel(conn.fd)
        self._conns.pop(conn.fd, None)
        self._state_counts[conn.state] -= 1
        conn.payload = None
        conn.cursor = None
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        # Free the connection's session state eagerly; a returning
        # client dials a new connection and pays one full parse.
        self.service.sessions.close_session(conn.session_id)
        self._gauges_dirty = True

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _on_conn_event(self, conn: _Connection, mask: int) -> None:
        # Identity check, not fd membership: a closed connection's fd
        # can be reused by a later accept within the same iteration.
        if self._conns.get(conn.fd) is not conn:
            return
        if mask & selectors.EVENT_WRITE:
            self._on_writable(conn)
        if self._conns.get(conn.fd) is conn and mask & selectors.EVENT_READ:
            self._on_readable(conn)

    def _on_readable(self, conn: _Connection) -> None:
        if conn.state != "reading":
            return
        try:
            nbytes = conn.sock.recv_into(self._recv_buf)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not nbytes:
            if conn.buffered:
                # Peer hung up mid-request: the partial request can
                # never complete.
                self._reject(conn, 400)
            else:
                self._close_conn(conn)
            return
        data = bytes(memoryview(self._recv_buf)[:nbytes])
        if conn.buffered:
            conn.buffered += data
        else:
            conn.buffered = data
        if len(conn.buffered) > self.service.limits.recv_cap:
            # Backstop for framing that grows without ever declaring a
            # length (parse_http_request caps declared sizes first).
            self._reject(conn, 413)
            return
        self._pump_requests(conn)

    def _pump_requests(self, conn: _Connection) -> None:
        """Dispatch the next complete buffered request, if any.

        At most one request is in flight per connection: pipelined
        followers wait in ``buffered`` until the current response has
        fully left the socket — both for response ordering and because
        the in-flight response's chunk views are only stable until the
        session handles its next request.
        """
        if conn.state != "reading":
            return
        limits = self.service.limits
        try:
            request, consumed = parse_http_request(
                conn.buffered, limits=limits
            )
        except IncompleteHTTPError:
            return  # wait for more bytes
        except RequestTooLargeError:
            self._reject(conn, 413)
            return
        except HTTPFramingError:
            self._reject(conn, 400)
            return
        if conn.served >= limits.max_requests_per_connection:
            self._reject(conn, 503, retry_after=self._retry_after_hint())
            return
        conn.served += 1
        conn.buffered = conn.buffered[consumed:]
        # Progress at the request level re-arms the deadline (threaded
        # rule); here that happens when the response completes and the
        # connection re-enters "reading" — arming now would be undone
        # by the dispatch below on every path.
        if request.method == "GET" and request.path.endswith("?wsdl"):
            self._start_write(conn, ResponsePayload.of(self._wsdl_payload()))
            return
        if request.method == "GET" and request.path.rstrip("/") == "/metrics":
            self._start_write(conn, ResponsePayload.of(self._metrics_payload()))
            return
        self._set_state(conn, "handling")
        self._wheel.cancel(conn.fd)  # handler time never counts as a drip
        if self._executor is None:
            # Inline handling runs to completion before control returns
            # to the selector, so read interest can stay registered: no
            # select() happens mid-request, and the common case (write
            # drains without blocking) ends back in "reading" with the
            # same mask — zero epoll_ctl round-trips per request.
            self._complete(conn, *self._handle_safely(conn, request))
        else:
            self._unregister(conn)  # stop reading until the response is out
            self._executor.submit(self._handle_in_pool, conn, request)

    # ------------------------------------------------------------------
    # handling (pool threads)
    # ------------------------------------------------------------------
    def _handle_safely(
        self, conn: _Connection, request
    ) -> Tuple[int, List[str], ResponsePayload]:
        try:
            return self.service.handle_wire_vectored(
                request.body, request.headers, conn.session_id
            )
        except Exception:  # noqa: BLE001 - fault-not-crash backstop
            return 500, [], ResponsePayload()

    def _handle_in_pool(self, conn: _Connection, request) -> None:
        result = self._handle_safely(conn, request)
        with self._done_lock:
            self._done.append((conn, *result))
        self._wakeup()

    def _complete(
        self,
        conn: _Connection,
        status: int,
        extra: List[str],
        payload: ResponsePayload,
    ) -> None:
        """Frame and start writing a handled response (loop thread)."""
        phrase = "OK" if status == 200 else _STATUS_PHRASES.get(status, "Error")
        header_lines = "".join(f"{line}\r\n" for line in extra)
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            'Content-Type: text/xml; charset="utf-8"\r\n'
            f"{header_lines}"
            f"Content-Length: {payload.total}\r\n\r\n"
        ).encode("ascii")
        self._start_write(conn, payload, head=head)

    def _drain_done(self) -> None:
        while True:
            with self._done_lock:
                if not self._done:
                    return
                conn, status, extra, payload = self._done.popleft()
            if self._conns.get(conn.fd) is not conn:
                continue  # connection died while handling (fd may be reused)
            self._complete(conn, status, extra, payload)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _start_write(
        self,
        conn: _Connection,
        payload: ResponsePayload,
        head: Optional[bytes] = None,
        close_after: bool = False,
    ) -> None:
        views: List = [head] if head is not None else []
        total = len(head) if head is not None else 0
        if self.vectored:
            views.extend(payload.views)
            total += payload.total
        elif payload.views:
            flat = payload.tobytes()  # flat ablation path: copy
            views.append(flat)
            total += len(flat)
        conn.close_after_write = close_after
        self._set_state(conn, "writing")
        self._wheel.cancel(conn.fd)
        # Optimistic single shot: on an unsaturated socket the whole
        # response leaves in one sendmsg, and none of the resumable-
        # cursor machinery needs to exist for this request.
        if len(views) <= IOV_MAX:
            try:
                sent = self._send_batch(conn, views)
            except OSError:
                self._close_conn(conn)  # peer already gone — nothing owed
                return
            if sent == total:
                self._finish_write(conn)
                return
            cursor = IovecCursor(views)
            if sent:
                cursor.advance(sent)
        else:
            cursor = IovecCursor(views)
        conn.payload = payload  # keeps the chunk views' buffers pinned
        conn.cursor = cursor
        self._continue_write(conn)

    def _send_batch(self, conn: _Connection, batch: List) -> int:
        try:
            return conn.sock.sendmsg(batch)
        except (BlockingIOError, InterruptedError):
            return 0

    def _continue_write(self, conn: _Connection) -> None:
        cursor = conn.cursor
        assert cursor is not None
        try:
            cursor.drain(lambda batch: self._send_batch(conn, batch), IOV_MAX)
        except OSError:
            self._close_conn(conn)  # peer already gone — nothing owed
            return
        if not cursor.done:
            self._register(conn, selectors.EVENT_WRITE)
            return
        self._finish_write(conn)

    def _finish_write(self, conn: _Connection) -> None:
        # Write complete: release the payload views immediately so the
        # session's next rewrite never races a stale export.
        conn.payload = None
        conn.cursor = None
        if conn.close_after_write:
            self._close_conn(conn)
            return
        self._set_state(conn, "reading")
        self._register(conn, selectors.EVENT_READ)
        self._wheel.arm(conn.fd, self.service.limits.read_deadline)
        if conn.buffered:
            self._pump_requests(conn)  # pipelined follower already here

    def _on_writable(self, conn: _Connection) -> None:
        if conn.state == "writing":
            self._continue_write(conn)

    # ------------------------------------------------------------------
    # rejections + GET endpoints (threaded-server parity)
    # ------------------------------------------------------------------
    def _reject(
        self,
        conn: _Connection,
        status: int,
        retry_after: Optional[int] = None,
    ) -> None:
        """Queue a clean rejection response, then close.

        Same fault-not-crash contract as the threaded front end: a
        complete HTTP response with ``Connection: close``, counted in
        ``repro_http_rejects_total`` by status.
        """
        if self._rejects_counter is not None:
            self._rejects_counter.inc(status=str(status))
        phrase = _STATUS_PHRASES.get(status, "Error")
        hint = (
            f"Retry-After: {retry_after}\r\n" if retry_after is not None else ""
        )
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"{hint}"
            "Content-Length: 0\r\nConnection: close\r\n\r\n"
        ).encode("ascii")
        conn.buffered = b""
        self._start_write(conn, ResponsePayload(), head=head, close_after=True)

    def _metrics_payload(self) -> bytes:
        metrics = self.service.obs.metrics
        if metrics is None:
            return b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
        from repro.obs.export import render_prometheus

        doc = render_prometheus(metrics).encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(doc)}\r\n\r\n"
        ).encode("ascii")
        return head + doc

    def _wsdl_payload(self) -> bytes:
        from repro.errors import SOAPError

        try:
            doc = self.service.wsdl()
        except SOAPError:
            return b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/xml\r\n"
            f"Content-Length: {len(doc)}\r\n\r\n"
        ).encode("ascii")
        return head + doc


#: The front-end switch: ``server="threaded"`` keeps the
#: thread-per-connection fallback, ``server="async"`` serves the same
#: service from the event loop.
SERVER_MODES = ("threaded", "async")


def make_server(
    service: SOAPService,
    server: str = "threaded",
    host: str = "127.0.0.1",
    **async_kw,
):
    """Build (not start) the chosen front end over *service*."""
    if server == "threaded":
        if async_kw:
            raise ValueError(
                f"threaded server takes no extra options, got {sorted(async_kw)}"
            )
        return HTTPSoapServer(service, host)
    if server == "async":
        return AsyncHTTPSoapServer(service, host, **async_kw)
    raise ValueError(f"unknown server mode {server!r}; have {SERVER_MODES}")
