"""A hashed timer wheel for per-connection deadlines.

The threaded front end enforces ``ResourceLimits.read_deadline`` with
blocking socket timeouts — one kernel timer per connection, re-checked
on every 200 ms wakeup.  An event-loop server with thousands of
connections needs the same semantics without per-connection syscalls:
a :class:`TimerWheel` keeps every armed deadline in coarse time
buckets, so arming, re-arming, and cancelling are O(1) dict ops and
one :meth:`expire` sweep per loop iteration collects everything due.

Deadlines here are *lazy-cancel*: re-arming a key simply overwrites
its authoritative deadline, and stale bucket entries are skipped when
their slot comes around.  That matches the access pattern — a live
connection re-arms on every request it completes — and keeps the hot
path allocation-free.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, List, Optional

__all__ = ["TimerWheel"]


class TimerWheel:
    """Coarse-bucket deadline tracking (see module docstring).

    Parameters
    ----------
    tick:
        Bucket width in seconds.  Deadlines fire up to one tick late,
        never early — the same slack the threaded server's 200 ms
        accept/read wakeups already accept.
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self, tick: float = 0.1, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.tick = tick
        self._clock = clock
        #: key → authoritative absolute deadline (monotonic seconds).
        self._deadlines: Dict[Hashable, float] = {}
        #: bucket index → keys that *may* expire there (lazy-cancel).
        self._buckets: Dict[int, List[Hashable]] = {}

    def __len__(self) -> int:
        return len(self._deadlines)

    def _bucket(self, deadline: float) -> int:
        return int(deadline / self.tick) + 1  # round up: never fire early

    # ------------------------------------------------------------------
    def arm(self, key: Hashable, delay: float) -> None:
        """(Re)arm *key* to fire *delay* seconds from now."""
        deadline = self._clock() + delay
        self._deadlines[key] = deadline
        self._buckets.setdefault(self._bucket(deadline), []).append(key)

    def cancel(self, key: Hashable) -> None:
        """Disarm *key* (bucket entries die lazily)."""
        self._deadlines.pop(key, None)

    def deadline_of(self, key: Hashable) -> Optional[float]:
        return self._deadlines.get(key)

    # ------------------------------------------------------------------
    def expire(self, now: Optional[float] = None) -> List[Hashable]:
        """Pop and return every key whose deadline has passed."""
        if now is None:
            now = self._clock()
        due: List[Hashable] = []
        current = int(now / self.tick)
        deadlines = self._deadlines
        for index in [b for b in self._buckets if b <= current]:
            for key in self._buckets.pop(index):
                deadline = deadlines.get(key)
                if deadline is None:
                    continue  # cancelled (or already re-armed and fired)
                if deadline <= now:
                    del deadlines[key]
                    due.append(key)
                else:
                    # Re-armed into the future after this bucket entry
                    # was queued; requeue at its real slot.
                    self._buckets.setdefault(
                        self._bucket(deadline), []
                    ).append(key)
        return due

    def timeout_until_next(
        self, ceiling: float = 1.0, now: Optional[float] = None
    ) -> float:
        """Seconds a ``select`` may sleep without missing a deadline.

        Coarse on purpose: one tick past the earliest *possible* slot,
        clamped to ``[0, ceiling]``.  With no armed timers, *ceiling*.
        """
        if not self._buckets:
            return ceiling
        if now is None:
            now = self._clock()
        earliest = min(self._buckets) * self.tick
        return max(0.0, min(ceiling, earliest - now + self.tick))
