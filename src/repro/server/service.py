"""SOAP service dispatch and an HTTP server front end.

A :class:`SOAPService` maps operation names to Python handlers.
Incoming bodies are decoded by a per-service
:class:`~repro.server.diffdeser.DifferentialDeserializer`; responses
are serialized through an internal :class:`~repro.core.BSoapClient`,
so a service answering the same-shaped response repeatedly gets
content/structural matches on the *outgoing* side — the paper's §3.4
"heavily-used servers" scenario (Google/Amazon-style fixed response
schemas).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.errors import SOAPError, TransportError
from repro.schema.composite import ArrayType, StructType
from repro.schema.registry import TypeRegistry
from repro.schema.types import XSDType
from repro.server.diffdeser import DifferentialDeserializer
from repro.server.parser import DecodedMessage
from repro.server.tagdispatch import OperationPeeker
from repro.soap.fault import SOAPFault
from repro.soap.message import Parameter, SOAPMessage
from repro.soap.rpc import RESPONSE_SUFFIX
from repro.transport.http import parse_http_request
from repro.transport.loopback import CollectSink

__all__ = ["Operation", "SOAPService", "HTTPSoapServer"]

ParamType = Union[XSDType, StructType, ArrayType]
Handler = Callable[..., object]


class Operation:
    """One service operation: typed inputs, a handler, a typed result."""

    def __init__(
        self,
        name: str,
        handler: Handler,
        *,
        result_type: Optional[ParamType] = None,
        result_name: str = "return",
    ) -> None:
        self.name = name
        self.handler = handler
        self.result_type = result_type
        self.result_name = result_name


class SOAPService:
    """Operation registry + request dispatch (see module docstring)."""

    def __init__(
        self,
        namespace: str,
        registry: Optional[TypeRegistry] = None,
        *,
        response_policy: Optional[DiffPolicy] = None,
        differential_deser: bool = True,
        definition: Optional[object] = None,
    ) -> None:
        self.namespace = namespace
        #: Optional :class:`~repro.wsdl.model.ServiceDef` for WSDL serving.
        self.definition = definition
        self.registry = registry or TypeRegistry()
        self._operations: Dict[str, Operation] = {}
        self._peeker = OperationPeeker(())
        self._deser = DifferentialDeserializer(self.registry)
        self._differential_deser = differential_deser
        self._response_sink = CollectSink()
        self._responder = BSoapClient(self._response_sink, response_policy)
        self.requests_handled = 0
        self.faults_returned = 0

    # ------------------------------------------------------------------
    def register(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise SOAPError(f"operation {operation.name!r} already registered")
        self._operations[operation.name] = operation
        self._peeker.add(operation.name)
        return operation

    def operation(
        self,
        name: str,
        *,
        result_type: Optional[ParamType] = None,
        result_name: str = "return",
    ):
        """Decorator form of :meth:`register`."""

        def wrap(fn: Handler) -> Handler:
            self.register(
                Operation(name, fn, result_type=result_type, result_name=result_name)
            )
            return fn

        return wrap

    @classmethod
    def from_definition(cls, definition, handlers: Dict[str, Handler], **kw) -> "SOAPService":
        """Build a service from a WSDL :class:`ServiceDef` + handlers.

        Operation result names/types come from the definition's output
        parts; *handlers* maps operation names to callables.  The
        resulting service can serve its own WSDL over HTTP
        (``GET <path>?wsdl``).
        """
        service = cls(
            definition.namespace,
            definition.registry,
            definition=definition,
            **kw,
        )
        for op_def in definition.operations:
            handler = handlers.get(op_def.name)
            if handler is None:
                raise SOAPError(f"no handler supplied for operation {op_def.name!r}")
            result_type = op_def.output.ptype if op_def.output else None
            result_name = op_def.output.name if op_def.output else "return"
            service.register(
                Operation(
                    op_def.name,
                    handler,
                    result_type=result_type,
                    result_name=result_name,
                )
            )
        return service

    def wsdl(self) -> bytes:
        """The service's WSDL document (requires a definition)."""
        if self.definition is None:
            raise SOAPError("service has no WSDL definition attached")
        from repro.wsdl.emit import emit_wsdl

        return emit_wsdl(self.definition)

    @property
    def deserializer(self) -> DifferentialDeserializer:
        return self._deser

    @property
    def response_stats(self):
        """Match-kind counters for outgoing responses."""
        return self._responder.stats

    # ------------------------------------------------------------------
    def handle(self, body: bytes) -> bytes:
        """Decode a request body, dispatch, return the response bytes."""
        try:
            # Trie peek (Chiu et al.'s tag-trie optimization applied
            # to dispatch): an unknown operation tag faults before any
            # parsing work is spent on the body.
            status, peeked = self._peeker.classify(body)
            if status == "unknown":
                raise SOAPError(f"unknown operation {peeked!r}")
            decoded = self._decode(body)
            op = self._operations.get(decoded.operation)
            if op is None:
                raise SOAPError(f"unknown operation {decoded.operation!r}")
            kwargs = {p.name: p.value for p in decoded.params}
            result = op.handler(**kwargs)
            self.requests_handled += 1
            return self._serialize_response(op, result)
        except SOAPError as exc:
            self.faults_returned += 1
            return SOAPFault.client(str(exc)).to_xml()
        except Exception as exc:  # handler bug → Server fault
            self.faults_returned += 1
            return SOAPFault.server(f"{type(exc).__name__}: {exc}").to_xml()

    def _decode(self, body: bytes) -> DecodedMessage:
        if self._differential_deser:
            message, _report = self._deser.deserialize(body)
            return message
        return self._deser.parser.parse(body).message

    def _serialize_response(self, op: Operation, result: object) -> bytes:
        params: List[Parameter] = []
        if op.result_type is not None:
            params.append(Parameter(op.result_name, op.result_type, result))
        message = SOAPMessage(
            operation=op.name + RESPONSE_SUFFIX,
            namespace=self.namespace,
            params=params,
        )
        self._responder.send(message)
        return self._response_sink.last


class HTTPSoapServer:
    """Threaded HTTP front end dispatching POSTs to a service."""

    def __init__(self, service: SOAPService, host: str = "127.0.0.1") -> None:
        self.service = service
        self.host = host
        self.port = 0
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._running = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> "HTTPSoapServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(8)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running.set()
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(0.2)
        buffered = b""
        try:
            while self._running.is_set():
                try:
                    data = conn.recv(1 << 20)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                buffered += data
                drained = self._drain_requests(conn, buffered)
                if drained is None:
                    break  # malformed request: connection dropped
                buffered = drained
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _drain_requests(
        self, conn: socket.socket, buffered: bytes
    ) -> Optional[bytes]:
        from repro.errors import HTTPFramingError, IncompleteHTTPError

        while True:
            try:
                request, consumed = parse_http_request(buffered)
            except IncompleteHTTPError:
                return buffered  # wait for more bytes
            except HTTPFramingError:
                # Malformed beyond repair: answer 400 and signal the
                # caller to drop the connection (None), since request
                # boundaries in the stream can no longer be trusted.
                try:
                    conn.sendall(
                        b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
                    )
                except OSError:
                    pass
                return None
            if request.method == "GET" and request.path.endswith("?wsdl"):
                response_body = self._wsdl_response(conn)
                buffered = buffered[consumed:]
                if response_body is None or not buffered:
                    return b""
                continue
            response_body = self.service.handle(request.body)
            head = (
                "HTTP/1.1 200 OK\r\n"
                'Content-Type: text/xml; charset="utf-8"\r\n'
                f"Content-Length: {len(response_body)}\r\n\r\n"
            ).encode("ascii")
            try:
                conn.sendall(head + response_body)
            except OSError:
                return b""
            buffered = buffered[consumed:]
            if not buffered:
                return b""

    def _wsdl_response(self, conn: socket.socket) -> Optional[bytes]:
        """Serve the WSDL document (404 when none is attached)."""
        try:
            doc = self.service.wsdl()
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/xml\r\n"
                f"Content-Length: {len(doc)}\r\n\r\n"
            ).encode("ascii")
            payload = head + doc
        except SOAPError:
            payload = (
                b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
            )
        try:
            conn.sendall(payload)
            return payload
        except OSError:
            return None

    def stop(self) -> None:
        self._running.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "HTTPSoapServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
