"""SOAP service dispatch and an HTTP server front end.

A :class:`SOAPService` maps operation names to Python handlers.
Incoming bodies are decoded by a per-session
:class:`~repro.server.diffdeser.DifferentialDeserializer`; responses
are serialized through a per-session internal
:class:`~repro.core.BSoapClient`, so a service answering the
same-shaped response repeatedly gets content/structural matches on the
*outgoing* side — the paper's §3.4 "heavily-used servers" scenario
(Google/Amazon-style fixed response schemas).

Sessions (see :mod:`repro.runtime.sessions`): differential
deserialization is stateful per *sender*, so the service keeps one
deserializer/responder pair per session id behind a
:class:`~repro.runtime.sessions.ServerSessionManager`.
:class:`HTTPSoapServer` passes each accepted connection's id, making
``handle`` safe and differential under the thread-per-connection
front end; direct ``handle(body)`` calls with no session id share the
pinned default session (single-caller usage, exactly the pre-session
behaviour).
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.policy import DiffPolicy
from repro.core.stats import ClientStats
from repro.errors import SOAPError, TransportError
from repro.obs import Observability
from repro.runtime.sessions import (
    DeserializerView,
    ServerSession,
    ServerSessionManager,
)
from repro.schema.composite import ArrayType, StructType
from repro.schema.registry import TypeRegistry
from repro.schema.types import XSDType
from repro.server.parser import DecodedMessage
from repro.server.tagdispatch import OperationPeeker
from repro.soap.fault import SOAPFault
from repro.soap.message import Parameter, SOAPMessage
from repro.soap.rpc import RESPONSE_SUFFIX
from repro.transport.http import parse_http_request

__all__ = ["Operation", "SOAPService", "HTTPSoapServer"]

ParamType = Union[XSDType, StructType, ArrayType]
Handler = Callable[..., object]


class Operation:
    """One service operation: typed inputs, a handler, a typed result."""

    def __init__(
        self,
        name: str,
        handler: Handler,
        *,
        result_type: Optional[ParamType] = None,
        result_name: str = "return",
    ) -> None:
        self.name = name
        self.handler = handler
        self.result_type = result_type
        self.result_name = result_name


class SOAPService:
    """Operation registry + request dispatch (see module docstring)."""

    def __init__(
        self,
        namespace: str,
        registry: Optional[TypeRegistry] = None,
        *,
        response_policy: Optional[DiffPolicy] = None,
        differential_deser: bool = True,
        definition: Optional[object] = None,
        max_sessions: int = 256,
        obs: Optional[Observability] = None,
    ) -> None:
        self.namespace = namespace
        #: Optional :class:`~repro.wsdl.model.ServiceDef` for WSDL serving.
        self.definition = definition
        self.registry = registry or TypeRegistry()
        self._operations: Dict[str, Operation] = {}
        self._peeker = OperationPeeker(())
        self._differential_deser = differential_deser
        #: Metrics are on by default server-side (tracing stays off):
        #: every session responder shares this registry, which is what
        #: ``GET /metrics`` on :class:`HTTPSoapServer` serves.
        self.obs: Observability = (
            obs if obs is not None else Observability.metrics_only()
        )
        if self.obs.metrics is not None:
            self._requests_counter = self.obs.metrics.counter(
                "repro_requests_handled_total",
                "Requests dispatched to a handler successfully",
            )
            self._faults_counter = self.obs.metrics.counter(
                "repro_faults_returned_total",
                "Requests answered with a SOAP Fault",
            )
        else:
            self._requests_counter = None
            self._faults_counter = None
        self.sessions = ServerSessionManager(
            self.registry,
            response_policy,
            max_sessions=max_sessions,
            obs=self.obs,
        )

    # ------------------------------------------------------------------
    def register(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise SOAPError(f"operation {operation.name!r} already registered")
        self._operations[operation.name] = operation
        self._peeker.add(operation.name)
        return operation

    def operation(
        self,
        name: str,
        *,
        result_type: Optional[ParamType] = None,
        result_name: str = "return",
    ):
        """Decorator form of :meth:`register`."""

        def wrap(fn: Handler) -> Handler:
            self.register(
                Operation(name, fn, result_type=result_type, result_name=result_name)
            )
            return fn

        return wrap

    @classmethod
    def from_definition(cls, definition, handlers: Dict[str, Handler], **kw) -> "SOAPService":
        """Build a service from a WSDL :class:`ServiceDef` + handlers.

        Operation result names/types come from the definition's output
        parts; *handlers* maps operation names to callables.  The
        resulting service can serve its own WSDL over HTTP
        (``GET <path>?wsdl``).
        """
        service = cls(
            definition.namespace,
            definition.registry,
            definition=definition,
            **kw,
        )
        for op_def in definition.operations:
            handler = handlers.get(op_def.name)
            if handler is None:
                raise SOAPError(f"no handler supplied for operation {op_def.name!r}")
            result_type = op_def.output.ptype if op_def.output else None
            result_name = op_def.output.name if op_def.output else "return"
            service.register(
                Operation(
                    op_def.name,
                    handler,
                    result_type=result_type,
                    result_name=result_name,
                )
            )
        return service

    def wsdl(self) -> bytes:
        """The service's WSDL document (requires a definition)."""
        if self.definition is None:
            raise SOAPError("service has no WSDL definition attached")
        from repro.wsdl.emit import emit_wsdl

        return emit_wsdl(self.definition)

    @property
    def deserializer(self) -> DeserializerView:
        """Aggregate view over every session's deserializer.

        Offers ``stats`` / ``has_template`` / ``reset`` summed across
        sessions; with a single caller (no session ids) the numbers are
        identical to the lone deserializer's own.
        """
        return self.sessions.deserializer_view()

    @property
    def response_stats(self) -> ClientStats:
        """Match-kind counters for outgoing responses (all sessions)."""
        return self.sessions.merged_response_stats()

    @property
    def requests_handled(self) -> int:
        return self.sessions.merged_counters()["requests_handled"]

    @property
    def faults_returned(self) -> int:
        return self.sessions.merged_counters()["faults_returned"]

    # ------------------------------------------------------------------
    def handle(
        self, body: bytes, session_id: Optional[Hashable] = None
    ) -> bytes:
        """Decode a request body, dispatch, return the response bytes.

        *session_id* scopes the differential deserializer and response
        templates; connection front ends pass a per-connection id, and
        ``None`` selects the shared default session.
        """
        session = self.sessions.acquire(session_id)
        try:
            with session.lock:
                return self._handle_in_session(session, body)
        finally:
            self.sessions.release(session)

    def _handle_in_session(self, session: ServerSession, body: bytes) -> bytes:
        try:
            # Trie peek (Chiu et al.'s tag-trie optimization applied
            # to dispatch): an unknown operation tag faults before any
            # parsing work is spent on the body.
            status, peeked = self._peeker.classify(body)
            if status == "unknown":
                raise SOAPError(f"unknown operation {peeked!r}")
            decoded = self._decode(session, body)
            op = self._operations.get(decoded.operation)
            if op is None:
                raise SOAPError(f"unknown operation {decoded.operation!r}")
            kwargs = {p.name: p.value for p in decoded.params}
            result = op.handler(**kwargs)
            session.requests_handled += 1
            if self._requests_counter is not None:
                self._requests_counter.inc()
            return self._serialize_response(session, op, result)
        except SOAPError as exc:
            session.faults_returned += 1
            if self._faults_counter is not None:
                self._faults_counter.inc()
            return SOAPFault.client(str(exc)).to_xml()
        except Exception as exc:  # handler bug → Server fault
            session.faults_returned += 1
            if self._faults_counter is not None:
                self._faults_counter.inc()
            return SOAPFault.server(f"{type(exc).__name__}: {exc}").to_xml()

    def _decode(self, session: ServerSession, body: bytes) -> DecodedMessage:
        if self._differential_deser:
            message, _report = session.deserializer.deserialize(body)
            return message
        return session.deserializer.parser.parse(body).message

    def _serialize_response(
        self, session: ServerSession, op: Operation, result: object
    ) -> bytes:
        params: List[Parameter] = []
        if op.result_type is not None:
            params.append(Parameter(op.result_name, op.result_type, result))
        message = SOAPMessage(
            operation=op.name + RESPONSE_SUFFIX,
            namespace=self.namespace,
            params=params,
        )
        session.responder.send(message)
        return session.sink.last


class HTTPSoapServer:
    """Threaded HTTP front end dispatching POSTs to a service.

    Each accepted connection gets its own service session (see
    :class:`~repro.runtime.sessions.ServerSessionManager`), so
    concurrent clients neither race on shared deserializer state nor
    destroy each other's differential matches.
    """

    def __init__(self, service: SOAPService, host: str = "127.0.0.1") -> None:
        self.service = service
        self.host = host
        self.port = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conn_ids = itertools.count(1)
        self._running = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> "HTTPSoapServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="soap-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            session_id = f"conn-{next(self._conn_ids)}"
            thread = threading.Thread(
                target=self._serve, args=(conn, session_id), daemon=True
            )
            thread.start()
            # Reap finished connection threads so a long-lived server
            # handling many short connections doesn't accumulate dead
            # Thread objects without bound.
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]
            self._conn_threads.append(thread)

    def _serve(self, conn: socket.socket, session_id: str) -> None:
        conn.settimeout(0.2)
        buffered = b""
        try:
            while self._running.is_set():
                try:
                    data = conn.recv(1 << 20)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                buffered += data
                drained = self._drain_requests(conn, buffered, session_id)
                if drained is None:
                    break  # malformed request: connection dropped
                buffered = drained
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass
            # Free the connection's session state eagerly; a returning
            # client dials a new connection and pays one full parse.
            self.service.sessions.close_session(session_id)

    def _drain_requests(
        self, conn: socket.socket, buffered: bytes, session_id: str
    ) -> Optional[bytes]:
        from repro.errors import HTTPFramingError, IncompleteHTTPError

        while True:
            try:
                request, consumed = parse_http_request(buffered)
            except IncompleteHTTPError:
                return buffered  # wait for more bytes
            except HTTPFramingError:
                # Malformed beyond repair: answer 400 and signal the
                # caller to drop the connection (None), since request
                # boundaries in the stream can no longer be trusted.
                try:
                    conn.sendall(
                        b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
                    )
                except OSError:
                    pass
                return None
            if request.method == "GET" and request.path.endswith("?wsdl"):
                response_body = self._wsdl_response(conn)
                buffered = buffered[consumed:]
                if response_body is None or not buffered:
                    return b""
                continue
            if request.method == "GET" and request.path.rstrip("/") == "/metrics":
                response_body = self._metrics_response(conn)
                buffered = buffered[consumed:]
                if response_body is None or not buffered:
                    return b""
                continue
            response_body = self.service.handle(request.body, session_id)
            head = (
                "HTTP/1.1 200 OK\r\n"
                'Content-Type: text/xml; charset="utf-8"\r\n'
                f"Content-Length: {len(response_body)}\r\n\r\n"
            ).encode("ascii")
            try:
                conn.sendall(head + response_body)
            except OSError:
                return b""
            buffered = buffered[consumed:]
            if not buffered:
                return b""

    def _metrics_response(self, conn: socket.socket) -> Optional[bytes]:
        """Serve the service registry in Prometheus text format.

        404 when the service was built with a metrics-less
        ``Observability`` (e.g. the shared ``NULL_OBS``).
        """
        metrics = self.service.obs.metrics
        if metrics is None:
            payload = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
        else:
            from repro.obs.export import render_prometheus

            doc = render_prometheus(metrics).encode("utf-8")
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(doc)}\r\n\r\n"
            ).encode("ascii")
            payload = head + doc
        try:
            conn.sendall(payload)
            return payload
        except OSError:
            return None

    def _wsdl_response(self, conn: socket.socket) -> Optional[bytes]:
        """Serve the WSDL document (404 when none is attached)."""
        try:
            doc = self.service.wsdl()
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/xml\r\n"
                f"Content-Length: {len(doc)}\r\n\r\n"
            ).encode("ascii")
            payload = head + doc
        except SOAPError:
            payload = (
                b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
            )
        try:
            conn.sendall(payload)
            return payload
        except OSError:
            return None

    def stop(self) -> None:
        self._running.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    def __enter__(self) -> "HTTPSoapServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
