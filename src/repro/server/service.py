"""SOAP service dispatch and an HTTP server front end.

A :class:`SOAPService` maps operation names to Python handlers.
Incoming bodies are decoded by a per-session
:class:`~repro.server.diffdeser.DifferentialDeserializer`; responses
are serialized through a per-session internal
:class:`~repro.core.BSoapClient`, so a service answering the
same-shaped response repeatedly gets content/structural matches on the
*outgoing* side — the paper's §3.4 "heavily-used servers" scenario
(Google/Amazon-style fixed response schemas).

Sessions (see :mod:`repro.runtime.sessions`): differential
deserialization is stateful per *sender*, so the service keeps one
deserializer/responder pair per session id behind a
:class:`~repro.runtime.sessions.ServerSessionManager`.
:class:`HTTPSoapServer` passes each accepted connection's id, making
``handle`` safe and differential under the thread-per-connection
front end; direct ``handle(body)`` calls with no session id share the
pinned default session (single-caller usage, exactly the pre-session
behaviour).
"""

from __future__ import annotations

import errno
import itertools
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.policy import DiffPolicy
from repro.core.stats import ClientStats
from repro.errors import (
    AdmissionRejectedError,
    DeltaFrameError,
    DeltaResyncError,
    LexicalError,
    ResourceLimitError,
    SchemaError,
    SOAPError,
    XMLError,
)
from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.hardening.overload import AdmissionController, MemoryAccountant
from repro.obs import Observability
from repro.runtime.sessions import (
    DeserializerView,
    ServerSession,
    ServerSessionManager,
)
from repro.schema.composite import ArrayType, StructType
from repro.schema.registry import TypeRegistry
from repro.schema.types import XSDType
from repro.server.parser import DecodedMessage
from repro.server.tagdispatch import OperationPeeker
from repro.soap.fault import SOAPFault
from repro.soap.message import Parameter, SOAPMessage
from repro.soap.rpc import RESPONSE_SUFFIX
from repro.transport.http import parse_http_request

__all__ = [
    "Operation",
    "SOAPService",
    "HTTPSoapServer",
    "ResponsePayload",
    "ACCEPT_ERRNOS",
]

ParamType = Union[XSDType, StructType, ArrayType]
Handler = Callable[..., object]

#: ``accept()`` errnos that mean *resource exhaustion*, not a dead
#: listener: back off briefly and keep accepting instead of killing
#: the accept loop (an fd-exhaustion burst must not take the server
#: down with it).
ACCEPT_ERRNOS = frozenset(
    getattr(errno, name)
    for name in ("EMFILE", "ENFILE", "ENOBUFS", "ENOMEM")
    if hasattr(errno, name)
)


@dataclass(slots=True)
class ResponsePayload:
    """One response as the segment views the serializer produced.

    ``views`` are zero-copy chunk views for a differentially rewritten
    response (or a single joined segment for faults and first-time
    serializations); ``total`` is their byte sum.  Views alias the
    session responder's live buffers — valid until the *same session*
    handles its next request, so front ends must finish writing a
    response before dispatching the connection's next request.
    """

    views: List = field(default_factory=list)
    total: int = 0

    @classmethod
    def of(cls, data: bytes) -> "ResponsePayload":
        return cls([data] if data else [], len(data))

    def tobytes(self) -> bytes:
        """Flatten to contiguous bytes (copying compatibility path)."""
        if len(self.views) == 1 and isinstance(self.views[0], bytes):
            return self.views[0]
        return b"".join(bytes(v) for v in self.views)


class Operation:
    """One service operation: typed inputs, a handler, a typed result."""

    def __init__(
        self,
        name: str,
        handler: Handler,
        *,
        result_type: Optional[ParamType] = None,
        result_name: str = "return",
    ) -> None:
        self.name = name
        self.handler = handler
        self.result_type = result_type
        self.result_name = result_name


class SOAPService:
    """Operation registry + request dispatch (see module docstring)."""

    def __init__(
        self,
        namespace: str,
        registry: Optional[TypeRegistry] = None,
        *,
        response_policy: Optional[DiffPolicy] = None,
        differential_deser: bool = True,
        skipscan: bool = True,
        delta_enabled: bool = True,
        definition: Optional[object] = None,
        max_sessions: int = 256,
        obs: Optional[Observability] = None,
        limits: Optional[ResourceLimits] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.namespace = namespace
        #: Accept the client's ``X-Repro-Delta`` offer and serve binary
        #: delta frames.  Off → offers are ignored (no ack header), so
        #: clients stay on full XML; frames are answered with a resync.
        self.delta_enabled = delta_enabled
        #: Optional :class:`~repro.wsdl.model.ServiceDef` for WSDL serving.
        self.definition = definition
        self.registry = registry or TypeRegistry()
        #: Inbound resource limits shared by every layer serving this
        #: service: the HTTP front end (framing/body/deadline caps),
        #: each session's parser (depth/element/attribute/token caps),
        #: and :meth:`handle`'s own body-size check.
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._operations: Dict[str, Operation] = {}
        self._peeker = OperationPeeker(())
        self._differential_deser = differential_deser
        #: Compile per-session skip-scan seek tables for structural
        #: matches (see ``docs/skipscan.md``).  Only meaningful with
        #: ``differential_deser``; a WSDL definition additionally gates
        #: compilation behind generated message descriptors.
        self.skipscan = skipscan and differential_deser
        descriptors: Optional[Dict[str, type]] = None
        if self.skipscan and definition is not None:
            from repro.wsdl.stubgen import generate_descriptors

            descriptors = generate_descriptors(definition)
        #: Metrics are on by default server-side (tracing stays off):
        #: every session responder shares this registry, which is what
        #: ``GET /metrics`` on :class:`HTTPSoapServer` serves.
        self.obs: Observability = (
            obs if obs is not None else Observability.metrics_only()
        )
        if self.obs.metrics is not None:
            self._requests_counter = self.obs.metrics.counter(
                "repro_requests_handled_total",
                "Requests dispatched to a handler successfully",
            )
            self._faults_counter = self.obs.metrics.counter(
                "repro_faults_returned_total",
                "Requests answered with a SOAP Fault",
            )
            self._rejects_counter = self.obs.metrics.counter(
                "repro_requests_rejected_total",
                "Requests rejected before dispatch, by reason",
                ("reason",),
            )
        else:
            self._requests_counter = None
            self._faults_counter = None
            self._rejects_counter = None
        #: Optional admission gates fronting :meth:`handle_wire` (the
        #: HTTP request path).  None → every request is admitted, the
        #: pre-overload behaviour.  ``GET /metrics`` and ``?wsdl`` are
        #: served by the front end before this and stay reachable
        #: during overload.
        self.admission = admission
        shed_fraction = (
            admission.policy.shed_target_fraction
            if admission is not None
            else 0.8
        )
        #: Byte ledger for all per-session state, budgeted by
        #: ``limits.max_state_bytes``.  Always on: the gauges it feeds
        #: cost a handful of integer adds per request, and the relief
        #: ladder only engages past the budget.
        self.accountant = MemoryAccountant(
            self.limits.max_state_bytes,
            shed_target_fraction=shed_fraction,
            obs=self.obs,
        )
        self.sessions = ServerSessionManager(
            self.registry,
            response_policy,
            max_sessions=max_sessions,
            obs=self.obs,
            limits=self.limits,
            skipscan=self.skipscan,
            descriptors=descriptors,
            accountant=self.accountant,
        )

    # ------------------------------------------------------------------
    def register(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise SOAPError(f"operation {operation.name!r} already registered")
        self._operations[operation.name] = operation
        self._peeker.add(operation.name)
        return operation

    def operation(
        self,
        name: str,
        *,
        result_type: Optional[ParamType] = None,
        result_name: str = "return",
    ):
        """Decorator form of :meth:`register`."""

        def wrap(fn: Handler) -> Handler:
            self.register(
                Operation(name, fn, result_type=result_type, result_name=result_name)
            )
            return fn

        return wrap

    @classmethod
    def from_definition(cls, definition, handlers: Dict[str, Handler], **kw) -> "SOAPService":
        """Build a service from a WSDL :class:`ServiceDef` + handlers.

        Operation result names/types come from the definition's output
        parts; *handlers* maps operation names to callables.  The
        resulting service can serve its own WSDL over HTTP
        (``GET <path>?wsdl``).
        """
        service = cls(
            definition.namespace,
            definition.registry,
            definition=definition,
            **kw,
        )
        for op_def in definition.operations:
            handler = handlers.get(op_def.name)
            if handler is None:
                raise SOAPError(f"no handler supplied for operation {op_def.name!r}")
            result_type = op_def.output.ptype if op_def.output else None
            result_name = op_def.output.name if op_def.output else "return"
            service.register(
                Operation(
                    op_def.name,
                    handler,
                    result_type=result_type,
                    result_name=result_name,
                )
            )
        return service

    def wsdl(self) -> bytes:
        """The service's WSDL document (requires a definition)."""
        if self.definition is None:
            raise SOAPError("service has no WSDL definition attached")
        from repro.wsdl.emit import emit_wsdl

        return emit_wsdl(self.definition)

    @property
    def deserializer(self) -> DeserializerView:
        """Aggregate view over every session's deserializer.

        Offers ``stats`` / ``has_template`` / ``reset`` summed across
        sessions; with a single caller (no session ids) the numbers are
        identical to the lone deserializer's own.
        """
        return self.sessions.deserializer_view()

    @property
    def response_stats(self) -> ClientStats:
        """Match-kind counters for outgoing responses (all sessions)."""
        return self.sessions.merged_response_stats()

    @property
    def requests_handled(self) -> int:
        return self.sessions.merged_counters()["requests_handled"]

    @property
    def faults_returned(self) -> int:
        return self.sessions.merged_counters()["faults_returned"]

    # ------------------------------------------------------------------
    def handle(
        self, body: bytes, session_id: Optional[Hashable] = None
    ) -> bytes:
        """Decode a request body, dispatch, return the response bytes.

        *session_id* scopes the differential deserializer and response
        templates; connection front ends pass a per-connection id, and
        ``None`` selects the shared default session.
        """
        session = self.sessions.acquire(session_id)
        try:
            with session.lock:
                try:
                    return self._handle_in_session(session, body)
                finally:
                    self.sessions.note_usage(session)
        finally:
            self.sessions.release(session)
            self.sessions.relieve_pressure()

    def _handle_in_session(self, session: ServerSession, body: bytes) -> bytes:
        return self._handle_in_session_views(session, body).tobytes()

    def _handle_in_session_views(
        self, session: ServerSession, body: bytes
    ) -> ResponsePayload:
        try:
            if len(body) > self.limits.max_body_bytes:
                raise ResourceLimitError(
                    f"request body of {len(body)} bytes exceeds "
                    f"max_body_bytes={self.limits.max_body_bytes}",
                    "max_body_bytes",
                )
            # Trie peek (Chiu et al.'s tag-trie optimization applied
            # to dispatch): an unknown operation tag faults before any
            # parsing work is spent on the body.
            status, peeked = self._peeker.classify(body)
            if status == "unknown":
                raise SOAPError(f"unknown operation {peeked!r}")
            decoded = self._decode(session, body)
            op = self._operations.get(decoded.operation)
            if op is None:
                raise SOAPError(f"unknown operation {decoded.operation!r}")
            kwargs = {p.name: p.value for p in decoded.params}
            try:
                result = op.handler(**kwargs)
            except TypeError as exc:
                # An arity/keyword mismatch between the wire message
                # and the handler signature is the caller's fault, not
                # a server bug — fuzzer-built envelopes with the wrong
                # parameter set land here.
                raise SOAPError(
                    f"bad parameters for {op.name!r}: {exc}"
                ) from exc
            session.requests_handled += 1
            if self._requests_counter is not None:
                self._requests_counter.inc()
            return self._serialize_response(session, op, result)
        except (SOAPError, XMLError, LexicalError, SchemaError) as exc:
            # Anything the request bytes can provoke in the scan /
            # parse / decode layers is the client's fault: answer a
            # well-formed Client fault, never a traceback.
            session.faults_returned += 1
            if self._faults_counter is not None:
                self._faults_counter.inc()
            if self._rejects_counter is not None:
                reason = (
                    exc.limit_name
                    if isinstance(exc, ResourceLimitError) and exc.limit_name
                    else type(exc).__name__
                )
                self._rejects_counter.inc(reason=reason)
            return ResponsePayload.of(SOAPFault.client(str(exc)).to_xml())
        except Exception as exc:  # handler bug → Server fault
            session.faults_returned += 1
            if self._faults_counter is not None:
                self._faults_counter.inc()
            return ResponsePayload.of(
                SOAPFault.server(f"{type(exc).__name__}: {exc}").to_xml()
            )

    # ------------------------------------------------------------------
    # delta-aware front-end entry point
    # ------------------------------------------------------------------
    def handle_wire(
        self,
        body: bytes,
        headers: Dict[str, str],
        session_id: Optional[Hashable] = None,
    ) -> Tuple[int, List[str], bytes]:
        """Handle one request with its HTTP *headers* in view.

        The delta-aware superset of :meth:`handle`: binary frames are
        reconstructed against the session's mirror before the normal
        SOAP pipeline runs, announced full-XML bodies deposit mirrors,
        and offers are acknowledged.  Returns ``(status,
        extra_header_lines, response_body)`` for the front end to frame
        — status 200 with the SOAP response, or 409 with an empty body
        and ``X-Repro-Delta-Resync: 1`` when the client must fall back
        to full XML.

        *headers* keys must be lowercase (as
        :func:`~repro.transport.http.parse_http_request` produces).

        With an :class:`~repro.hardening.AdmissionController`
        attached, requests pass its gates first; a rejection returns
        ``503`` with a ``Retry-After`` hint and touches no session
        state at all (rejection must stay cheaper than service).
        """
        status, extra, payload = self.handle_wire_vectored(
            body, headers, session_id
        )
        return status, extra, payload.tobytes()

    def handle_wire_vectored(
        self,
        body: bytes,
        headers: Dict[str, str],
        session_id: Optional[Hashable] = None,
    ) -> Tuple[int, List[str], ResponsePayload]:
        """:meth:`handle_wire` without the final flatten.

        The zero-copy entry point for vectored front ends: the
        response comes back as a :class:`ResponsePayload` whose views
        go straight into a ``sendmsg`` iovec.  The views alias the
        session's live response buffers — the caller must finish (or
        abandon) the write before this session handles another
        request.
        """
        if self.admission is not None:
            try:
                self.admission.try_admit()
            except AdmissionRejectedError as exc:
                return (
                    503,
                    [f"Retry-After: {exc.retry_after}"],
                    ResponsePayload(),
                )
        try:
            return self._handle_wire_admitted(body, headers, session_id)
        finally:
            if self.admission is not None:
                self.admission.release()

    def _handle_wire_admitted(
        self,
        body: bytes,
        headers: Dict[str, str],
        session_id: Optional[Hashable],
    ) -> Tuple[int, List[str], ResponsePayload]:
        offered = headers.get("x-repro-delta") == "1"
        extra: List[str] = []
        if offered and self.delta_enabled:
            extra.append("X-Repro-Delta: 1")
        session = self.sessions.acquire(session_id)
        try:
            with session.lock:
                try:
                    session.bytes_received += len(body)
                    self.obs.record_bytes_received(len(body))
                    if headers.get("x-repro-delta-frame") == "1":
                        status, response = self._handle_frame(session, body)
                        if status != 200:
                            return status, ["X-Repro-Delta-Resync: 1"], response
                    else:
                        if offered and self.delta_enabled:
                            self._maybe_store_mirror(session, headers, body)
                        response = self._handle_in_session_views(session, body)
                    session.bytes_sent += response.total
                    return 200, extra, response
                finally:
                    self.sessions.note_usage(session)
        finally:
            self.sessions.release(session)
            self.sessions.relieve_pressure()

    def _handle_frame(
        self, session: ServerSession, body: bytes
    ) -> Tuple[int, ResponsePayload]:
        """Reconstruct a delta frame and run the SOAP pipeline on it."""
        if not self.delta_enabled:
            self.obs.record_delta_frame("resync-disabled")
            return 409, ResponsePayload()
        try:
            document = session.delta.apply(body, self.limits)
        except (DeltaFrameError, DeltaResyncError) as exc:
            # A bad frame is a protocol-state problem, not a SOAP
            # fault: drop to 409 so the client re-announces.  The
            # mirror is already gone (apply drops it before raising).
            self.obs.record_delta_frame(f"resync-{exc.reason}")
            return 409, ResponsePayload()
        self.obs.record_delta_frame("applied", len(document) - len(body))
        return 200, self._handle_in_session_views(session, document)

    def _maybe_store_mirror(
        self, session: ServerSession, headers: Dict[str, str], body: bytes
    ) -> None:
        """Deposit an announced full-XML body as a delta mirror.

        Announce headers are attacker-controlled text: garbage values
        are ignored (no mirror, no fault) — the client simply never
        gets a frame accepted against them.
        """
        try:
            template_id = int(headers["x-repro-delta-template"])
            epoch = int(headers["x-repro-delta-epoch"])
        except (KeyError, ValueError):
            return
        if template_id < 0 or epoch < 0:
            return
        session.delta.store(template_id, epoch, body)

    def _decode(self, session: ServerSession, body: bytes) -> DecodedMessage:
        if self._differential_deser:
            message, _report = session.deserializer.deserialize(body)
            return message
        return session.deserializer.parser.parse(body).message

    def _serialize_response(
        self, session: ServerSession, op: Operation, result: object
    ) -> ResponsePayload:
        params: List[Parameter] = []
        if op.result_type is not None:
            params.append(Parameter(op.result_name, op.result_type, result))
        message = SOAPMessage(
            operation=op.name + RESPONSE_SUFFIX,
            namespace=self.namespace,
            params=params,
        )
        session.responder.send(message)
        return ResponsePayload(session.sink.views(), session.sink.last_bytes())


#: Reason phrases for the front end's rejection responses.
_STATUS_PHRASES = {
    400: "Bad Request",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


class HTTPSoapServer:
    """Threaded HTTP front end dispatching POSTs to a service.

    Each accepted connection gets its own service session (see
    :class:`~repro.runtime.sessions.ServerSessionManager`), so
    concurrent clients neither race on shared deserializer state nor
    destroy each other's differential matches.

    The front end enforces the service's
    :class:`~repro.hardening.ResourceLimits` at the socket layer —
    the fault-not-crash contract for bytes that never make it to a
    SOAP body:

    * more than ``max_concurrent_connections`` live connections →
      extras are answered ``503`` and closed at accept time;
    * no complete request within ``read_deadline`` seconds → ``408``;
    * peer EOF with a partial request buffered → ``400``;
    * oversized framing (header block, declared or accumulated body,
      total buffered bytes past ``recv_cap``) → ``413``;
    * any other unparseable framing → ``400``;
    * more than ``max_requests_per_connection`` requests pipelined on
      one connection → ``503`` for the excess request.

    Every rejection is a well-formed HTTP response with
    ``Connection: close``, counted in ``repro_http_rejects_total``
    (labelled by status) on the service's metrics registry.
    """

    #: Seconds the accept loop pauses after an fd-exhaustion errno
    #: (EMFILE/ENFILE/...): long enough for in-flight closes to return
    #: fds, short enough that a recovered server resumes promptly.
    ACCEPT_BACKOFF = 0.05

    def __init__(self, service: SOAPService, host: str = "127.0.0.1") -> None:
        self.service = service
        self.host = host
        self.port = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conn_ids = itertools.count(1)
        self._running = threading.Event()
        self.accept_errors = 0
        if service.obs.metrics is not None:
            self._rejects_counter = service.obs.metrics.counter(
                "repro_http_rejects_total",
                "Connections/requests rejected at the HTTP layer, by status",
                ("status",),
            )
            self._accept_errors_counter = service.obs.metrics.counter(
                "repro_accept_errors_total",
                "accept() failures survived by backing off, by errno name",
                ("errno",),
            )
            self._open_conns_gauge = service.obs.metrics.gauge(
                "repro_http_open_connections",
                "Live connections currently held by the front end",
            )
        else:
            self._rejects_counter = None
            self._accept_errors_counter = None
            self._open_conns_gauge = None

    # ------------------------------------------------------------------
    def open_connections(self) -> int:
        """Live connections currently being served."""
        return sum(1 for t in self._conn_threads if t.is_alive())

    def _set_open_gauge(self) -> None:
        if self._open_conns_gauge is not None:
            self._open_conns_gauge.set(self.open_connections())

    def frontend_census(self) -> Dict[str, int]:
        """Front-end counters folded into ``merged_counters``."""
        return {
            "open_connections": self.open_connections(),
            "accept_errors": self.accept_errors,
        }

    def _note_accept_error(self, exc: OSError) -> None:
        """Count an fd-exhaustion accept failure (then back off)."""
        self.accept_errors += 1
        if self._accept_errors_counter is not None:
            self._accept_errors_counter.inc(
                errno=errno.errorcode.get(exc.errno, str(exc.errno))
            )
        # The connection the kernel could not hand us was effectively
        # turned away at the door: account it with the 503 rejects so
        # dashboards see one "turned away" series.
        if self._rejects_counter is not None:
            self._rejects_counter.inc(status="503")

    # ------------------------------------------------------------------
    def start(self) -> "HTTPSoapServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running.set()
        self.service.sessions.set_frontend_census(self.frontend_census)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="soap-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_raw(self) -> Tuple[socket.socket, object]:
        """The raw accept call (seam for fd-exhaustion fault tests)."""
        assert self._listener is not None
        return self._listener.accept()

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _ = self._accept_raw()
            except socket.timeout:
                continue
            except OSError as exc:
                if exc.errno in ACCEPT_ERRNOS and self._running.is_set():
                    # Out of fds, not out of business: pause briefly so
                    # closing connections can return descriptors, then
                    # resume accepting.
                    self._note_accept_error(exc)
                    time.sleep(self.ACCEPT_BACKOFF)
                    continue
                break
            # Reap finished connection threads so a long-lived server
            # handling many short connections doesn't accumulate dead
            # Thread objects without bound — and so the live count
            # below reflects reality.
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]
            limit = self.service.limits.max_concurrent_connections
            if len(self._conn_threads) >= limit:
                self._reject(conn, 503, retry_after=self._retry_after_hint())
                try:
                    conn.close()
                except OSError:  # pragma: no cover - best effort
                    pass
                continue
            session_id = f"conn-{next(self._conn_ids)}"
            thread = threading.Thread(
                target=self._serve, args=(conn, session_id), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)
            self._set_open_gauge()

    def _retry_after_hint(self) -> int:
        """Retry-After seconds for front-end 503 rejections.

        Follows the admission policy's floor when one is attached so
        every 503 a client can see carries a consistent hint.
        """
        admission = self.service.admission
        if admission is not None:
            return admission.policy.retry_after_min
        return 1

    def _reject(
        self,
        conn: socket.socket,
        status: int,
        retry_after: Optional[int] = None,
    ) -> None:
        """Answer a rejection status cleanly; count it.

        Always a complete, well-formed HTTP response with
        ``Connection: close`` — the fault-not-crash contract promises
        the peer an answer, never a silently dropped socket.  503s pass
        *retry_after* so rejected clients back off instead of hammering
        (see ``docs/overload.md``).
        """
        if self._rejects_counter is not None:
            self._rejects_counter.inc(status=str(status))
        phrase = _STATUS_PHRASES.get(status, "Error")
        hint = (
            f"Retry-After: {retry_after}\r\n" if retry_after is not None else ""
        )
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"{hint}"
            "Content-Length: 0\r\nConnection: close\r\n\r\n"
        ).encode("ascii")
        try:
            conn.sendall(head)
        except OSError:  # peer already gone — nothing owed
            pass

    def _serve(self, conn: socket.socket, session_id: str) -> None:
        limits = self.service.limits
        conn.settimeout(0.2)
        deadline = time.monotonic() + limits.read_deadline
        buffered = b""
        served = 0
        try:
            while self._running.is_set():
                if time.monotonic() > deadline:
                    # No complete request within the read deadline —
                    # idle keep-alive or a slow-loris drip; either way
                    # the connection slot is reclaimed with a 408.
                    self._reject(conn, 408)
                    break
                try:
                    data = conn.recv(1 << 20)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    if buffered:
                        # Peer hung up mid-request: the partial
                        # request can never complete.
                        self._reject(conn, 400)
                    break
                buffered += data
                if len(buffered) > limits.recv_cap:
                    # Backstop for framing that grows without ever
                    # declaring a length (parse_http_request caps the
                    # declared sizes before this trips).
                    self._reject(conn, 413)
                    break
                before = served
                outcome, buffered, served = self._drain_requests(
                    conn, buffered, session_id, served
                )
                if outcome == "close":
                    break
                if served != before:
                    # Progress at the request level re-arms the
                    # deadline; a byte-at-a-time drip does not.
                    deadline = time.monotonic() + limits.read_deadline
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass
            # Free the connection's session state eagerly; a returning
            # client dials a new connection and pays one full parse.
            self.service.sessions.close_session(session_id)
            self._set_open_gauge()

    def _drain_requests(
        self,
        conn: socket.socket,
        buffered: bytes,
        session_id: str,
        served: int,
    ) -> Tuple[str, bytes, int]:
        """Serve every complete request in *buffered*.

        Returns ``(outcome, remaining, served)`` where *outcome* is
        ``"open"`` (keep reading) or ``"close"`` (drop the
        connection), *remaining* is the unconsumed byte tail, and
        *served* counts requests answered over the connection's life.
        """
        from repro.errors import (
            HTTPFramingError,
            IncompleteHTTPError,
            RequestTooLargeError,
        )

        limits = self.service.limits
        while True:
            try:
                request, consumed = parse_http_request(
                    buffered, limits=limits
                )
            except IncompleteHTTPError:
                return "open", buffered, served  # wait for more bytes
            except RequestTooLargeError:
                self._reject(conn, 413)
                return "close", b"", served
            except HTTPFramingError:
                # Malformed beyond repair: request boundaries in the
                # stream can no longer be trusted.
                self._reject(conn, 400)
                return "close", b"", served
            if served >= limits.max_requests_per_connection:
                self._reject(conn, 503, retry_after=self._retry_after_hint())
                return "close", b"", served
            served += 1
            if request.method == "GET" and request.path.endswith("?wsdl"):
                response_body = self._wsdl_response(conn)
                buffered = buffered[consumed:]
                if response_body is None:
                    return "close", b"", served
                if not buffered:
                    return "open", b"", served
                continue
            if request.method == "GET" and request.path.rstrip("/") == "/metrics":
                response_body = self._metrics_response(conn)
                buffered = buffered[consumed:]
                if response_body is None:
                    return "close", b"", served
                if not buffered:
                    return "open", b"", served
                continue
            status, extra_headers, response_body = self.service.handle_wire(
                request.body, request.headers, session_id
            )
            phrase = "OK" if status == 200 else _STATUS_PHRASES.get(status, "Error")
            header_lines = "".join(f"{line}\r\n" for line in extra_headers)
            head = (
                f"HTTP/1.1 {status} {phrase}\r\n"
                'Content-Type: text/xml; charset="utf-8"\r\n'
                f"{header_lines}"
                f"Content-Length: {len(response_body)}\r\n\r\n"
            ).encode("ascii")
            try:
                conn.sendall(head + response_body)
            except OSError:
                return "close", b"", served
            buffered = buffered[consumed:]
            if not buffered:
                return "open", b"", served

    def _metrics_response(self, conn: socket.socket) -> Optional[bytes]:
        """Serve the service registry in Prometheus text format.

        404 when the service was built with a metrics-less
        ``Observability`` (e.g. the shared ``NULL_OBS``).
        """
        metrics = self.service.obs.metrics
        if metrics is None:
            payload = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
        else:
            from repro.obs.export import render_prometheus

            doc = render_prometheus(metrics).encode("utf-8")
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(doc)}\r\n\r\n"
            ).encode("ascii")
            payload = head + doc
        try:
            conn.sendall(payload)
            return payload
        except OSError:
            return None

    def _wsdl_response(self, conn: socket.socket) -> Optional[bytes]:
        """Serve the WSDL document (404 when none is attached)."""
        try:
            doc = self.service.wsdl()
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/xml\r\n"
                f"Content-Length: {len(doc)}\r\n\r\n"
            ).encode("ascii")
            payload = head + doc
        except SOAPError:
            payload = (
                b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
            )
        try:
            conn.sendall(payload)
            return payload
        except OSError:
            return None

    def stop(self) -> None:
        self._running.clear()
        self.service.sessions.set_frontend_census(None)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    def __enter__(self) -> "HTTPSoapServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
