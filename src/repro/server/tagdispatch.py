"""Trie-based operation peeking.

Chiu et al.'s tag-trie optimization, applied to dispatch: a service
knows its operation names up front, so the first body-child tag of an
incoming request can be classified with a single trie walk — without
building an element tree.  :class:`SOAPService` uses this to reject
unknown operations before paying for a full parse, and services with
many operations use it as an O(tag-length) router.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.xmlkit.escape import XML_WHITESPACE
from repro.xmlkit.trie import ByteTrie

__all__ = ["OperationPeeker"]

_WS = frozenset(XML_WHITESPACE)


class OperationPeeker:
    """Single-pass operation-name extraction from a request body."""

    def __init__(self, operation_names: Iterable[str]) -> None:
        self._trie = ByteTrie()
        self._names: list[str] = []
        for name in operation_names:
            self.add(name)

    def add(self, name: str) -> None:
        """Register an operation name."""
        self._trie.insert(name.encode("ascii"), len(self._names))
        self._names.append(name)

    # ------------------------------------------------------------------
    @staticmethod
    def _body_child_tag(data: bytes) -> Tuple[int, int]:
        """Byte span of the first Body child's local tag name.

        Returns ``(-1, -1)`` when the structure isn't recognizably a
        SOAP request (the caller then falls back to a full parse).
        """
        # Locate the Body start tag (any prefix).
        search = 0
        while True:
            idx = data.find(b":Body", search)
            if idx < 0:
                return -1, -1
            # Must be inside a start tag: preceding '<' + prefix.
            lt = data.rfind(b"<", 0, idx)
            if lt >= 0 and data[lt + 1 : idx].isalnum() or (
                lt >= 0 and b"-" in data[lt + 1 : idx]
            ):
                gt = data.find(b">", idx)
                if gt < 0:
                    return -1, -1
                break
            search = idx + 5
        # First child element after <...:Body ...>.
        pos = gt + 1
        n = len(data)
        while pos < n and data[pos] in _WS:
            pos += 1
        if pos >= n or data[pos] != 0x3C:  # '<'
            return -1, -1
        pos += 1
        start = pos
        while pos < n and data[pos] not in b" \t\r\n/>":
            pos += 1
        # Strip a namespace prefix if present.
        colon = data.find(b":", start, pos)
        if colon >= 0:
            start = colon + 1
        return start, pos

    def classify(self, data: bytes) -> Tuple[str, Optional[str]]:
        """Classify the request without parsing it.

        Returns one of:

        * ``("known", name)`` — the body's operation tag matched a
          registered operation,
        * ``("unknown", tag)`` — a clean tag was found but no
          operation has that name (fault fast, skip the parse),
        * ``("unscannable", None)`` — the byte scan could not locate
          the operation tag; fall back to a full parse.
        """
        start, end = self._body_child_tag(data)
        if start < 0:
            return "unscannable", None
        value, matched_end = self._trie.match_at(data, start)
        if value is None or matched_end != end:
            try:
                tag = data[start:end].decode("ascii")
            except UnicodeDecodeError:
                return "unscannable", None
            return "unknown", tag
        return "known", self._names[value]

    def peek(self, data: bytes) -> Optional[str]:
        """The request's operation name when recognized, else ``None``."""
        status, name = self.classify(data)
        return name if status == "known" else None

    def __len__(self) -> int:
        return len(self._names)
