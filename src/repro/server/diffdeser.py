"""Differential deserialization (paper §6, future work).

    "storing messages at a SOAP server could help in a completely
    different way, by suggesting the structure of future message
    arrivals.  This could help avoid complete server-side parsing and
    improve performance, through differential deserialization."

The deserializer keeps, per sender, the previous raw message and its
:class:`~repro.server.parser.ParseResult` (decoded values + leaf byte
spans).  For an incoming message of the *same length*:

1. vectorized byte comparison against the stored copy
   (``np.frombuffer`` + ``!=``),
2. if nothing differs → return the cached decoded message (the
   server-side content match — zero parsing),
3. if all differing bytes fall inside known leaf value spans → re-parse
   only those leaves in place (the structural match),
4. otherwise (length change or skeleton bytes differ) → full parse and
   refresh the cache.

This is exactly dual to client-side differential serialization: the
sender's stuffed/fixed-width messages produce same-length byte streams
whose only variation is inside value spans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardening.limits import ResourceLimits
from repro.schema.registry import TypeRegistry
from repro.server.parser import DecodedMessage, ParseResult, SOAPRequestParser

__all__ = ["DeserKind", "DeserReport", "DifferentialDeserializer"]


class DeserKind(enum.Enum):
    """Which path an incoming message took."""

    FULL = "full"
    CONTENT_MATCH = "content"
    DIFFERENTIAL = "differential"


@dataclass(slots=True)
class DeserReport:
    """Outcome of one deserialization."""

    kind: DeserKind
    leaves_parsed: int
    total_leaves: int


class DifferentialDeserializer:
    """Template-matching deserializer (see module docstring)."""

    def __init__(
        self,
        registry: Optional[TypeRegistry] = None,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self.parser = SOAPRequestParser(registry, limits)
        self._last_raw: Optional[np.ndarray] = None  # uint8 copy
        self._result: Optional[ParseResult] = None
        self.stats = {kind: 0 for kind in DeserKind}

    # ------------------------------------------------------------------
    def _full_parse(self, data: bytes) -> tuple[DecodedMessage, DeserReport]:
        result = self.parser.parse(data)
        self._result = result
        self._last_raw = np.frombuffer(data, dtype=np.uint8).copy()
        report = DeserReport(DeserKind.FULL, result.leaf_count, result.leaf_count)
        self.stats[DeserKind.FULL] += 1
        return result.message, report

    def deserialize(self, data: bytes) -> tuple[DecodedMessage, DeserReport]:
        """Decode *data*, reusing the stored template when possible."""
        last = self._last_raw
        result = self._result
        if last is None or result is None or len(data) != len(last):
            return self._full_parse(data)

        incoming = np.frombuffer(data, dtype=np.uint8)
        diff_pos = np.flatnonzero(incoming != last)
        if diff_pos.size == 0:
            self.stats[DeserKind.CONTENT_MATCH] += 1
            return result.message, DeserReport(
                DeserKind.CONTENT_MATCH, 0, result.leaf_count
            )

        regions = result.regions
        if regions.shape[0] == 0:
            return self._full_parse(data)
        starts = regions[:, 0]
        ends = regions[:, 1]
        # Each differing byte must fall inside some leaf field region
        # (value + closing tag + whitespace pad).
        owner = np.searchsorted(starts, diff_pos, side="right") - 1
        inside = (owner >= 0) & (diff_pos < ends[np.clip(owner, 0, None)])
        if not bool(inside.all()):
            # Skeleton bytes changed — not the same template.
            return self._full_parse(data)

        changed = np.unique(owner)
        try:
            for j in changed.tolist():
                raw = data[int(starts[j]) : int(ends[j])]
                # Trim at the (possibly moved) closing tag.
                lt = raw.find(b"<")
                if lt >= 0:
                    raw = raw[:lt]
                result.set_leaf(j, raw)
        except Exception:
            # A leaf failed to re-parse (garbage bytes inside a value
            # span) after earlier leaves were already updated in place.
            # The cached decode and the raw template now disagree, so
            # the template must not survive — drop it and let the fault
            # propagate; the next request pays one full parse.
            self.reset()
            raise
        # Refresh the raw template in place (only the changed regions).
        for j in changed.tolist():
            s, e = int(starts[j]), int(ends[j])
            last[s:e] = incoming[s:e]
        self.stats[DeserKind.DIFFERENTIAL] += 1
        self.stats_last_changed = int(changed.size)
        return result.message, DeserReport(
            DeserKind.DIFFERENTIAL, int(changed.size), result.leaf_count
        )

    # ------------------------------------------------------------------
    @property
    def has_template(self) -> bool:
        return self._result is not None

    def reset(self) -> None:
        """Drop the stored template."""
        self._last_raw = None
        self._result = None
