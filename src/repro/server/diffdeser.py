"""Differential deserialization (paper §6, future work).

    "storing messages at a SOAP server could help in a completely
    different way, by suggesting the structure of future message
    arrivals.  This could help avoid complete server-side parsing and
    improve performance, through differential deserialization."

The deserializer keeps, per sender, the previous raw message and its
:class:`~repro.server.parser.ParseResult` (decoded values + leaf byte
spans).  For an incoming message of the *same length*:

1. vectorized byte comparison against the stored copy
   (``np.frombuffer`` + ``!=``),
2. if nothing differs → return the cached decoded message (the
   server-side content match — zero parsing),
3. if all differing bytes fall inside known leaf value spans → re-parse
   only those leaves in place (the structural match),
4. otherwise (length change or skeleton bytes differ) → full parse and
   refresh the cache.

This is exactly dual to client-side differential serialization: the
sender's stuffed/fixed-width messages produce same-length byte streams
whose only variation is inside value spans.

With ``skipscan=True`` the structural-match branch runs through a
:class:`~repro.schema.skipscan.SeekTable` compiled from the template's
parse result: seeks directly to the changed regions, trie-validates
the closing tags (the only movable skeleton tokens), batch-parses
uniform double regions with NumPy, and falls back to the full parse on
any drift or doubt (see ``docs/skipscan.md``).  Successful skip-scans
still count as :attr:`DeserKind.DIFFERENTIAL` — same match level,
faster engine — flagged by :attr:`DeserReport.skipscan` and the
``skipscan_stats`` event counters.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hardening.limits import ResourceLimits
from repro.obs import NULL_OBS, Observability
from repro.schema.registry import TypeRegistry
from repro.schema.skipscan import SeekTable, SkipScanFallback
from repro.server.parser import DecodedMessage, ParseResult, SOAPRequestParser

__all__ = ["DeserKind", "DeserReport", "DifferentialDeserializer"]


class DeserKind(enum.Enum):
    """Which path an incoming message took."""

    FULL = "full"
    CONTENT_MATCH = "content"
    DIFFERENTIAL = "differential"


@dataclass(slots=True)
class DeserReport:
    """Outcome of one deserialization."""

    kind: DeserKind
    leaves_parsed: int
    total_leaves: int
    #: True when the differential branch ran through the compiled
    #: skip-scan seek table instead of the per-leaf ``set_leaf`` loop.
    skipscan: bool = False


class DifferentialDeserializer:
    """Template-matching deserializer (see module docstring).

    Parameters
    ----------
    skipscan:
        Compile a :class:`~repro.schema.skipscan.SeekTable` per
        template and route structural matches through it.
    descriptors:
        Optional ``operation name → MessageDescriptor subclass`` map
        (see :mod:`repro.schema.descriptors`).  When the parsed
        operation has a descriptor, the template must match its
        declared shape before a seek table compiles; operations
        without one compile schema-free.
    obs:
        Observability facade for ``repro_skipscan_events_total`` and
        ``skipscan`` spans (defaults to the no-op :data:`NULL_OBS`).
    """

    def __init__(
        self,
        registry: Optional[TypeRegistry] = None,
        limits: Optional[ResourceLimits] = None,
        *,
        skipscan: bool = False,
        descriptors: Optional[Dict[str, type]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.parser = SOAPRequestParser(registry, limits)
        self.skipscan = skipscan
        self.descriptors = descriptors
        self.obs = obs if obs is not None else NULL_OBS
        self._last_raw: Optional[np.ndarray] = None  # uint8 copy
        self._result: Optional[ParseResult] = None
        self._table: Optional[SeekTable] = None
        self.stats = {kind: 0 for kind in DeserKind}
        #: Skip-scan event counts (compiled / hit / hit-vector /
        #: fallback-* / length-drift / skeleton-drift / uncompilable-*),
        #: mirrored into ``repro_skipscan_events_total`` when metrics
        #: are attached.
        self.skipscan_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _skip_event(self, event: str) -> None:
        self.skipscan_stats[event] = self.skipscan_stats.get(event, 0) + 1
        self.obs.record_skipscan(event)

    def _full_parse(self, data: bytes) -> tuple[DecodedMessage, DeserReport]:
        result = self.parser.parse(data)
        self._result = result
        self._last_raw = np.frombuffer(data, dtype=np.uint8).copy()
        self._table = None
        if self.skipscan:
            descriptor = (
                self.descriptors.get(result.message.operation)
                if self.descriptors is not None
                else None
            )
            try:
                self._table = SeekTable.compile(data, result, descriptor)
            except SkipScanFallback as exc:
                self._skip_event(f"uncompilable-{exc.reason}")
            else:
                self._skip_event("compiled")
        report = DeserReport(DeserKind.FULL, result.leaf_count, result.leaf_count)
        self.stats[DeserKind.FULL] += 1
        return result.message, report

    def deserialize(self, data: bytes) -> tuple[DecodedMessage, DeserReport]:
        """Decode *data*, reusing the stored template when possible."""
        last = self._last_raw
        result = self._result
        if last is None or result is None or len(data) != len(last):
            if self._table is not None and last is not None:
                self._skip_event("length-drift")
            return self._full_parse(data)

        incoming = np.frombuffer(data, dtype=np.uint8)
        diff_pos = np.flatnonzero(incoming != last)
        if diff_pos.size == 0:
            self.stats[DeserKind.CONTENT_MATCH] += 1
            return result.message, DeserReport(
                DeserKind.CONTENT_MATCH, 0, result.leaf_count
            )

        regions = result.regions
        if regions.shape[0] == 0:
            return self._full_parse(data)
        starts = regions[:, 0]
        ends = regions[:, 1]
        # Each differing byte must fall inside some leaf field region
        # (value + closing tag + whitespace pad).
        owner = np.searchsorted(starts, diff_pos, side="right") - 1
        inside = (owner >= 0) & (diff_pos < ends[np.clip(owner, 0, None)])
        if not bool(inside.all()):
            # Skeleton bytes changed — not the same template.
            if self._table is not None:
                self._skip_event("skeleton-drift")
            return self._full_parse(data)

        changed = np.unique(owner)
        used_skipscan = False
        if self._table is not None:
            # Skip-scan lane: validate + parse everything, commit only
            # when the whole batch is clean; any drift or parse doubt
            # answers with the authoritative full parse instead of an
            # error from hand-computed offsets.
            trace = self.obs.enabled and self.obs.tracer.enabled
            t0 = time.perf_counter() if trace else 0.0
            try:
                parsed, vectorized = self._table.apply(data, incoming, changed)
            except SkipScanFallback as exc:
                self._skip_event(f"fallback-{exc.reason}")
                return self._full_parse(data)
            self._skip_event("hit-vector" if vectorized else "hit")
            if trace:
                self.obs.tracer.emit(
                    "skipscan",
                    duration_s=time.perf_counter() - t0,
                    leaves=parsed,
                    vectorized=vectorized,
                )
            used_skipscan = True
        else:
            try:
                for j in changed.tolist():
                    raw = data[int(starts[j]) : int(ends[j])]
                    # Trim at the (possibly moved) closing tag.
                    lt = raw.find(b"<")
                    if lt >= 0:
                        raw = raw[:lt]
                    result.set_leaf(j, raw)
            except Exception:
                # A leaf failed to re-parse (garbage bytes inside a
                # value span) after earlier leaves were already updated
                # in place.  The cached decode and the raw template now
                # disagree, so the template must not survive — drop it
                # and let the fault propagate; the next request pays
                # one full parse.
                self.reset()
                raise
        # Refresh the raw template in place (only the changed regions).
        for j in changed.tolist():
            s, e = int(starts[j]), int(ends[j])
            last[s:e] = incoming[s:e]
        self.stats[DeserKind.DIFFERENTIAL] += 1
        self.stats_last_changed = int(changed.size)
        return result.message, DeserReport(
            DeserKind.DIFFERENTIAL,
            int(changed.size),
            result.leaf_count,
            skipscan=used_skipscan,
        )

    # ------------------------------------------------------------------
    @property
    def has_template(self) -> bool:
        return self._result is not None

    def reset(self) -> None:
        """Drop the stored template (and its compiled seek table)."""
        self._last_raw = None
        self._result = None
        self._table = None

    @property
    def has_seek_table(self) -> bool:
        """True when a compiled skip-scan table is armed."""
        return self._table is not None

    def drop_seek_table(self) -> int:
        """Shed the compiled seek table; return its byte size.

        A pressure-relief tier (see :mod:`repro.hardening.overload`):
        the template itself survives, so structural matches keep
        working through the per-leaf loop — strictly slower, never
        wrong.  No recompile happens until the next full parse
        refreshes the template.  Returns 0 when no table is armed.
        """
        if self._table is None:
            return 0
        freed = self._table.approx_bytes()
        self._table = None
        self._skip_event("shed")
        return freed

    def seek_table_bytes(self) -> int:
        """Bytes held by the compiled seek table (0 when none)."""
        return 0 if self._table is None else self._table.approx_bytes()

    def approx_bytes(self) -> int:
        """Approximate retained template bytes (raw copy + decode).

        The decoded :class:`ParseResult` is dominated by its value
        containers, which scale with the raw document — fold them in
        as one extra raw-sized charge rather than walking every leaf.
        The seek table is accounted separately
        (:meth:`seek_table_bytes`) because it sheds on its own tier.
        """
        if self._last_raw is None:
            return 0
        return 2 * self._last_raw.nbytes
