"""Exception hierarchy for the bSOAP reproduction.

Every package in :mod:`repro` raises subclasses of :class:`ReproError`
so callers can catch library failures with a single ``except`` clause
while still being able to discriminate layers (XML, lexical, buffer,
SOAP, template, transport).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XMLError",
    "XMLSyntaxError",
    "LexicalError",
    "SchemaError",
    "BufferError_",
    "ChunkOverflowError",
    "SOAPError",
    "SOAPFaultError",
    "ResourceLimitError",
    "RequestTooLargeError",
    "TemplateError",
    "StructureMismatchError",
    "DUTError",
    "TransportError",
    "HTTPFramingError",
    "IncompleteHTTPError",
    "HTTPStatusError",
    "DeltaFrameError",
    "DeltaResyncError",
    "PoolError",
    "PoolTimeoutError",
    "WSDLError",
    "OverlayError",
    "AdmissionRejectedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class XMLError(ReproError):
    """Base class for XML-layer errors (writer, scanner, trie)."""


class XMLSyntaxError(XMLError):
    """Malformed XML encountered while scanning/parsing.

    Attributes
    ----------
    offset:
        Byte offset in the scanned document where the problem was
        detected, or ``-1`` when unknown.
    """

    def __init__(self, message: str, offset: int = -1) -> None:
        super().__init__(message if offset < 0 else f"{message} (at byte {offset})")
        self.offset = offset


class LexicalError(ReproError):
    """Invalid lexical (ASCII) representation of a typed value."""


class SchemaError(ReproError):
    """Type-system misuse: unknown type, bad composite definition, ..."""


class BufferError_(ReproError):
    """Base class for chunked-buffer errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`BufferError`.
    """


class ChunkOverflowError(BufferError_):
    """A write or shift did not fit in a chunk and growth was forbidden."""


class SOAPError(ReproError):
    """SOAP envelope/encoding-level error."""


class SOAPFaultError(SOAPError):
    """A SOAP Fault was generated or received.

    Carries the standard fault fields so callers can inspect them
    without re-parsing the fault document.
    """

    def __init__(self, faultcode: str, faultstring: str, detail: str = "") -> None:
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail


class ResourceLimitError(SOAPError):
    """An inbound message exceeded a configured resource limit.

    Raised by the scanner/parser layers when a
    :class:`~repro.hardening.ResourceLimits` bound (nesting depth,
    element count, attribute count, token length, body size) is
    crossed.  A subclass of :class:`SOAPError` so the service layer
    answers it with a well-formed Client fault instead of a traceback.

    Attributes
    ----------
    limit_name:
        The :class:`~repro.hardening.ResourceLimits` field that was
        exceeded (e.g. ``"max_xml_depth"``), or ``""`` when unknown.
    """

    def __init__(self, message: str, limit_name: str = "") -> None:
        super().__init__(message)
        self.limit_name = limit_name


class TemplateError(ReproError):
    """Template construction or reuse failed."""


class StructureMismatchError(TemplateError):
    """An outgoing message does not structurally match the saved template.

    The bSOAP client treats this as a first-time send (rebuilds the
    template); it is raised only by the lower-level APIs that require a
    match.
    """


class DUTError(ReproError):
    """Data Update Tracking table misuse (bad index, stale binding...)."""


class TransportError(ReproError):
    """Socket/transport-level failure."""


class HTTPFramingError(TransportError):
    """Malformed HTTP framing (bad chunk header, bad status line...).

    Raised when the peer's bytes can never become a valid message no
    matter how much more data arrives.  Streaming callers must *not*
    retry on this — see :class:`IncompleteHTTPError` for the
    recoverable case.
    """


class IncompleteHTTPError(HTTPFramingError):
    """The HTTP message is well-formed so far but not complete yet.

    Streaming parsers raise this when more bytes could still turn the
    buffer into a valid message (header block unterminated, body
    shorter than Content-Length, chunk mid-flight).  Socket readers
    catch exactly this class and keep receiving; every other
    :class:`HTTPFramingError` is a genuine protocol violation and must
    fail fast.
    """


class RequestTooLargeError(HTTPFramingError):
    """An HTTP message declares (or accumulates) more payload than the
    configured :class:`~repro.hardening.ResourceLimits` allow.

    Servers answer it with ``413 Payload Too Large`` *before* closing
    the connection, distinguishing it from generic malformed framing
    (plain :class:`HTTPFramingError` → ``400 Bad Request``).
    """


class HTTPStatusError(TransportError):
    """The server answered with a non-200 HTTP status.

    ``status >= 500`` is classified retryable by
    :class:`~repro.resilience.retry.RetryPolicy` (the server may
    recover); 4xx statuses are permanent client errors.
    """

    def __init__(
        self, status: int, detail: str = "", retry_after: "float | None" = None
    ) -> None:
        super().__init__(f"HTTP {status} from server" + (f": {detail}" if detail else ""))
        self.status = status
        #: Parsed ``Retry-After`` header value in seconds, when the
        #: server sent one (503 admission/overload rejections do).  The
        #: retry machinery uses it as the backoff hint, capped at the
        #: policy's ``max_delay``.
        self.retry_after = retry_after


class DeltaFrameError(TransportError):
    """A binary delta frame is malformed or violates a resource cap.

    Raised by :func:`repro.wire.frame.decode_frame` (bad magic,
    truncated directory, splice count past
    ``ResourceLimits.max_delta_splices``, offsets out of bounds vs the
    declared document length, CRC mismatch...).  Servers answer it
    with the resync status instead of crashing — a lying frame must
    never corrupt the session mirror.
    """

    def __init__(self, message: str, reason: str = "frame-error") -> None:
        super().__init__(message)
        #: Short machine label for ``repro_delta_frames_total{outcome}``.
        self.reason = reason


class DeltaResyncError(TransportError):
    """The delta-frame protocol needs a full-XML resynchronization.

    Server side: a structurally valid frame cannot be applied (unknown
    template id, stale layout epoch, sequence gap, document length
    mismatch) — the mirror is dropped and the client told to resend
    full XML.  Client side: the channel received the resync status and
    converts it to this error; a :class:`TransportError` subclass, so
    the default retry classifier treats it as retryable, and the
    quarantined template's next send is a baseline-re-announcing full
    serialization.
    """

    def __init__(self, message: str, reason: str = "resync") -> None:
        super().__init__(message)
        self.reason = reason


class AdmissionRejectedError(ReproError):
    """The server's admission controller refused to start a request.

    Raised by :meth:`repro.hardening.overload.AdmissionController.admit`
    when a gate (concurrency, queue depth, rate) is closed.  HTTP front
    ends translate it into ``503 Service Unavailable`` with a
    ``Retry-After`` header carrying :attr:`retry_after`; direct
    ``handle()`` callers see the exception itself.

    Attributes
    ----------
    gate:
        Which gate refused: ``"concurrency"``, ``"queue"`` or
        ``"rate"``.
    retry_after:
        Suggested client backoff in seconds (≥ 1, integral — the HTTP
        ``Retry-After`` delta-seconds form).
    """

    def __init__(self, message: str, gate: str, retry_after: int) -> None:
        super().__init__(message)
        self.gate = gate
        self.retry_after = retry_after


class PoolError(ReproError):
    """Client connection pool misuse (closed pool, foreign channel...)."""


class PoolTimeoutError(PoolError):
    """No pooled channel became available within the checkout timeout."""


class WSDLError(ReproError):
    """WSDL model or generation error."""


class OverlayError(ReproError):
    """Chunk-overlay constraints violated (e.g. non-fixed field widths)."""
