"""Per-connection server sessions for differential deserialization.

The paper's server-side template matching (§6) is stateful: the
deserializer's stored raw message must be the *previous message of the
same sender*, or the byte comparison degrades to a full parse on every
request.  A server with one shared :class:`DifferentialDeserializer`
under a thread-per-connection front end has two problems at once:

* **correctness** — two connection threads interleaving
  ``deserialize()`` calls race on the stored template and the parse
  result they both mutate in place;
* **performance** — even with a lock, interleaved streams from
  different clients never match each other, so the differential path
  is always missed.

A :class:`ServerSessionManager` fixes both by giving every accepted
connection its own :class:`ServerSession` — a private deserializer,
response-template serializer, and counters — behind a registry with a
lock and LRU eviction.  The template-per-connection invariant this
enforces is the server-side mirror of the client pool's
template-per-channel invariant (see ``docs/runtime.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Iterator, List, Optional

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.core.stats import ClientStats
from repro.hardening.limits import ResourceLimits
from repro.obs import NULL_OBS, Observability
from repro.schema.registry import TypeRegistry
from repro.server.diffdeser import DeserKind, DifferentialDeserializer
from repro.transport.loopback import CollectSink
from repro.wire.server import DeltaSession

__all__ = ["ServerSession", "ServerSessionManager", "DeserializerView"]

#: Key of the implicit session used when callers pass no session id
#: (direct ``SOAPService.handle(body)`` calls, single-client tests).
DEFAULT_SESSION = "__default__"


class ServerSession:
    """One connection's private deserializer/serializer state.

    Attributes
    ----------
    deserializer:
        This session's request-side differential deserializer.
    responder / sink:
        The response-side bSOAP serializer and the sink holding the
        last serialized response.  Response templates are per session,
        so concurrent connections cannot corrupt each other's saved
        response bytes.
    lock:
        Serializes request handling within the session.  A connection
        is served by one thread, so this is normally uncontended; it
        exists so direct ``handle()`` callers sharing a session id
        stay safe.
    """

    __slots__ = (
        "key",
        "deserializer",
        "sink",
        "responder",
        "lock",
        "requests_handled",
        "faults_returned",
        "bytes_received",
        "bytes_sent",
        "delta",
        "pinned",
        "in_use",
    )

    def __init__(
        self,
        key: Hashable,
        registry: Optional[TypeRegistry],
        response_policy: Optional[DiffPolicy],
        *,
        pinned: bool = False,
        obs: Optional[Observability] = None,
        limits: Optional[ResourceLimits] = None,
        skipscan: bool = False,
        descriptors: Optional[Dict[str, type]] = None,
    ) -> None:
        self.key = key
        self.deserializer = DifferentialDeserializer(
            registry,
            limits,
            skipscan=skipscan,
            descriptors=descriptors,
            obs=obs,
        )
        self.sink = CollectSink()
        self.responder = BSoapClient(self.sink, response_policy, obs=obs)
        self.lock = threading.Lock()
        self.requests_handled = 0
        self.faults_returned = 0
        #: Request/response payload bytes seen by this session (the
        #: server-side half of the tx/rx accounting).
        self.bytes_received = 0
        self.bytes_sent = 0
        #: Delta-frame mirror store (repro.wire.server); populated only
        #: when the front end routes announced bodies / frames here.
        self.delta = DeltaSession(limits)
        #: Pinned sessions (the default one) are never LRU-evicted.
        self.pinned = pinned
        #: Number of threads currently between acquire() and release();
        #: guarded by the manager's registry lock.
        self.in_use = 0


class DeserializerView:
    """Aggregate read-only facade over every session's deserializer.

    Presents the same ``stats`` / ``has_template`` / ``reset`` surface
    a single :class:`DifferentialDeserializer` offers, summed across
    sessions — so single-session callers see exactly the numbers they
    always did, and multi-connection servers see totals.
    """

    def __init__(self, manager: "ServerSessionManager") -> None:
        self._manager = manager

    @property
    def stats(self) -> Dict[DeserKind, int]:
        totals = dict(self._manager.retired_deser_stats())
        for session in self._manager.sessions():
            for kind, count in session.deserializer.stats.items():
                totals[kind] += count
        return totals

    @property
    def skipscan_stats(self) -> Dict[str, int]:
        """Skip-scan event counts summed over live + retired sessions."""
        totals = dict(self._manager.retired_skipscan_stats())
        for session in self._manager.sessions():
            for event, count in session.deserializer.skipscan_stats.items():
                totals[event] = totals.get(event, 0) + count
        return totals

    @property
    def has_template(self) -> bool:
        return any(
            s.deserializer.has_template for s in self._manager.sessions()
        )

    def reset(self) -> None:
        """Drop every session's stored template."""
        for session in self._manager.sessions():
            session.deserializer.reset()


class ServerSessionManager:
    """Thread-safe registry of per-connection sessions with LRU eviction.

    Parameters
    ----------
    registry / response_policy:
        Passed through to each session's deserializer and responder.
    max_sessions:
        Upper bound on live sessions.  Beyond it the least recently
        *acquired* idle session is evicted (its deserializer template
        and response templates are dropped; an evicted-then-returning
        session id simply pays one full parse to resynchronize).
        Sessions currently in use and the pinned default session are
        never evicted.
    skipscan / descriptors:
        Passed to each session's deserializer: compile a skip-scan
        seek table per template, optionally gated by WSDL-generated
        message descriptors (see :mod:`repro.schema.skipscan`).
    """

    def __init__(
        self,
        registry: Optional[TypeRegistry] = None,
        response_policy: Optional[DiffPolicy] = None,
        *,
        max_sessions: int = 256,
        obs: Optional[Observability] = None,
        limits: Optional[ResourceLimits] = None,
        skipscan: bool = False,
        descriptors: Optional[Dict[str, type]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.registry = registry
        self.response_policy = response_policy
        self.max_sessions = max_sessions
        self.skipscan = skipscan
        self.descriptors = descriptors
        #: Resource limits handed to each session's deserializer, so
        #: every connection shares one inbound threat model.
        self.limits = limits
        #: Shared by every session's responder: the registry is never
        #: reset and counts at the same sites as each responder's
        #: ClientStats, so its totals match
        #: :meth:`merged_response_stats` (retired sessions included).
        self.obs: Observability = obs if obs is not None else NULL_OBS
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[Hashable, ServerSession]" = OrderedDict()
        self.sessions_created = 0
        self.evictions = 0
        # Retired (closed/evicted) sessions keep counting in aggregate
        # views: their stats are folded in here before deletion.
        self._retired_deser: Dict[DeserKind, int] = {k: 0 for k in DeserKind}
        self._retired_skipscan: Dict[str, int] = {}
        self._retired_responses = ClientStats()
        self._retired_handled = 0
        self._retired_faulted = 0
        self._retired_rx = 0
        self._retired_tx = 0
        self._retired_delta_applied = 0
        self._retired_delta_resyncs = 0
        self._retired_delta_saved = 0

    # ------------------------------------------------------------------
    def acquire(self, key: Optional[Hashable]) -> ServerSession:
        """Fetch (or create) the session for *key* and pin it in use.

        Callers must pair every ``acquire`` with a :meth:`release`.
        """
        if key is None:
            key = DEFAULT_SESSION
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = ServerSession(
                    key,
                    self.registry,
                    self.response_policy,
                    pinned=key == DEFAULT_SESSION,
                    obs=self.obs,
                    limits=self.limits,
                    skipscan=self.skipscan,
                    descriptors=self.descriptors,
                )
                self._sessions[key] = session
                self.sessions_created += 1
                self._evict_locked()
            else:
                self._sessions.move_to_end(key)
            session.in_use += 1
            return session

    def release(self, session: ServerSession) -> None:
        with self._lock:
            session.in_use = max(0, session.in_use - 1)

    def _evict_locked(self) -> None:
        """Drop LRU idle sessions beyond :attr:`max_sessions`."""
        while len(self._sessions) > self.max_sessions:
            victim_key = None
            for key, session in self._sessions.items():  # LRU first
                if session.in_use == 0 and not session.pinned:
                    victim_key = key
                    break
            if victim_key is None:
                return  # everything is busy or pinned; stay over budget
            self._retire_locked(self._sessions.pop(victim_key))
            self.evictions += 1

    def _retire_locked(self, session: ServerSession) -> None:
        """Fold a dying session's stats into the retired totals."""
        for kind, count in session.deserializer.stats.items():
            self._retired_deser[kind] += count
        for event, count in session.deserializer.skipscan_stats.items():
            self._retired_skipscan[event] = (
                self._retired_skipscan.get(event, 0) + count
            )
        self._retired_responses.merge_from(session.responder.stats)
        self._retired_handled += session.requests_handled
        self._retired_faulted += session.faults_returned
        self._retired_rx += session.bytes_received
        self._retired_tx += session.bytes_sent
        self._retired_delta_applied += session.delta.frames_applied
        self._retired_delta_resyncs += session.delta.resyncs
        self._retired_delta_saved += session.delta.bytes_saved

    def close_session(self, key: Optional[Hashable]) -> None:
        """Free *key*'s session eagerly (connection closed).

        A no-op for unknown keys, busy sessions, and the pinned
        default session.
        """
        if key is None:
            return
        with self._lock:
            session = self._sessions.get(key)
            if session is not None and session.in_use == 0 and not session.pinned:
                self._retire_locked(self._sessions.pop(key))

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def sessions(self) -> List[ServerSession]:
        """Snapshot of live sessions (safe to iterate without the lock)."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __iter__(self) -> Iterator[ServerSession]:
        return iter(self.sessions())

    def deserializer_view(self) -> DeserializerView:
        return DeserializerView(self)

    def retired_deser_stats(self) -> Dict[DeserKind, int]:
        """Deserializer stats carried over from retired sessions."""
        with self._lock:
            return dict(self._retired_deser)

    def retired_skipscan_stats(self) -> Dict[str, int]:
        """Skip-scan event counts carried over from retired sessions."""
        with self._lock:
            return dict(self._retired_skipscan)

    def merged_response_stats(self) -> ClientStats:
        """Response-side ClientStats summed over all sessions, live
        and retired."""
        merged = ClientStats()
        with self._lock:
            merged.merge_from(self._retired_responses)
        for session in self.sessions():
            merged.merge_from(session.responder.stats)
        return merged

    def merged_counters(self) -> Dict[str, int]:
        with self._lock:
            handled = self._retired_handled
            faulted = self._retired_faulted
            rx = self._retired_rx
            tx = self._retired_tx
            delta_applied = self._retired_delta_applied
            delta_resyncs = self._retired_delta_resyncs
            delta_saved = self._retired_delta_saved
        for session in self.sessions():
            handled += session.requests_handled
            faulted += session.faults_returned
            rx += session.bytes_received
            tx += session.bytes_sent
            delta_applied += session.delta.frames_applied
            delta_resyncs += session.delta.resyncs
            delta_saved += session.delta.bytes_saved
        return {
            "requests_handled": handled,
            "faults_returned": faulted,
            "bytes_received": rx,
            "bytes_sent": tx,
            "delta_frames_applied": delta_applied,
            "delta_resyncs": delta_resyncs,
            "delta_bytes_saved": delta_saved,
            "sessions": len(self),
            "sessions_created": self.sessions_created,
            "evictions": self.evictions,
        }
