"""Per-connection server sessions for differential deserialization.

The paper's server-side template matching (§6) is stateful: the
deserializer's stored raw message must be the *previous message of the
same sender*, or the byte comparison degrades to a full parse on every
request.  A server with one shared :class:`DifferentialDeserializer`
under a thread-per-connection front end has two problems at once:

* **correctness** — two connection threads interleaving
  ``deserialize()`` calls race on the stored template and the parse
  result they both mutate in place;
* **performance** — even with a lock, interleaved streams from
  different clients never match each other, so the differential path
  is always missed.

A :class:`ServerSessionManager` fixes both by giving every accepted
connection its own :class:`ServerSession` — a private deserializer,
response-template serializer, and counters — behind a registry with a
lock and LRU eviction.  The template-per-connection invariant this
enforces is the server-side mirror of the client pool's
template-per-channel invariant (see ``docs/runtime.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterator, List, Optional

from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.core.stats import ClientStats
from repro.hardening.limits import ResourceLimits
from repro.hardening.overload import SHED_TIERS, MemoryAccountant
from repro.obs import NULL_OBS, Observability
from repro.schema.registry import TypeRegistry
from repro.server.diffdeser import DeserKind, DifferentialDeserializer
from repro.transport.loopback import LatestSink
from repro.wire.server import DeltaSession

__all__ = ["ServerSession", "ServerSessionManager", "DeserializerView"]

#: Key of the implicit session used when callers pass no session id
#: (direct ``SOAPService.handle(body)`` calls, single-client tests).
DEFAULT_SESSION = "__default__"


class ServerSession:
    """One connection's private deserializer/serializer state.

    Attributes
    ----------
    deserializer:
        This session's request-side differential deserializer.
    responder / sink:
        The response-side bSOAP serializer and the sink holding the
        last serialized response.  Response templates are per session,
        so concurrent connections cannot corrupt each other's saved
        response bytes.
    lock:
        Serializes request handling within the session.  A connection
        is served by one thread, so this is normally uncontended; it
        exists so direct ``handle()`` callers sharing a session id
        stay safe.
    """

    __slots__ = (
        "key",
        "deserializer",
        "sink",
        "responder",
        "lock",
        "requests_handled",
        "faults_returned",
        "bytes_received",
        "bytes_sent",
        "delta",
        "pinned",
        "in_use",
        "accounted",
    )

    def __init__(
        self,
        key: Hashable,
        registry: Optional[TypeRegistry],
        response_policy: Optional[DiffPolicy],
        *,
        pinned: bool = False,
        obs: Optional[Observability] = None,
        limits: Optional[ResourceLimits] = None,
        skipscan: bool = False,
        descriptors: Optional[Dict[str, type]] = None,
    ) -> None:
        self.key = key
        self.deserializer = DifferentialDeserializer(
            registry,
            limits,
            skipscan=skipscan,
            descriptors=descriptors,
            obs=obs,
        )
        self.sink = LatestSink()
        self.responder = BSoapClient(self.sink, response_policy, obs=obs)
        self.lock = threading.Lock()
        self.requests_handled = 0
        self.faults_returned = 0
        #: Request/response payload bytes seen by this session (the
        #: server-side half of the tx/rx accounting).
        self.bytes_received = 0
        self.bytes_sent = 0
        #: Delta-frame mirror store (repro.wire.server); populated only
        #: when the front end routes announced bodies / frames here.
        self.delta = DeltaSession(limits)
        #: Pinned sessions (the default one) are never LRU-evicted.
        self.pinned = pinned
        #: Number of threads currently between acquire() and release();
        #: guarded by the manager's registry lock.
        self.in_use = 0
        #: Per-component bytes last charged against the manager's
        #: :class:`~repro.hardening.overload.MemoryAccountant`; the
        #: manager's ``note_usage`` keeps it in sync after requests.
        self.accounted: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def state_components(self) -> Dict[str, int]:
        """Current state bytes split by ledger component.

        Keys match :data:`~repro.hardening.overload.STATE_COMPONENTS`:
        ``deser`` (the deserializer's raw template + decode), the
        compiled ``seektable``, delta ``mirror`` documents, and
        ``response`` templates (store footprint + retained last
        response).
        """
        return {
            "deser": self.deserializer.approx_bytes(),
            "seektable": self.deserializer.seek_table_bytes(),
            "mirror": self.delta.approx_bytes(),
            "response": self.responder.store.approx_bytes()
            + self.sink.last_bytes(),
        }

    def approx_bytes(self) -> int:
        """Total state bytes this session currently holds."""
        return sum(self.state_components().values())


class DeserializerView:
    """Aggregate read-only facade over every session's deserializer.

    Presents the same ``stats`` / ``has_template`` / ``reset`` surface
    a single :class:`DifferentialDeserializer` offers, summed across
    sessions — so single-session callers see exactly the numbers they
    always did, and multi-connection servers see totals.
    """

    def __init__(self, manager: "ServerSessionManager") -> None:
        self._manager = manager

    @property
    def stats(self) -> Dict[DeserKind, int]:
        totals = dict(self._manager.retired_deser_stats())
        for session in self._manager.sessions():
            for kind, count in session.deserializer.stats.items():
                totals[kind] += count
        return totals

    @property
    def skipscan_stats(self) -> Dict[str, int]:
        """Skip-scan event counts summed over live + retired sessions."""
        totals = dict(self._manager.retired_skipscan_stats())
        for session in self._manager.sessions():
            for event, count in session.deserializer.skipscan_stats.items():
                totals[event] = totals.get(event, 0) + count
        return totals

    @property
    def has_template(self) -> bool:
        return any(
            s.deserializer.has_template for s in self._manager.sessions()
        )

    def reset(self) -> None:
        """Drop every session's stored template."""
        for session in self._manager.sessions():
            session.deserializer.reset()


class ServerSessionManager:
    """Thread-safe registry of per-connection sessions with LRU eviction.

    Parameters
    ----------
    registry / response_policy:
        Passed through to each session's deserializer and responder.
    max_sessions:
        Upper bound on live sessions.  Beyond it the least recently
        *acquired* idle session is evicted (its deserializer template
        and response templates are dropped; an evicted-then-returning
        session id simply pays one full parse to resynchronize).
        Sessions currently in use and the pinned default session are
        never evicted.
    skipscan / descriptors:
        Passed to each session's deserializer: compile a skip-scan
        seek table per template, optionally gated by WSDL-generated
        message descriptors (see :mod:`repro.schema.skipscan`).
    accountant:
        Optional :class:`~repro.hardening.overload.MemoryAccountant`.
        When present, every session's state bytes are charged against
        it (:meth:`note_usage`) and :meth:`relieve_pressure` sheds
        state through the tier ladder whenever the budget is exceeded.
        When absent the manager behaves exactly as before.
    """

    def __init__(
        self,
        registry: Optional[TypeRegistry] = None,
        response_policy: Optional[DiffPolicy] = None,
        *,
        max_sessions: int = 256,
        obs: Optional[Observability] = None,
        limits: Optional[ResourceLimits] = None,
        skipscan: bool = False,
        descriptors: Optional[Dict[str, type]] = None,
        accountant: Optional[MemoryAccountant] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.registry = registry
        self.response_policy = response_policy
        self.max_sessions = max_sessions
        self.skipscan = skipscan
        self.descriptors = descriptors
        #: Resource limits handed to each session's deserializer, so
        #: every connection shares one inbound threat model.
        self.limits = limits
        #: Shared by every session's responder: the registry is never
        #: reset and counts at the same sites as each responder's
        #: ClientStats, so its totals match
        #: :meth:`merged_response_stats` (retired sessions included).
        self.obs: Observability = obs if obs is not None else NULL_OBS
        #: Byte ledger for the overload story (None = unaccounted).
        self.accountant = accountant
        #: Sessions evicted by the pressure ladder specifically (also
        #: counted in :attr:`evictions` and the accountant's sheds).
        self.pressure_evictions = 0
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[Hashable, ServerSession]" = OrderedDict()
        self.sessions_created = 0
        self.evictions = 0
        # Retired (closed/evicted) sessions keep counting in aggregate
        # views: their stats are folded in here before deletion.
        self._retired_deser: Dict[DeserKind, int] = {k: 0 for k in DeserKind}
        self._retired_skipscan: Dict[str, int] = {}
        self._retired_responses = ClientStats()
        self._retired_handled = 0
        self._retired_faulted = 0
        self._retired_rx = 0
        self._retired_tx = 0
        self._retired_delta_applied = 0
        self._retired_delta_resyncs = 0
        self._retired_delta_saved = 0
        #: Optional front-end census callback (set by a serving front
        #: end on start): returns live connection/accept counters that
        #: :meth:`merged_counters` folds in, so one call reconciles
        #: session state *and* the socket layer above it.
        self._frontend_census: Optional[Callable[[], Dict[str, int]]] = None

    def set_frontend_census(
        self, census: "Optional[Callable[[], Dict[str, int]]]"
    ) -> None:
        """Attach (or with ``None`` detach) a front-end counter source."""
        self._frontend_census = census

    # ------------------------------------------------------------------
    def acquire(self, key: Optional[Hashable]) -> ServerSession:
        """Fetch (or create) the session for *key* and pin it in use.

        Callers must pair every ``acquire`` with a :meth:`release`.
        """
        if key is None:
            key = DEFAULT_SESSION
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = ServerSession(
                    key,
                    self.registry,
                    self.response_policy,
                    pinned=key == DEFAULT_SESSION,
                    obs=self.obs,
                    limits=self.limits,
                    skipscan=self.skipscan,
                    descriptors=self.descriptors,
                )
                self._sessions[key] = session
                self.sessions_created += 1
                self._evict_locked()
            else:
                self._sessions.move_to_end(key)
            session.in_use += 1
            return session

    def release(self, session: ServerSession) -> None:
        with self._lock:
            session.in_use = max(0, session.in_use - 1)

    def _evict_locked(self) -> None:
        """Drop LRU idle sessions beyond :attr:`max_sessions`."""
        while len(self._sessions) > self.max_sessions:
            victim_key = None
            for key, session in self._sessions.items():  # LRU first
                if session.in_use == 0 and not session.pinned:
                    victim_key = key
                    break
            if victim_key is None:
                return  # everything is busy or pinned; stay over budget
            self._retire_locked(self._sessions.pop(victim_key))
            self.evictions += 1

    def _retire_locked(self, session: ServerSession) -> None:
        """Fold a dying session's stats into the retired totals."""
        if self.accountant is not None:
            for component, nbytes in session.accounted.items():
                if nbytes:
                    self.accountant.charge(component, -nbytes)
            session.accounted = {}
        for kind, count in session.deserializer.stats.items():
            self._retired_deser[kind] += count
        for event, count in session.deserializer.skipscan_stats.items():
            self._retired_skipscan[event] = (
                self._retired_skipscan.get(event, 0) + count
            )
        self._retired_responses.merge_from(session.responder.stats)
        self._retired_handled += session.requests_handled
        self._retired_faulted += session.faults_returned
        self._retired_rx += session.bytes_received
        self._retired_tx += session.bytes_sent
        self._retired_delta_applied += session.delta.frames_applied
        self._retired_delta_resyncs += session.delta.resyncs
        self._retired_delta_saved += session.delta.bytes_saved

    def close_session(self, key: Optional[Hashable]) -> None:
        """Free *key*'s session eagerly (connection closed).

        A no-op for unknown keys, busy sessions, and the pinned
        default session.
        """
        if key is None:
            return
        with self._lock:
            session = self._sessions.get(key)
            if session is not None and session.in_use == 0 and not session.pinned:
                self._retire_locked(self._sessions.pop(key))

    # ------------------------------------------------------------------
    # memory accounting + pressure relief
    # ------------------------------------------------------------------
    def note_usage(self, session: ServerSession) -> None:
        """Re-measure *session* and charge the deltas to the ledger.

        O(this session) — callers invoke it for the session that just
        handled a request (while still holding its lock), so the global
        ledger stays current without ever walking the registry.  A
        no-op without an accountant.
        """
        accountant = self.accountant
        if accountant is None:
            return
        current = session.state_components()
        previous = session.accounted
        for component, nbytes in current.items():
            delta = nbytes - previous.get(component, 0)
            if delta:
                accountant.charge(component, delta)
        session.accounted = current

    def relieve_pressure(self) -> Dict[str, int]:
        """Shed state until usage is back under the low watermark.

        The tier ladder, cheapest client recovery first (every shed is
        a speed loss, never a correctness loss):

        1. ``mirror`` — LRU delta mirrors from idle sessions; the
           client's next frame gets a 409 resync and re-announces
           full XML.
        2. ``seektable`` — compiled seek tables from idle sessions;
           structural matches fall back to the per-leaf loop, full
           parse stays authoritative.
        3. ``session`` — LRU idle unpinned sessions retire outright;
           a returning client pays one first-time send.

        Only idle sessions (``in_use == 0``) are touched, so nothing
        sheds under an in-flight request.  Returns the sheds performed
        this call by tier; when every tier is exhausted and usage still
        exceeds the budget (all remaining state is busy/pinned), the
        accountant records an over-budget tick instead of failing
        anything.
        """
        accountant = self.accountant
        if accountant is None:
            return {}
        # One ledger query up front; the deficit is then tracked
        # locally as sheds free bytes (charge() keeps the ledger in
        # step).  Probing the locked ledger per session per tier made
        # an over-budget pass O(sessions) in lock round-trips — the
        # dominant cost at thousands of sessions.
        needed = accountant.relief_needed()
        if needed == 0:
            return {}
        sheds = {tier: 0 for tier in SHED_TIERS}
        with self._lock:
            # Tier 1: delta mirrors, LRU-session-first then LRU-mirror
            # within each session.
            for session in list(self._sessions.values()):
                if needed <= 0:
                    break
                if session.in_use:
                    continue
                while needed > 0:
                    freed = session.delta.drop_lru()
                    if freed == 0:
                        break
                    accountant.charge("mirror", -freed)
                    session.accounted["mirror"] = max(
                        0, session.accounted.get("mirror", 0) - freed
                    )
                    accountant.note_shed("mirror")
                    sheds["mirror"] += 1
                    needed -= freed
            # Tier 2: compiled seek tables.
            if needed > 0:
                for session in list(self._sessions.values()):
                    if needed <= 0:
                        break
                    if session.in_use:
                        continue
                    freed = session.deserializer.drop_seek_table()
                    if freed == 0:
                        continue
                    accountant.charge("seektable", -freed)
                    session.accounted["seektable"] = max(
                        0, session.accounted.get("seektable", 0) - freed
                    )
                    accountant.note_shed("seektable")
                    sheds["seektable"] += 1
                    needed -= freed
            # Tier 3: LRU idle sessions retire outright.
            while needed > 0:
                victim_key = None
                for key, session in self._sessions.items():  # LRU first
                    if session.in_use == 0 and not session.pinned:
                        victim_key = key
                        break
                if victim_key is None:
                    break
                victim = self._sessions.pop(victim_key)
                freed = sum(victim.accounted.values())
                self._retire_locked(victim)
                self.evictions += 1
                self.pressure_evictions += 1
                accountant.note_shed("session")
                sheds["session"] += 1
                needed -= freed
            if needed > 0 and accountant.relief_needed() > 0:
                accountant.note_over_budget()
        return {tier: count for tier, count in sheds.items() if count}

    def state_bytes(self) -> int:
        """Accounted state bytes (0 without an accountant)."""
        return 0 if self.accountant is None else self.accountant.usage_bytes

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def sessions(self) -> List[ServerSession]:
        """Snapshot of live sessions (safe to iterate without the lock)."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __iter__(self) -> Iterator[ServerSession]:
        return iter(self.sessions())

    def deserializer_view(self) -> DeserializerView:
        return DeserializerView(self)

    def retired_deser_stats(self) -> Dict[DeserKind, int]:
        """Deserializer stats carried over from retired sessions."""
        with self._lock:
            return dict(self._retired_deser)

    def retired_skipscan_stats(self) -> Dict[str, int]:
        """Skip-scan event counts carried over from retired sessions."""
        with self._lock:
            return dict(self._retired_skipscan)

    def merged_response_stats(self) -> ClientStats:
        """Response-side ClientStats summed over all sessions, live
        and retired."""
        merged = ClientStats()
        with self._lock:
            merged.merge_from(self._retired_responses)
        for session in self.sessions():
            merged.merge_from(session.responder.stats)
        return merged

    def merged_counters(self) -> Dict[str, int]:
        with self._lock:
            handled = self._retired_handled
            faulted = self._retired_faulted
            rx = self._retired_rx
            tx = self._retired_tx
            delta_applied = self._retired_delta_applied
            delta_resyncs = self._retired_delta_resyncs
            delta_saved = self._retired_delta_saved
        for session in self.sessions():
            handled += session.requests_handled
            faulted += session.faults_returned
            rx += session.bytes_received
            tx += session.bytes_sent
            delta_applied += session.delta.frames_applied
            delta_resyncs += session.delta.resyncs
            delta_saved += session.delta.bytes_saved
        out = {
            "requests_handled": handled,
            "faults_returned": faulted,
            "bytes_received": rx,
            "bytes_sent": tx,
            "delta_frames_applied": delta_applied,
            "delta_resyncs": delta_resyncs,
            "delta_bytes_saved": delta_saved,
            "sessions": len(self),
            "sessions_created": self.sessions_created,
            "evictions": self.evictions,
            "pressure_evictions": self.pressure_evictions,
        }
        if self.accountant is not None:
            out.update(self.accountant.counters())
        census = self._frontend_census
        if census is not None:
            out.update(census())
        return out
