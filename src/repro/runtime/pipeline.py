"""Pipelined differential sends: overlap serialization with waiting.

A plain :meth:`RPCChannel.call` is strictly sequential — serialize,
write, then idle until the response arrives.  Kohring & Lo Iacono's
observation (non-blocking signature of large SOAP messages) applies
directly to differential serialization: the rewrite of call *i+1* is
pure CPU work that can run while call *i*'s response is still on the
wire.  :class:`PipelinedChannel` realizes that overlap on one
connection with two threads:

* the **sender** drains a queue of submitted messages, runs the
  differential rewrite, and writes the request (HTTP pipelining: the
  server answers in order);
* the **receiver** awaits responses FIFO and resolves each call's
  :class:`~concurrent.futures.Future`.

The in-flight window is bounded (*depth*): :meth:`submit` blocks once
``depth`` calls are unanswered, which is the backpressure that keeps a
fast producer from buffering unbounded template mutations.

Differential correctness: serializing call *i+1* mutates the same
template call *i* used, but *i*'s bytes were fully written to the
socket before *i+1*'s rewrite starts (sends are synchronous within
the sender thread), and the server applies requests in arrival order —
so every diff is against exactly the bytes the server saw last.

Failure semantics are deliberately simpler than ``call()``'s retry
loop: any transport failure fails **all** unanswered calls (their
responses are indistinguishable once the connection is gone),
quarantines the affected templates so the next send of each structure
is a forced full resynchronization, and drops the connection.  The
channel stays usable — the next submitted call redials.  Callers who
need at-least-once semantics resubmit failed futures.

:class:`PipelinedSender` scales this across a
:class:`~repro.runtime.pool.ClientPool`: one worker per pooled
channel, each wrapping its checkout in a :class:`PipelinedChannel`,
all fed from one bounded job queue.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.channel import RPCChannel
from repro.core.stats import SendReport
from repro.errors import PoolError, ReproError, SOAPFaultError, TransportError
from repro.runtime.pool import ClientPool
from repro.soap.message import SOAPMessage
from repro.soap.rpc import RPCResponse

__all__ = ["PipelinedCall", "PipelinedChannel", "PipelinedSender"]

_STOP = object()


class PipelinedCall:
    """Resolved value of a pipelined call's future."""

    __slots__ = ("response", "send_report")

    def __init__(self, response: RPCResponse, send_report: SendReport) -> None:
        self.response = response
        self.send_report = send_report


class PipelinedChannel:
    """Overlapped send/receive pipelining over one RPC channel.

    The wrapped channel is exclusively owned for the wrapper's
    lifetime (do not call ``channel.call`` concurrently).

    Parameters
    ----------
    depth:
        Maximum unanswered calls in flight; :meth:`submit` blocks when
        the window is full (backpressure).
    """

    def __init__(self, channel: RPCChannel, *, depth: int = 8) -> None:
        if depth < 1:
            raise PoolError("pipeline depth must be >= 1")
        self.channel = channel
        self.depth = depth
        self._window = threading.Semaphore(depth)
        self._sendq: "queue.Queue[object]" = queue.Queue()
        # Sent-but-unanswered calls, FIFO (message, future, report,
        # send-start time); guarded by _cv.
        self._inflight: List[Tuple[SOAPMessage, Future, SendReport, float]] = []
        self._cv = threading.Condition()
        self._closed = False
        self._pending = 0  # submitted but not yet resolved
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self._send_thread = threading.Thread(
            target=self._send_loop, name="pipeline-send", daemon=True
        )
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name="pipeline-recv", daemon=True
        )
        self._send_thread.start()
        self._recv_thread.start()

    # ------------------------------------------------------------------
    def submit(self, message: SOAPMessage) -> "Future[PipelinedCall]":
        """Queue *message*; returns a future resolving to
        :class:`PipelinedCall` (or raising the call's error)."""
        if self._closed:
            raise PoolError("pipelined channel is closed")
        self._window.acquire()
        if self._closed:  # closed while we waited on backpressure
            self._window.release()
            raise PoolError("pipelined channel is closed")
        future: "Future[PipelinedCall]" = Future()
        with self._cv:
            self._pending += 1
            self.submitted += 1
        self._sendq.put((message, future))
        return future

    def map(
        self, messages: Iterable[SOAPMessage]
    ) -> List["Future[PipelinedCall]"]:
        """Submit every message; returns the futures in order."""
        return [self.submit(m) for m in messages]

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted call resolved; False on timeout."""
        with self._cv:
            return self._cv.wait_for(lambda: self._pending == 0, timeout)

    # ------------------------------------------------------------------
    def _resolve(self, future: Future, *, result=None, exc=None, fault=False) -> None:
        """Resolve one call and release its window slot exactly once."""
        with self._cv:
            self._pending -= 1
            if exc is None:
                self.completed += 1
            elif fault:
                self.completed += 1
            else:
                self.failed += 1
            self._cv.notify_all()
        if exc is None:
            future.set_result(result)
        else:
            future.set_exception(exc)
        self._window.release()

    def _send_loop(self) -> None:
        channel = self.channel
        while True:
            item = self._sendq.get()
            if item is _STOP:
                with self._cv:
                    self._cv.notify_all()
                return
            message, future = item  # type: ignore[misc]
            started = perf_counter()
            try:
                report = channel.send_request(message)
            except ReproError as exc:
                # The client already rolled back its template epoch and
                # the reconnecting transport dropped the socket; any
                # in-flight responses died with the connection.
                channel.breaker.record_failure()
                channel.client.quarantine(message)
                self._abort_inflight(exc)
                self._resolve(future, exc=exc)
                continue
            with self._cv:
                self._inflight.append((message, future, report, started))
                self._cv.notify_all()

    def _recv_loop(self) -> None:
        channel = self.channel
        while True:
            with self._cv:
                self._cv.wait_for(lambda: self._inflight or self._closed)
                if not self._inflight:
                    if self._closed:
                        return
                    continue
                message, future, report, started = self._inflight[0]
            try:
                response = channel.recv_response()
            except SOAPFaultError as exc:
                # Round trip succeeded; the server answered a Fault.
                channel.breaker.record_success()
                channel.count_call(fault=True)
                channel.obs.record_call(perf_counter() - started)
                with self._cv:
                    self._inflight.pop(0)
                self._resolve(future, exc=exc, fault=True)
                continue
            except ReproError as exc:
                channel.breaker.record_failure()
                self._abort_inflight(exc)
                continue
            channel.breaker.record_success()
            channel.count_call()
            channel.obs.record_call(perf_counter() - started)
            channel.last_send_report = report
            with self._cv:
                self._inflight.pop(0)
            self._resolve(future, result=PipelinedCall(response, report))

    def _abort_inflight(self, exc: ReproError) -> None:
        """Fail every unanswered call after a connection-level error.

        Responses for sent-but-unanswered calls are lost with the
        connection; their templates are quarantined so each structure's
        next send resynchronizes the (new) server session with a full
        serialization.
        """
        with self._cv:
            dead = self._inflight
            self._inflight = []
        # Ensure no stale half-response survives on the socket.
        disconnect = getattr(self.channel._raw, "disconnect", None)
        if disconnect is not None:
            disconnect()
        for message, future, _report, _started in dead:
            self.channel.client.quarantine(message)
            self._resolve(
                future,
                exc=TransportError(f"pipelined response lost: {exc}"),
            )

    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding calls, then stop both worker threads."""
        if self._closed:
            return
        self.drain(timeout)
        self._closed = True
        self._sendq.put(_STOP)
        with self._cv:
            self._cv.notify_all()
        self._send_thread.join(timeout=timeout)
        self._recv_thread.join(timeout=timeout)
        # A submit that raced the close may have queued behind _STOP.
        while True:
            try:
                item = self._sendq.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            _message, future = item  # type: ignore[misc]
            self._resolve(future, exc=PoolError("pipelined channel closed"))
        # Anything still unresolved (drain timed out) fails loudly.
        with self._cv:
            dead = self._inflight
            self._inflight = []
        for _message, future, _report, _started in dead:
            self._resolve(future, exc=TransportError("pipelined channel closed"))

    def __enter__(self) -> "PipelinedChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PipelinedSender:
    """Fan calls out across a pool, pipelining within each channel.

    One worker thread per pooled channel holds a checkout for the
    sender's lifetime (template affinity: all calls a worker takes diff
    against its own channel's last-sent bytes) and feeds a
    :class:`PipelinedChannel`.  Jobs come from one shared bounded
    queue — :meth:`submit` blocks when it fills, giving end-to-end
    backpressure of ``queue_depth + size × depth`` outstanding calls.
    """

    def __init__(
        self,
        pool: ClientPool,
        *,
        depth: int = 4,
        queue_depth: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.depth = depth
        self._jobs: "queue.Queue[object]" = queue.Queue(
            maxsize=queue_depth or pool.size * depth
        )
        self._closed = False
        self._workers: List[threading.Thread] = []
        for i in range(pool.size):
            worker = threading.Thread(
                target=self._worker_loop, name=f"pipelined-sender-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)

    # ------------------------------------------------------------------
    def submit(self, message: SOAPMessage) -> "Future[PipelinedCall]":
        if self._closed:
            raise PoolError("pipelined sender is closed")
        future: "Future[PipelinedCall]" = Future()
        self._jobs.put((message, future))
        return future

    def map(self, messages: Sequence[SOAPMessage]) -> List[PipelinedCall]:
        """Submit everything, wait, and return results in order.

        Raises the first (by submission order) failed call's
        exception; later futures still settle in the background.
        """
        futures = [self.submit(m) for m in messages]
        return [f.result() for f in futures]

    def _worker_loop(self) -> None:
        try:
            channel = self.pool.checkout()
        except ReproError:
            return  # pool closed under us
        pipe = PipelinedChannel(channel, depth=self.depth)
        try:
            while True:
                item = self._jobs.get()
                if item is _STOP:
                    return
                message, future = item  # type: ignore[misc]
                try:
                    inner = pipe.submit(message)
                except ReproError as exc:
                    future.set_exception(exc)
                    continue
                _chain(inner, future)
        finally:
            pipe.close()
            self.pool.checkin(channel)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._jobs.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=10.0)

    def __enter__(self) -> "PipelinedSender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _chain(inner: Future, outer: Future) -> None:
    """Propagate *inner*'s outcome into *outer* when it resolves."""

    def copy(done: Future) -> None:
        exc = done.exception()
        if exc is not None:
            outer.set_exception(exc)
        else:
            outer.set_result(done.result())

    inner.add_done_callback(copy)
