"""Concurrent runtime: client pools, pipelined sends, server sessions.

The paper measures one stub, one template, one connection.  This
package is the layer that makes differential serialization hold up
under many concurrent clients (the ROADMAP's "heavy traffic" north
star), built on PR 1's resilience machinery:

* :class:`~repro.runtime.pool.ClientPool` — N exclusively-checked-out
  :class:`~repro.channel.RPCChannel`\\ s with per-channel template
  sessions and health-aware replacement,
* :class:`~repro.runtime.pipeline.PipelinedChannel` /
  :class:`~repro.runtime.pipeline.PipelinedSender` — overlap the
  differential rewrite of call *i+1* with call *i*'s response wait
  (bounded in-flight window, backpressure),
* :class:`~repro.runtime.sessions.ServerSessionManager` — one
  differential deserializer + response-template serializer per
  accepted connection, behind a locked LRU registry,
* :mod:`repro.runtime.loadgen` — the calls/sec + latency-percentile
  harness behind ``benchmarks/bench_runtime_throughput.py``.

See ``docs/runtime.md`` for the design and the template-per-connection
invariant both sides enforce.
"""

from repro.runtime.sessions import (
    DeserializerView,
    ServerSession,
    ServerSessionManager,
)

__all__ = [
    "ClientPool",
    "PipelinedCall",
    "PipelinedChannel",
    "PipelinedSender",
    "ServerSession",
    "ServerSessionManager",
    "DeserializerView",
]

# The client-side classes import repro.channel, which itself imports
# the server package that imports repro.runtime.sessions — so they are
# loaded lazily (PEP 562) to keep the package import-order neutral.
_LAZY = {
    "ClientPool": "repro.runtime.pool",
    "PipelinedCall": "repro.runtime.pipeline",
    "PipelinedChannel": "repro.runtime.pipeline",
    "PipelinedSender": "repro.runtime.pipeline",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
