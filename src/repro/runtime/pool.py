"""A pool of differential RPC channels.

Differential serialization makes connections *stateful*: each
:class:`~repro.channel.RPCChannel` owns a template store whose saved
bytes mirror what went out on **that** connection, and the server keeps
the matching per-connection deserializer session.  A call checked out
on channel *k* therefore diffs against channel *k*'s last-sent bytes —
templates must never migrate between connections mid-flight.  The pool
enforces that invariant structurally: a channel is exclusively owned
between :meth:`checkout` and :meth:`checkin`, and every channel has a
private :class:`~repro.core.store.TemplateStore`.

Health management rides on PR 1's resilience machinery: pooled
channels use reconnecting transports and circuit breakers, so most
failures self-heal (redial, degrade to full sends).  A channel that
reports itself unrecoverable (``broken`` — one-shot transport died) is
retired at checkin and replaced with a freshly dialed one; its
counters are folded into the pool totals so nothing is lost from
:meth:`stats`.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.channel import RPCChannel
from repro.core.policy import DiffPolicy
from repro.errors import PoolError, PoolTimeoutError
from repro.obs import NULL_OBS, Observability
from repro.resilience.budget import RetryBudget
from repro.schema.registry import TypeRegistry
from repro.soap.message import SOAPMessage
from repro.soap.rpc import RPCResponse

__all__ = ["ClientPool"]

#: channel_stats keys that are summable counters.
_COUNTER_KEYS = (
    "calls",
    "faults",
    "retries",
    "retries_denied",
    "reconnects",
    "rollbacks",
    "forced_full_sends",
    "breaker_opens",
)


class ClientPool:
    """``size`` exclusively-checked-out RPC channels to one server.

    Parameters
    ----------
    host, port:
        The HTTP SOAP server every pooled channel dials.
    size:
        Number of channels (= maximum concurrent in-flight calls for
        plain ``call``; the pipelined sender multiplies this by its
        per-channel window).
    registry, policy, http_mode, path:
        Forwarded to each :class:`RPCChannel`.  The policy object is
        shared (it is read-only configuration); template stores are
        never shared.
    channel_factory:
        Override channel construction — receives the channel index,
        must return an :class:`RPCChannel`.  Tests inject
        fault-wrapped transports here.
    checkout_timeout:
        Default :meth:`checkout` wait in seconds (``None`` = forever).
    retry_budget:
        Optional :class:`~repro.resilience.budget.RetryBudget` shared
        by **every** pooled channel (default-built ones; a custom
        ``channel_factory`` wires it itself via :attr:`retry_budget`).
        Bounds the fleet's aggregate retry rate so N channels backing
        off cannot multiply an overload.
    """

    def __init__(
        self,
        host: str = "",
        port: int = 0,
        size: int = 4,
        *,
        registry: Optional[TypeRegistry] = None,
        policy: Optional[DiffPolicy] = None,
        http_mode: str = "chunked",
        path: str = "/soap",
        channel_factory: Optional[Callable[[int], RPCChannel]] = None,
        checkout_timeout: Optional[float] = None,
        obs: Optional[Observability] = None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        if size < 1:
            raise PoolError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.size = size
        #: One Observability shared by every pooled channel: the
        #: registry aggregates across channels (and survives channel
        #: replacement, unlike per-channel ClientStats, which retire
        #: into ``_retired_totals``).
        self.obs: Observability = obs if obs is not None else NULL_OBS
        self.checkout_timeout = checkout_timeout
        self._registry = registry
        self._policy = policy
        self._http_mode = http_mode
        self._path = path
        #: Shared across channels (including replacements), so the
        #: budget's view of the fleet survives channel churn.
        self.retry_budget = retry_budget
        self._factory = channel_factory or self._default_factory
        self._lock = threading.Lock()
        self._idle: "queue.LifoQueue[RPCChannel]" = queue.LifoQueue()
        self._members: List[RPCChannel] = []
        self._closed = False
        self._next_index = 0
        self.checkouts = 0
        self.replacements = 0
        #: Counters inherited from retired (replaced) channels.
        self._retired_totals: Dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
        for _ in range(size):
            channel = self._spawn()
            self._idle.put(channel)

    def _default_factory(self, index: int) -> RPCChannel:
        return RPCChannel(
            self.host,
            self.port,
            registry=self._registry,
            policy=self._policy,
            http_mode=self._http_mode,
            path=self._path,
            obs=self.obs,
            budget=self.retry_budget,
        )

    def _spawn(self) -> RPCChannel:
        with self._lock:
            index = self._next_index
            self._next_index += 1
        channel = self._factory(index)
        # The template-per-connection invariant: a store shared between
        # pooled channels would let one channel's diff run against
        # bytes another connection sent.
        with self._lock:
            for other in self._members:
                if channel.client.store is other.client.store:
                    raise PoolError(
                        "pooled channels must not share a TemplateStore"
                    )
            self._members.append(channel)
        return channel

    # ------------------------------------------------------------------
    # checkout / checkin
    # ------------------------------------------------------------------
    def checkout(self, timeout: Optional[float] = None) -> RPCChannel:
        """Borrow an idle channel (blocks until one is available).

        Raises :class:`~repro.errors.PoolTimeoutError` if no channel
        frees up within *timeout* (default: the pool's
        ``checkout_timeout``).
        """
        if self._closed:
            raise PoolError("pool is closed")
        if timeout is None:
            timeout = self.checkout_timeout
        try:
            channel = self._idle.get(timeout=timeout)
        except queue.Empty:
            raise PoolTimeoutError(
                f"no channel free after {timeout}s (size={self.size})"
            ) from None
        with self._lock:
            self.checkouts += 1
        return channel

    def checkin(self, channel: RPCChannel) -> None:
        """Return a borrowed channel, replacing it if unrecoverable."""
        with self._lock:
            if channel not in self._members:
                raise PoolError("channel does not belong to this pool")
        if self._closed:
            self._retire(channel)
            return
        if not self.healthy(channel):
            self._retire(channel)
            replacement = self._spawn()
            with self._lock:
                self.replacements += 1
            self._idle.put(replacement)
            return
        self._idle.put(channel)

    @staticmethod
    def healthy(channel: RPCChannel) -> bool:
        """Whether *channel* can still carry calls.

        Reconnecting transports and open breakers self-heal (redial /
        degrade to full serialization), so only a channel flagged
        ``broken`` — its one-shot transport died — is unhealthy.
        """
        return not channel.broken

    def _retire(self, channel: RPCChannel) -> None:
        stats = channel.channel_stats()
        with self._lock:
            for key in _COUNTER_KEYS:
                self._retired_totals[key] += int(stats.get(key, 0))  # type: ignore[arg-type]
            if channel in self._members:
                self._members.remove(channel)
        channel.close()

    @contextmanager
    def channel(self, timeout: Optional[float] = None) -> Iterator[RPCChannel]:
        """``with pool.channel() as ch:`` checkout/checkin guard."""
        borrowed = self.checkout(timeout)
        try:
            yield borrowed
        finally:
            self.checkin(borrowed)

    # ------------------------------------------------------------------
    # convenience call path
    # ------------------------------------------------------------------
    def call(
        self, message: SOAPMessage, timeout: Optional[float] = None
    ) -> RPCResponse:
        """Checkout → ``channel.call`` → checkin.

        Note the template-affinity cost: successive calls may land on
        different channels, each maintaining its own template for the
        message's structure.  Latency-sensitive callers running a long
        same-structure sequence should hold a checkout instead.
        """
        with self.channel(timeout) as ch:
            return ch.call(message)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Pool totals: summed channel counters + pool lifecycle."""
        with self._lock:
            members = list(self._members)
            totals = dict(self._retired_totals)
            meta = {
                "size": self.size,
                "checkouts": self.checkouts,
                "replacements": self.replacements,
            }
        breaker_open = 0
        for channel in members:
            stats = channel.channel_stats()
            for key in _COUNTER_KEYS:
                totals[key] += int(stats.get(key, 0))  # type: ignore[arg-type]
            if stats.get("breaker_state") == "open":
                breaker_open += 1
        totals["breakers_open"] = breaker_open
        totals.update(meta)
        if self.retry_budget is not None:
            totals.update(self.retry_budget.counters())
        return totals

    def close(self) -> None:
        """Close every channel (idle now; borrowed ones at checkin)."""
        self._closed = True
        while True:
            try:
                channel = self._idle.get_nowait()
            except queue.Empty:
                break
            self._retire(channel)

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
