"""Closed-loop load generation for the runtime layer.

Drives an :class:`~repro.server.service.HTTPSoapServer` with
configurable concurrency (single channel, :class:`ClientPool`, or
:class:`PipelinedSender`) and per-call workloads pinned to one of the
paper's four match levels, measuring calls/sec and latency
percentiles.  The throughput bench
(``benchmarks/bench_runtime_throughput.py``) is a thin CLI over this
module; tests reuse the workload generators for oracle comparisons.

Match-level workloads (double-array payloads):

``content``
    The same values every call → server + client resend saved bytes.
``perfect-structural``
    ~25% of values flip between two equal-width pools → dirty-value
    rewrites only.
``partial-structural``
    ~25% of values change width (10–22 chars, no stuffing) → shifting
    and stealing on the client, skeleton changes server-side.
``first-time``
    The array grows by one element each call → a fresh structure
    signature, full serialization every time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.workloads import SERVICE_NS, doubles_of_width
from repro.channel import RPCChannel
from repro.core.policy import DiffPolicy, PlanPolicy, StuffingPolicy, StuffMode
from repro.core.stats import MatchKind
from repro.errors import ReproError
from repro.runtime.pipeline import PipelinedSender
from repro.runtime.pool import ClientPool
from repro.schema.composite import ArrayType
from repro.schema.registry import TypeRegistry
from repro.schema.types import DOUBLE
from repro.server.service import HTTPSoapServer, SOAPService
from repro.soap.message import Parameter, SOAPMessage

__all__ = [
    "MATCH_LEVELS",
    "LoadResult",
    "build_service",
    "serve",
    "ECHO_OPERATION",
    "EXPAND_OPERATION",
    "EXPAND_REPS",
    "level_policy",
    "message_sequence",
    "run_single",
    "run_pool",
    "run_pipelined",
]

MATCH_LEVELS = (
    "content",
    "perfect-structural",
    "partial-structural",
    "first-time",
)

OPERATION = "checksum"
ECHO_OPERATION = "echo"
EXPAND_OPERATION = "expand"

#: Response amplification for :data:`EXPAND_OPERATION` — the request
#: array comes back tiled this many times.
EXPAND_REPS = 256


def build_service(delay_ms: float = 0.0, **service_kw) -> SOAPService:
    """The loadgen target: one summing operation, fixed response shape.

    *delay_ms* adds a per-call service time (``time.sleep``, so the
    GIL is released).  Zero isolates protocol overhead; a small
    nonzero value models a service that does real work, which is the
    regime where pooling/pipelining overlap pays off — on a loopback
    no-op service every mode is serialized on the interpreter lock
    and concurrency cannot show through.

    Extra keyword arguments reach the :class:`SOAPService` constructor
    (``admission=``, ``limits=``, ``obs=`` — the chaos harness and the
    overload benchmark configure their targets this way).
    """
    service = SOAPService(SERVICE_NS, TypeRegistry(), **service_kw)

    @service.operation(OPERATION, result_type=DOUBLE)
    def checksum(data):  # noqa: ANN001 - SOAP handler signature
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)
        return float(np.sum(data))

    @service.operation(ECHO_OPERATION, result_type=ArrayType(DOUBLE))
    def echo(data):  # noqa: ANN001 - SOAP handler signature
        # Response size tracks request size, so a large-array echo
        # spans several serializer chunks — the workload where the
        # async server's vectored send path differs from flattening.
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)
        return data

    @service.operation(EXPAND_OPERATION, result_type=ArrayType(DOUBLE))
    def expand(data):  # noqa: ANN001 - SOAP handler signature
        # Small request, EXPAND_REPS-times-larger response: the
        # write-path ablation workload, where per-call cost is
        # dominated by shipping a multi-chunk steady-state resend and
        # not by parsing the request.
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)
        return np.tile(np.asarray(data), EXPAND_REPS)

    return service


def serve(delay_ms: float = 0.0, server: str = "threaded"):
    """Start an HTTP server around :func:`build_service` (port 0 = ephemeral).

    *server* picks the front end: ``"threaded"`` (thread per
    connection) or ``"async"`` (the event-loop C10K server).
    """
    from repro.server.async_server import make_server

    return make_server(build_service(delay_ms), server=server).start()


def level_policy(level: str, plans: bool = True) -> DiffPolicy:
    """Client policy pinning the workload to its match level.

    *plans=False* disables the rewrite-plan cache + conversion memo
    (ablation runs; see ``benchmarks/bench_ablation_plan_cache.py``).
    """
    plan = PlanPolicy(enabled=plans)
    if level == "partial-structural":
        # No stuffing: width changes must shift, not fill slack.
        return DiffPolicy(stuffing=StuffingPolicy(StuffMode.NONE), plan=plan)
    return DiffPolicy(stuffing=StuffingPolicy(StuffMode.MAX), plan=plan)


def message_sequence(
    level: str, n: int, calls: int, seed: int = 0
) -> List[SOAPMessage]:
    """A deterministic per-client call sequence at *level*."""
    if level not in MATCH_LEVELS:
        raise ValueError(f"unknown match level {level!r}; have {MATCH_LEVELS}")
    rng = np.random.default_rng(seed)

    def msg(values: np.ndarray) -> SOAPMessage:
        return SOAPMessage(
            OPERATION, SERVICE_NS, [Parameter("data", ArrayType(DOUBLE), values)]
        )

    if level == "content":
        values = doubles_of_width(n, 14, seed=seed)
        return [msg(values) for _ in range(calls)]

    if level == "perfect-structural":
        pools = (
            doubles_of_width(n, 14, seed=seed),
            doubles_of_width(n, 14, seed=seed + 1),
        )
        out: List[SOAPMessage] = []
        current = pools[0].copy()
        for i in range(calls):
            k = max(1, n // 4)
            idx = rng.choice(n, k, replace=False)
            current = current.copy()
            current[idx] = pools[(i + 1) % 2][idx]
            out.append(msg(current))
        return out

    if level == "partial-structural":
        current = doubles_of_width(n, 14, seed=seed).copy()
        out = []
        for _ in range(calls):
            k = max(1, n // 4)
            idx = rng.choice(n, k, replace=False)
            width = int(rng.integers(10, 23))
            pool = doubles_of_width(k, width, seed=int(rng.integers(1 << 30)))
            current = current.copy()
            current[idx] = pool
            out.append(msg(current))
        return out

    # first-time: a new structure signature on every call.
    return [
        msg(doubles_of_width(n + i, 14, seed=seed + i)) for i in range(calls)
    ]


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
@dataclass(slots=True)
class LoadResult:
    """Outcome of one load run."""

    mode: str
    match_level: str
    pool_size: int
    calls: int
    errors: int
    duration_s: float
    latencies_ms: List[float] = field(default_factory=list)
    match_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def calls_per_sec(self) -> float:
        return self.calls / self.duration_s if self.duration_s > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def to_row(self) -> Dict[str, object]:
        """Flat row in the standard bench-result shape."""
        row: Dict[str, object] = {
            "mode": self.mode,
            "match_level": self.match_level,
            "pool_size": self.pool_size,
            "calls": self.calls,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 6),
            "calls_per_sec": round(self.calls_per_sec, 2),
            "p50_ms": round(self.percentile_ms(50), 4),
            "p99_ms": round(self.percentile_ms(99), 4),
            "mean_ms": round(
                float(np.mean(self.latencies_ms)) if self.latencies_ms else 0.0, 4
            ),
        }
        for kind in MatchKind:
            row[f"match_{kind.value}"] = self.match_counts.get(kind.value, 0)
        return row


def _record_match(counts: Dict[str, int], channel: RPCChannel) -> None:
    report = channel.last_send_report
    if report is not None:
        key = report.match_kind.value
        counts[key] = counts.get(key, 0) + 1


def run_single(
    host: str,
    port: int,
    *,
    level: str = "perfect-structural",
    calls: int = 100,
    n: int = 256,
    seed: int = 0,
) -> LoadResult:
    """Sequential calls over one channel — the 1-connection baseline."""
    messages = message_sequence(level, n, calls, seed)
    latencies: List[float] = []
    counts: Dict[str, int] = {}
    errors = 0
    with RPCChannel(
        host, port, registry=TypeRegistry(), policy=level_policy(level)
    ) as channel:
        started = time.perf_counter()
        for message in messages:
            t0 = time.perf_counter()
            try:
                channel.call(message)
            except ReproError:
                errors += 1
                continue
            latencies.append((time.perf_counter() - t0) * 1000.0)
            _record_match(counts, channel)
        duration = time.perf_counter() - started
    return LoadResult(
        "single", level, 1, len(latencies), errors, duration, latencies, counts
    )


def run_pool(
    host: str,
    port: int,
    *,
    pool_size: int = 4,
    level: str = "perfect-structural",
    calls: int = 100,
    n: int = 256,
    seed: int = 0,
) -> LoadResult:
    """Closed-loop concurrent clients, one per pooled channel.

    Each worker holds a checkout for the whole run (template
    affinity), so every call diffs against its own channel's
    last-sent bytes.
    """
    per_worker = max(1, calls // pool_size)
    lock = threading.Lock()
    latencies: List[float] = []
    counts: Dict[str, int] = {}
    errors = [0]

    pool = ClientPool(
        host,
        port,
        pool_size,
        registry=TypeRegistry(),
        policy=level_policy(level),
    )

    def worker(worker_id: int) -> None:
        messages = message_sequence(level, n, per_worker, seed + 1000 * worker_id)
        local_lat: List[float] = []
        local_counts: Dict[str, int] = {}
        local_errors = 0
        with pool.channel() as channel:
            for message in messages:
                t0 = time.perf_counter()
                try:
                    channel.call(message)
                except ReproError:
                    local_errors += 1
                    continue
                local_lat.append((time.perf_counter() - t0) * 1000.0)
                _record_match(local_counts, channel)
        with lock:
            latencies.extend(local_lat)
            for key, count in local_counts.items():
                counts[key] = counts.get(key, 0) + count
            errors[0] += local_errors

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(pool_size)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    pool.close()
    return LoadResult(
        "pool", level, pool_size, len(latencies), errors[0], duration, latencies, counts
    )


def run_pipelined(
    host: str,
    port: int,
    *,
    pool_size: int = 4,
    level: str = "perfect-structural",
    calls: int = 100,
    n: int = 256,
    depth: int = 4,
    seed: int = 0,
) -> LoadResult:
    """Pipelined fan-out: overlap serialization with response waits."""
    messages = message_sequence(level, n, calls, seed)
    latencies: List[float] = []
    counts: Dict[str, int] = {}
    lock = threading.Lock()
    errors = [0]
    done = threading.Semaphore(0)

    pool = ClientPool(
        host,
        port,
        pool_size,
        registry=TypeRegistry(),
        policy=level_policy(level),
    )
    started = time.perf_counter()
    with PipelinedSender(pool, depth=depth) as sender:

        def resolved(t0: float, future) -> None:
            exc = future.exception()
            with lock:
                if exc is not None:
                    errors[0] += 1
                else:
                    latencies.append((time.perf_counter() - t0) * 1000.0)
                    call = future.result()
                    key = call.send_report.match_kind.value
                    counts[key] = counts.get(key, 0) + 1
            done.release()

        for message in messages:
            t0 = time.perf_counter()
            future = sender.submit(message)
            future.add_done_callback(lambda f, t0=t0: resolved(t0, f))
        for _ in messages:
            done.acquire()
    duration = time.perf_counter() - started
    pool.close()
    return LoadResult(
        "pipelined",
        level,
        pool_size,
        len(latencies),
        errors[0],
        duration,
        latencies,
        counts,
    )


RUNNERS: Dict[str, Callable[..., LoadResult]] = {
    "single": run_single,
    "pool": run_pool,
    "pipelined": run_pipelined,
}


def run_grid(
    host: str,
    port: int,
    *,
    modes: Sequence[str] = ("single", "pool"),
    pool_sizes: Sequence[int] = (1, 4),
    levels: Sequence[str] = MATCH_LEVELS,
    calls: int = 100,
    n: int = 256,
    depth: int = 4,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> List[LoadResult]:
    """Run the full (mode × pool size × match level) grid."""
    results: List[LoadResult] = []
    for level in levels:
        for mode in modes:
            sizes = (1,) if mode == "single" else pool_sizes
            for size in sizes:
                kwargs = dict(level=level, calls=calls, n=n, seed=seed)
                if mode != "single":
                    kwargs["pool_size"] = size
                if mode == "pipelined":
                    kwargs["depth"] = depth
                result = RUNNERS[mode](host, port, **kwargs)
                results.append(result)
                if progress is not None:
                    progress(
                        f"{mode:>9} size={size} {level:<19} "
                        f"{result.calls_per_sec:>9.1f} calls/s "
                        f"p50={result.percentile_ms(50):.2f}ms "
                        f"p99={result.percentile_ms(99):.2f}ms "
                        f"errors={result.errors}"
                    )
    return results
