"""High-connection soak driver for the server front ends.

The C10K claim is not "handle huge request rates" — it is "hold
thousands of open connections while serving the active few without
degrading".  This driver models exactly that shape: *connections* open
sockets stay connected for the whole run, while a bounded *window* of
them have a request in flight at any instant (real fleets are mostly
idle keep-alives).  Each worker owns ``connections / window`` sockets
and walks them round-robin, so every socket carries traffic every
round but only ``window`` requests are concurrent.

The request is pre-serialized once (one bSOAP full serialization,
wrapped in Content-Length framing) and replayed verbatim on every
socket — the soak measures the *front end* (accept fan-in, read
buffering, deadline tracking, vectored writes), not client-side
serialization.

Used by ``benchmarks/bench_runtime_throughput.py --async-compare`` and
the soak acceptance test.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.workloads import SERVICE_NS, doubles_of_width
from repro.core.client import BSoapClient
from repro.errors import IncompleteHTTPError
from repro.schema.composite import ArrayType
from repro.schema.types import DOUBLE
from repro.soap.message import Parameter, SOAPMessage
from repro.transport.http import parse_http_response
from repro.transport.loopback import CollectSink

__all__ = ["SoakResult", "build_request_bytes", "main", "run_connection_soak"]


def build_request_bytes(
    n: int = 64, seed: int = 0, operation: str = "checksum", path: str = "/soap"
) -> bytes:
    """One complete HTTP POST (headers + SOAP body), ready to replay."""
    sink = CollectSink()
    values = doubles_of_width(n, 14, seed=seed)
    BSoapClient(sink).send(
        SOAPMessage(
            operation, SERVICE_NS, [Parameter("data", ArrayType(DOUBLE), values)]
        )
    )
    body = sink.last
    head = (
        f"POST {path} HTTP/1.1\r\n"
        "Host: soak\r\n"
        'Content-Type: text/xml; charset="utf-8"\r\n'
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii")
    return head + body


@dataclass(slots=True)
class SoakResult:
    """Outcome of one connection soak."""

    server: str
    connections: int
    window: int
    rounds: int
    calls: int
    errors: int
    duration_s: float
    connect_errors: int = 0
    warmup: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def calls_per_sec(self) -> float:
        return self.calls / self.duration_s if self.duration_s > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def to_row(self) -> Dict[str, object]:
        return {
            "mode": "soak",
            "server": self.server,
            "connections": self.connections,
            "window": self.window,
            "rounds": self.rounds,
            "warmup": self.warmup,
            "calls": self.calls,
            "errors": self.errors + self.connect_errors,
            "duration_s": round(self.duration_s, 6),
            "calls_per_sec": round(self.calls_per_sec, 2),
            "p50_ms": round(self.percentile_ms(50), 4),
            "p99_ms": round(self.percentile_ms(99), 4),
        }


def _exchange(sock: socket.socket, request: bytes) -> int:
    """Send *request*, read one full response, return its status."""
    sock.sendall(request)
    buf = b""
    while True:
        data = sock.recv(1 << 16)
        if not data:
            raise ConnectionError("server closed mid-response")
        buf += data
        try:
            status, _headers, _body, _consumed = parse_http_response(buf)
            return status
        except IncompleteHTTPError:
            continue


def run_connection_soak(
    host: str,
    port: int,
    *,
    server_label: str,
    connections: int = 2048,
    window: int = 64,
    rounds: int = 3,
    warmup: int = 1,
    request: Optional[bytes] = None,
    timeout: float = 30.0,
) -> SoakResult:
    """Hold *connections* open sockets; serve them in a *window*.

    Every socket is dialed up front and stays connected for the whole
    run; *window* worker threads then walk their share of the sockets
    *rounds* times, one blocking request/response per visit.  Any
    non-200 answer, closed socket, or timeout counts as an error.

    *warmup* extra untimed rounds run first.  Each connection's first
    request pays the one-off differential-serialization setup cost (a
    full parse plus skip-scan compile to seed the session mirror) —
    with thousands of connections and few rounds that cost swamps the
    steady state the soak is meant to measure, so it is excluded from
    the timed window (errors during warm-up still count).
    """
    if request is None:
        request = build_request_bytes()
    window = min(window, connections)
    shares: List[List[socket.socket]] = [[] for _ in range(window)]
    lock = threading.Lock()
    latencies: List[float] = []
    errors = [0]
    connect_errors = [0]

    def dial(worker: int) -> None:
        count = connections // window + (
            1 if worker < connections % window else 0
        )
        for _ in range(count):
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
                sock.settimeout(timeout)
                shares[worker].append(sock)
            except OSError:
                with lock:
                    connect_errors[0] += 1

    dialers = [
        threading.Thread(target=dial, args=(w,), daemon=True)
        for w in range(window)
    ]
    for thread in dialers:
        thread.start()
    for thread in dialers:
        thread.join()

    calls = [0]

    def worker(worker_id: int, loops: int, timed: bool) -> None:
        mine = shares[worker_id]
        local_lat: List[float] = []
        local_calls = 0
        local_errors = 0
        for _ in range(loops):
            for sock in mine:
                t0 = time.perf_counter()
                try:
                    status = _exchange(sock, request)
                except OSError:
                    local_errors += 1
                    continue
                if status != 200:
                    local_errors += 1
                    continue
                local_calls += 1
                local_lat.append((time.perf_counter() - t0) * 1000.0)
        with lock:
            errors[0] += local_errors
            if timed:
                latencies.extend(local_lat)
                calls[0] += local_calls

    def run_phase(loops: int, timed: bool) -> float:
        threads = [
            threading.Thread(
                target=worker, args=(w, loops, timed), daemon=True
            )
            for w in range(window)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - started

    if warmup > 0:
        run_phase(warmup, timed=False)
    duration = run_phase(rounds, timed=True)

    for share in shares:
        for sock in share:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass

    return SoakResult(
        server=server_label,
        connections=connections,
        window=window,
        rounds=rounds,
        calls=calls[0],
        errors=errors[0],
        duration_s=duration,
        connect_errors=connect_errors[0],
        warmup=warmup,
        latencies_ms=latencies,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: soak a running server and print the result row as JSON.

    The benchmark drives this in a *separate process* on purpose: with
    an in-process client, the client's worker threads and the server's
    loop thread contend for one GIL and the loop starves — the numbers
    measure interpreter scheduling, not the front end.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("port", type=int)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--label", default="server")
    parser.add_argument("--connections", type=int, default=2048)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--n", type=int, default=64,
                        help="request double-array length")
    parser.add_argument("--operation", default="checksum",
                        help="service operation the replayed request calls")
    args = parser.parse_args(argv)
    result = run_connection_soak(
        args.host,
        args.port,
        server_label=args.label,
        connections=args.connections,
        window=args.window,
        rounds=args.rounds,
        warmup=args.warmup,
        request=build_request_bytes(n=args.n, operation=args.operation),
    )
    print(json.dumps(result.to_row()))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
