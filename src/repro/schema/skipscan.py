"""Schema-compiled skip-scan deserialization.

The paper's §6 future-work note — a server could use stored messages
to "avoid complete server-side parsing" — is implemented one level up
from :class:`~repro.server.diffdeser.DifferentialDeserializer`'s
per-leaf re-parse: once a session template is known, a
:class:`SeekTable` is *compiled* from its parse result, and every
subsequent structural match **seeks** directly to the byte regions the
template marks mutable, parses only those values, and never
re-tokenizes the unchanged tag skeleton.

What makes this sound
---------------------

Every seek is a hand-computed offset into attacker-controlled bytes,
so the table trusts nothing it has not just checked:

* **Skeleton bytes are proven equal before apply.**  The caller (the
  differential deserializer) has already vectorized-compared the
  incoming message against the stored template and established that
  *every* differing byte falls inside a known mutable region.  Bytes
  outside the regions are therefore byte-identical to the template the
  table was compiled from — no re-validation needed.
* **The only movable skeleton tokens are re-validated.**  Inside a
  changed region the closing tag may sit at a new offset (the value
  width changed), so it is the one piece of markup skip-scan must
  re-find.  Each candidate is classified through a
  :class:`~repro.xmlkit.trie.ByteTrie` compiled from the template's
  closing tags (Chiu et al.'s tag-trie, HPDC 2002) and must match this
  leaf's expected tag id exactly; trailing pad must be whitespace.
* **Values go through the real lexical parsers.**  The per-leaf path
  uses the same :class:`~repro.schema.types.XSDType` parsers as a full
  parse.  The vectorized double path first proves every value byte is
  in ``parse_double``'s accepted charset; anything else (``INF``,
  ``NaN``, tabs, garbage) drops to the per-leaf loop.
* **Two-phase apply.**  All regions are validated and parsed before
  any value is committed, so a failure midway never leaves the cached
  decode half-updated (the poisoned-session hazard from PR 4).
* **Any doubt falls back.**  Every validation failure raises
  :class:`SkipScanFallback`; the deserializer answers with a full
  parse, which is authoritative for both values and error class
  (fault-not-crash, the PR 4 taxonomy).

Descriptor classes (:mod:`repro.schema.descriptors`, generated from
WSDL by :func:`repro.wsdl.stubgen.generate_descriptors`) add an
optional schema gate at compile time: a message that full-parses but
does not match its operation's declared shape never gets a table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.xmlkit.trie import ByteTrie

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.parser import ParseResult

__all__ = ["SkipScanFallback", "SeekTable"]

_LT = 0x3C  # b"<"
_GT = 0x3E  # b">"
_AMP = 0x26  # b"&"
_SPACE = 0x20

#: Whitespace legal in the pad after a closing tag (mirrors the
#: sender-side stuffing alphabet and ``_field_regions``).
_WS_LUT = np.zeros(256, dtype=bool)
for _b in b" \t\r\n":
    _WS_LUT[_b] = True

#: Bytes the vectorized double path accepts inside a value: exactly
#: ``parse_double``'s ``_ALLOWED`` charset plus the space pad of the
#: FIXED ``%24.16e`` form.  Tabs/CR/LF are deliberately excluded —
#: ``parse_double`` strips them but NumPy's string→float conversion
#: is not guaranteed to agree, so those rows take the per-leaf path.
_DOUBLE_LUT = np.zeros(256, dtype=bool)
for _b in b"+-.0123456789eE ":
    _DOUBLE_LUT[_b] = True
del _b


class SkipScanFallback(Exception):
    """Skip-scan declined; the caller must run a full parse.

    ``reason`` is a short stable token (``tag-drift``, ``pad-drift``,
    ``value-parse``, ``value-entity`` at apply time; ``no-leaves``,
    ``region-shape``, ``no-close-tag``, ``descriptor-mismatch`` at
    compile time) used as the ``event`` label on
    ``repro_skipscan_events_total``.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason


class SeekTable:
    """Compiled mutable-region map for one session template.

    Built by :meth:`compile` from a full parse; applied by
    :meth:`apply` to subsequent same-skeleton messages.  A table is
    only valid for the exact :class:`ParseResult` it was compiled
    from — it captures that result and commits parsed values into its
    containers.
    """

    def __init__(
        self,
        result: "ParseResult",
        starts: np.ndarray,
        ends: np.ndarray,
        trie: ByteTrie,
        tag_ids: np.ndarray,
        tag_lens: np.ndarray,
        leaf_types: Tuple[object, ...],
    ) -> None:
        self.result = result
        self.starts = starts  # region starts == value starts (int64)
        self.ends = ends  # region ends (int64)
        self.trie = trie
        self.tag_ids = tag_ids  # expected close-tag id per leaf
        self.tag_lens = tag_lens  # close-tag key length per leaf
        self.leaf_types = leaf_types  # XSDType per leaf (None = string)
        # Vectorized double lane (set up by compile when eligible).
        self._vec_len: Optional[int] = None
        self._vec_key: Optional[np.ndarray] = None
        self._vec_containers: List[np.ndarray] = []
        self._vec_param_of: Optional[np.ndarray] = None
        self._vec_item_of: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        data: bytes,
        result: "ParseResult",
        descriptor: Optional[type] = None,
    ) -> "SeekTable":
        """Build a seek table from a freshly full-parsed template.

        Raises :class:`SkipScanFallback` when the template cannot be
        compiled; the deserializer then simply keeps full-parsing.
        """
        if descriptor is not None:
            mismatch = descriptor.check(result.message)
            if mismatch is not None:
                raise SkipScanFallback("descriptor-mismatch", mismatch)
        regions = result.regions
        spans = result.spans
        k = int(regions.shape[0])
        if k == 0:
            raise SkipScanFallback("no-leaves")
        starts = regions[:, 0].astype(np.int64)
        ends = regions[:, 1].astype(np.int64)
        n = len(data)
        # Region invariants the seek arithmetic depends on: value span
        # starts its region, regions are sorted, non-overlapping, and
        # in bounds.  ``_field_regions`` produces exactly this, but the
        # table re-proves it rather than trusting a caller.
        if (
            not bool(np.all(spans[:, 0] == starts))
            or not bool(np.all(spans[:, 1] <= ends))
            or not bool(np.all(starts <= spans[:, 1]))
            or not bool(np.all(ends <= n))
            or not bool(np.all(starts[1:] >= ends[:-1]))
            or not bool(np.all(starts >= 0))
        ):
            raise SkipScanFallback("region-shape")

        keys: dict = {}
        trie = ByteTrie()
        tag_ids = np.empty(k, dtype=np.int64)
        tag_lens = np.empty(k, dtype=np.int64)
        for j in range(k):
            vend = int(spans[j, 1])
            if vend >= n or data[vend] != _LT:
                raise SkipScanFallback("no-close-tag", f"leaf {j}")
            gt = data.find(b">", vend, int(ends[j]))
            if gt < 0:
                raise SkipScanFallback("no-close-tag", f"leaf {j}")
            key = data[vend:gt]
            if not key.startswith(b"</"):
                raise SkipScanFallback("no-close-tag", f"leaf {j}: {key[:20]!r}")
            tid = keys.get(key)
            if tid is None:
                tid = len(keys)
                keys[key] = tid
                trie.insert(key, tid)
            tag_ids[j] = tid
            tag_lens[j] = len(key)
            # Everything after the closing tag up to the region end must
            # already be pad in the template itself.
            tail = data[gt + 1 : int(ends[j])]
            if tail.strip(b" \t\r\n"):
                raise SkipScanFallback("region-shape", f"leaf {j} tail")

        types = tuple(result.leaf_type(j) for j in range(k))
        table = cls(result, starts, ends, trie, tag_ids, tag_lens, types)
        table._setup_vector_lane(data, keys)
        return table

    def _setup_vector_lane(self, data: bytes, keys: dict) -> None:
        """Enable the batched NumPy lane when the template allows it.

        Requirements: every leaf is a double in a float64 array
        parameter, all regions have one uniform byte length, and all
        leaves share a single closing tag — the shape FIXED-format
        MAX-stuffed double arrays (the paper's headline workload)
        always produce.
        """
        if len(keys) != 1:
            return
        lens = self.ends - self.starts
        length = int(lens[0])
        if not bool(np.all(lens == length)):
            return
        containers: List[np.ndarray] = []
        k = int(self.starts.shape[0])
        param_of = np.empty(k, dtype=np.int64)
        item_of = np.empty(k, dtype=np.int64)
        for layout in self.result.layouts:
            param = layout.param
            if (
                param.kind != "array"
                or not isinstance(param.value, np.ndarray)
                or param.value.dtype != np.float64
            ):
                return
            pi = len(containers)
            containers.append(param.value)
            base, count = layout.leaf_base, layout.leaf_count
            param_of[base : base + count] = pi
            item_of[base : base + count] = np.arange(count)
        (key,) = keys
        self._vec_len = length
        self._vec_key = np.frombuffer(key, dtype=np.uint8)
        self._vec_containers = containers
        self._vec_param_of = param_of
        self._vec_item_of = item_of

    # ------------------------------------------------------------------
    def approx_bytes(self) -> int:
        """Approximate retained bytes: the compiled arrays + trie keys.

        Feeds the :class:`~repro.hardening.overload.MemoryAccountant`
        ledger; the captured :class:`ParseResult` is charged with the
        deserializer template, not here.
        """
        total = (
            self.starts.nbytes
            + self.ends.nbytes
            + self.tag_ids.nbytes
            + self.tag_lens.nbytes
        )
        for arr in (self._vec_key, self._vec_param_of, self._vec_item_of):
            if arr is not None:
                total += arr.nbytes
        # The trie stores one key per distinct close tag — small, but
        # count it so a pathological many-distinct-tags template is
        # not free.
        total += 64 * max(1, int(self.tag_ids.max()) + 1 if self.tag_ids.size else 1)
        return total

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(
        self, data: bytes, incoming: np.ndarray, changed: np.ndarray
    ) -> Tuple[int, bool]:
        """Parse the *changed* regions of *incoming* and commit them.

        *incoming* is the message as a uint8 view; *changed* the sorted
        leaf indices whose regions contain differing bytes (computed by
        the caller's template diff).  Returns ``(leaves_parsed,
        vectorized)``.  Raises :class:`SkipScanFallback` on any drift —
        nothing is committed in that case.
        """
        if self._vec_len is not None:
            parsed = self._apply_vectorized(incoming, changed)
            if parsed is not None:
                return parsed, True
        return self._apply_per_leaf(data, changed), False

    def _apply_vectorized(
        self, incoming: np.ndarray, changed: np.ndarray
    ) -> Optional[int]:
        """Batched parse of uniform double regions.

        Returns ``None`` to route the batch to the per-leaf path (a
        value byte outside the strict charset, or a conversion NumPy
        and ``parse_double`` might disagree on); raises
        :class:`SkipScanFallback` for structural drift.
        """
        length = self._vec_len
        key = self._vec_key
        assert length is not None and key is not None
        m = int(changed.size)
        mat = incoming[self.starts[changed, None] + np.arange(length)]
        lt_mask = mat == _LT
        if not bool(lt_mask.any(axis=1).all()):
            raise SkipScanFallback("tag-drift", "closing tag missing")
        ltpos = lt_mask.argmax(axis=1)
        klen = int(key.shape[0])
        if bool(np.any(ltpos + klen + 1 > length)):
            raise SkipScanFallback("tag-drift", "closing tag overruns region")
        rows = np.arange(m)[:, None]
        if not bool(np.all(mat[rows, ltpos[:, None] + np.arange(klen)] == key)):
            raise SkipScanFallback("tag-drift", "closing tag bytes differ")
        if not bool(np.all(mat[np.arange(m), ltpos + klen] == _GT)):
            raise SkipScanFallback("tag-drift", "closing tag not terminated")
        cols = np.arange(length)
        in_pad = cols[None, :] > (ltpos + klen)[:, None]
        if bool(np.any(in_pad & ~_WS_LUT[mat])):
            raise SkipScanFallback("pad-drift")
        in_value = cols[None, :] < ltpos[:, None]
        if bool(np.any(in_value & ~_DOUBLE_LUT[mat])):
            return None  # INF/NaN/odd bytes: per-leaf lexical parse
        blanked = np.where(in_value, mat, _SPACE).astype(np.uint8)
        try:
            values = (
                np.ascontiguousarray(blanked)
                .view(f"S{length}")
                .ravel()
                .astype(np.float64)
            )
        except ValueError:
            return None  # let parse_double produce the authoritative error
        # Commit (all validation above is done — two-phase contract).
        param_of = self._vec_param_of[changed]
        item_of = self._vec_item_of[changed]
        for pi, container in enumerate(self._vec_containers):
            mask = param_of == pi
            if bool(mask.any()):
                container[item_of[mask]] = values[mask]
        return m

    def _apply_per_leaf(self, data: bytes, changed: np.ndarray) -> int:
        """Seek + trie-validate + parse each changed region singly."""
        starts = self.starts
        ends = self.ends
        n = len(data)
        pending: List[Tuple[int, object]] = []
        for j in changed.tolist():
            s, e = int(starts[j]), int(ends[j])
            lt = data.find(b"<", s, e)
            if lt < 0:
                raise SkipScanFallback("tag-drift", f"leaf {j}: no markup")
            tid, end = self.trie.match_at(data, lt, terminators=b">")
            if tid is None or tid != int(self.tag_ids[j]):
                raise SkipScanFallback("tag-drift", f"leaf {j}")
            if end >= n or data[end] != _GT:
                raise SkipScanFallback("tag-drift", f"leaf {j}: unterminated")
            pad = data[end + 1 : e]
            if pad.strip(b" \t\r\n"):
                raise SkipScanFallback("pad-drift", f"leaf {j}")
            raw = data[s:lt]
            xsd = self.leaf_types[j]
            if xsd.np_dtype is None:  # string leaf
                if _AMP in raw:
                    # Entity references need the real scanner; the full
                    # parse expands them with correct semantics.
                    raise SkipScanFallback("value-entity", f"leaf {j}")
                try:
                    value: object = raw.decode("utf-8")
                except UnicodeDecodeError:
                    raise SkipScanFallback(
                        "value-parse", f"leaf {j}: invalid utf-8"
                    ) from None
            else:
                try:
                    value = xsd.parse(raw)
                except Exception:
                    # The full parse is authoritative for the error
                    # class (LexicalError vs SOAPError vs charref
                    # expansion making the value legal after all).
                    raise SkipScanFallback(
                        "value-parse", f"leaf {j}: {raw[:40]!r}"
                    ) from None
            pending.append((j, value))
        # Commit phase: nothing above mutated the cached decode.
        result = self.result
        for j, value in pending:
            result.store_leaf(j, value)
        return len(pending)
