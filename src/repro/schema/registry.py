"""Registry mapping application type names to schema descriptors.

Services register their struct and array types here so WSDL emission
and server-side dispatch can resolve names found on the wire (e.g. in
``SOAP-ENC:arrayType`` attributes) back to descriptors.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

from repro.errors import SchemaError
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import PRIMITIVES, XSDType

__all__ = ["TypeRegistry"]

Registrable = Union[XSDType, StructType, ArrayType]


class TypeRegistry:
    """Name → type descriptor mapping with the primitives pre-loaded."""

    def __init__(self) -> None:
        self._types: Dict[str, Registrable] = {t.name: t for t in PRIMITIVES}

    def register(self, name: str, typ: Registrable) -> None:
        """Register *typ* under *name*; re-registering the same object
        is a no-op, conflicting registrations raise."""
        existing = self._types.get(name)
        if existing is typ:
            return
        if existing is not None:
            raise SchemaError(f"type name {name!r} already registered")
        self._types[name] = typ

    def register_struct(self, struct: StructType) -> StructType:
        """Register a struct under its own name and return it."""
        self.register(struct.name, struct)
        return struct

    def lookup(self, name: str) -> Registrable:
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(f"unknown type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[Tuple[str, Registrable]]:
        return iter(self._types.items())

    def structs(self) -> Iterator[StructType]:
        """Iterate registered struct types (for WSDL type sections)."""
        for typ in self._types.values():
            if isinstance(typ, StructType):
                yield typ
