"""The Mesh Interface Object (MIO) type.

The paper's structured workload: ``[int, int, double]`` — two mesh
coordinates and a field value, used for communication between PDE
solvers on different domains.  Its width extremes drive the shifting
and stuffing experiments:

* smallest serialized MIO payload: 3 characters (``1``/``1``/``1``),
* largest: 46 characters (11 + 11 + 24).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.composite import ArrayType, Field, StructType
from repro.schema.types import DOUBLE, INT

__all__ = ["MIO", "MIO_TYPE", "make_mio_array_type"]

#: Schema descriptor for the MIO struct.
MIO_TYPE = StructType(
    name="MIO",
    fields=(
        Field("x", INT),
        Field("y", INT),
        Field("v", DOUBLE),
    ),
)


@dataclass(frozen=True, slots=True)
class MIO:
    """One in-memory mesh interface object."""

    x: int
    y: int
    v: float

    def astuple(self) -> tuple[int, int, float]:
        return (self.x, self.y, self.v)


def make_mio_array_type(item_tag: str = "mio") -> ArrayType:
    """An :class:`ArrayType` of MIOs (items tagged ``<mio>``)."""
    return ArrayType(element=MIO_TYPE, item_tag=item_tag)
