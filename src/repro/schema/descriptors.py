"""Declarative message descriptors (the pull-schema half of skip-scan).

Following the descriptor-class idiom of libearth's ``schema.py``
(SNIPPETS.md §2–3), a message shape is declared as a class whose
attributes are :class:`ParamSpec` descriptors in document order:

.. code-block:: python

    class PutDoubles(MessageDescriptor):
        __operation__ = "putDoubles"
        data = Array(DOUBLE)
        tag = Scalar(INT)

The class serves two purposes:

* **compile gate** — :meth:`MessageDescriptor.check` verifies a
  decoded message matches the declared shape before
  :class:`~repro.schema.skipscan.SeekTable` compiles a seek table for
  it, so a typed service never trusts offsets derived from a message
  that does not match its WSDL contract;
* **typed access** — instantiating the descriptor over a decoded
  message binds it; attribute reads then pull the matching parameter
  value (``PutDoubles(msg).data``), raising
  :class:`~repro.errors.SchemaError` up front on shape mismatch.

Descriptor classes are normally generated from a WSDL
:class:`~repro.wsdl.model.ServiceDef` by
:func:`repro.wsdl.stubgen.generate_descriptors` /
:meth:`MessageDescriptor.from_operation`, so typed services get the
gate for free; hand-written declarations work the same way.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import SchemaError
from repro.schema.composite import StructType
from repro.schema.types import XSDType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.parser import DecodedMessage
    from repro.wsdl.model import OperationDef

__all__ = [
    "ParamSpec",
    "Scalar",
    "Array",
    "StructArray",
    "MessageDescriptor",
]

#: Global declaration counter: class bodies execute top to bottom, so
#: ascending counter values recover document order of the parameters.
_DECLARATION_COUNTER = itertools.count()


class ParamSpec:
    """Base descriptor for one declared parameter."""

    def __init__(self) -> None:
        self._order = next(_DECLARATION_COUNTER)
        self.name: Optional[str] = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    # -- descriptor protocol: typed access on a bound instance -------
    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return instance._message.value(self.name)

    # -- shape matching ----------------------------------------------
    def matches(self, param) -> Optional[str]:
        """Mismatch description for a decoded param, or ``None``."""
        raise NotImplementedError

    def _kind_mismatch(self, param, expected_kind: str) -> Optional[str]:
        if param.kind != expected_kind:
            return (
                f"parameter {self.name!r} decoded as {param.kind!r}, "
                f"declared {expected_kind!r}"
            )
        return None


class Scalar(ParamSpec):
    """One primitively-typed scalar parameter."""

    def __init__(self, xsd_type: XSDType) -> None:
        super().__init__()
        self.xsd_type = xsd_type

    def matches(self, param) -> Optional[str]:
        err = self._kind_mismatch(param, "scalar")
        if err:
            return err
        if param.element_type is not self.xsd_type:
            return (
                f"parameter {self.name!r} is "
                f"{getattr(param.element_type, 'name', param.element_type)!r}, "
                f"declared {self.xsd_type.name!r}"
            )
        return None


class Array(ParamSpec):
    """A homogeneous array of one primitive element type."""

    def __init__(self, element: XSDType) -> None:
        super().__init__()
        self.element = element

    def matches(self, param) -> Optional[str]:
        err = self._kind_mismatch(param, "array")
        if err:
            return err
        if param.element_type is not self.element:
            return (
                f"array {self.name!r} holds "
                f"{getattr(param.element_type, 'name', param.element_type)!r}, "
                f"declared {self.element.name!r}"
            )
        return None


class StructArray(ParamSpec):
    """An array of one struct type (scalar structs decode the same)."""

    def __init__(self, struct: StructType) -> None:
        super().__init__()
        self.struct = struct

    def matches(self, param) -> Optional[str]:
        err = self._kind_mismatch(param, "struct_array")
        if err:
            return err
        if param.element_type != self.struct:
            return (
                f"struct array {self.name!r} holds "
                f"{getattr(param.element_type, 'name', param.element_type)!r}, "
                f"declared {self.struct.name!r}"
            )
        return None


class MessageDescriptor:
    """Base class for declared message shapes (see module docstring)."""

    #: Operation name this shape describes; subclasses must set it.
    __operation__: Optional[str] = None
    #: ``(name, spec)`` pairs in declaration order (built automatically).
    __params__: Tuple[Tuple[str, ParamSpec], ...] = ()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        specs = [
            (name, value)
            for name, value in vars(cls).items()
            if isinstance(value, ParamSpec)
        ]
        specs.sort(key=lambda pair: pair[1]._order)
        inherited = [
            pair for pair in cls.__params__
            if not any(name == pair[0] for name, _ in specs)
        ]
        cls.__params__ = tuple(inherited + specs)

    def __init__(self, message: "DecodedMessage") -> None:
        mismatch = self.check(message)
        if mismatch is not None:
            raise SchemaError(mismatch)
        self._message = message

    @property
    def message(self) -> "DecodedMessage":
        return self._message

    # ------------------------------------------------------------------
    @classmethod
    def check(cls, message: "DecodedMessage") -> Optional[str]:
        """Mismatch description for *message*, or ``None`` on a match."""
        if cls.__operation__ is None:
            return f"{cls.__name__} declares no __operation__"
        if message.operation != cls.__operation__:
            return (
                f"operation {message.operation!r} does not match "
                f"declared {cls.__operation__!r}"
            )
        if len(message.params) != len(cls.__params__):
            return (
                f"{message.operation!r} has {len(message.params)} "
                f"parameters, declared {len(cls.__params__)}"
            )
        for param, (name, spec) in zip(message.params, cls.__params__):
            if param.name != name:
                return (
                    f"parameter {param.name!r} does not match "
                    f"declared {name!r}"
                )
            err = spec.matches(param)
            if err is not None:
                return err
        return None

    @classmethod
    def from_operation(cls, op: "OperationDef") -> type:
        """Build a descriptor class for one WSDL operation."""
        from repro.schema.composite import ArrayType

        namespace: dict = {"__operation__": op.name}
        for part in op.inputs:
            ptype = part.ptype
            if isinstance(ptype, ArrayType):
                element = ptype.element
                spec: ParamSpec = (
                    StructArray(element)
                    if isinstance(element, StructType)
                    else Array(element)
                )
            elif isinstance(ptype, StructType):
                spec = StructArray(ptype)
            elif isinstance(ptype, XSDType):
                spec = Scalar(ptype)
            else:  # pragma: no cover - model enforces the union
                raise SchemaError(
                    f"unsupported parameter type {ptype!r} in {op.name!r}"
                )
            namespace[part.name] = spec
        return type(f"{op.name}Descriptor", (cls,), namespace)
