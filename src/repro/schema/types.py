"""Primitive XSD type descriptors.

Each primitive carries:

* its XML Schema qualified name (for ``xsi:type`` attributes),
* a small integer ``type_id`` used in the DUT table's ``type`` column
  (the paper's "pointer to a data structure that contains information
  about the data item's type" becomes an index into
  :data:`PRIMITIVES`),
* formatter/parser functions from :mod:`repro.lexical`,
* the :class:`~repro.lexical.widths.WidthSpec` stuffing facts,
* the NumPy dtype tracked arrays of this type use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import SchemaError
from repro.lexical.booleans import format_bool, parse_bool
from repro.lexical.floats import format_double, parse_double
from repro.lexical.integers import format_int, parse_int
from repro.lexical.strings import format_string, parse_string
from repro.lexical.widths import WidthSpec, width_spec_for
from repro.xmlkit.qname import QName

__all__ = [
    "XSDType",
    "INT",
    "LONG",
    "DOUBLE",
    "STRING",
    "BOOLEAN",
    "PRIMITIVES",
    "primitive_by_id",
    "primitive_by_name",
]

XSD_URI = "http://www.w3.org/2001/XMLSchema"


@dataclass(frozen=True, slots=True)
class XSDType:
    """Descriptor of one primitive wire type."""

    name: str
    type_id: int
    qname: QName
    formatter: Callable[[object], bytes]
    parser: Callable[[bytes], object]
    widths: WidthSpec
    np_dtype: Optional[np.dtype]
    python_type: type

    @property
    def xsi_type(self) -> str:
        """The ``xsi:type`` attribute value, e.g. ``xsd:double``."""
        return self.qname.prefixed

    def format(self, value: object) -> bytes:
        """Serialize a value of this type to its lexical bytes."""
        return self.formatter(value)

    def parse(self, data: bytes) -> object:
        """Parse lexical bytes into a value of this type."""
        return self.parser(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XSDType({self.name!r}, id={self.type_id})"


def _make(name: str, type_id: int, formatter, parser, np_dtype, python_type) -> XSDType:
    return XSDType(
        name=name,
        type_id=type_id,
        qname=QName(XSD_URI, name, "xsd"),
        formatter=formatter,
        parser=parser,
        widths=width_spec_for(name),
        np_dtype=np.dtype(np_dtype) if np_dtype is not None else None,
        python_type=python_type,
    )


INT = _make("int", 0, format_int, parse_int, np.int64, int)
DOUBLE = _make("double", 1, format_double, parse_double, np.float64, float)
STRING = _make("string", 2, format_string, parse_string, None, str)
BOOLEAN = _make("boolean", 3, format_bool, parse_bool, np.bool_, bool)
LONG = _make("long", 4, format_int, parse_int, np.int64, int)

#: Index by ``type_id`` — the DUT ``type`` column points here.
PRIMITIVES: Tuple[XSDType, ...] = (INT, DOUBLE, STRING, BOOLEAN, LONG)

_BY_NAME: Dict[str, XSDType] = {t.name: t for t in PRIMITIVES}


def primitive_by_id(type_id: int) -> XSDType:
    """Resolve a DUT ``type`` column value to its descriptor."""
    try:
        return PRIMITIVES[type_id]
    except IndexError:
        raise SchemaError(f"unknown primitive type id {type_id}") from None


def primitive_by_name(name: str) -> XSDType:
    """Resolve ``int``/``double``/``string``/``boolean``/``long``."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise SchemaError(f"unknown primitive type {name!r}") from None
