"""Type system: XSD primitives, arrays, structs, and the MIO type.

The serializers are *schema-driven*: a message is a list of parameters
whose types come from this package, and the template layout engine
walks these descriptors to place tags, values, and pad.
"""

from repro.schema.types import (
    BOOLEAN,
    DOUBLE,
    INT,
    LONG,
    STRING,
    PRIMITIVES,
    XSDType,
    primitive_by_id,
    primitive_by_name,
)
from repro.schema.composite import ArrayType, Field, StructType
from repro.schema.descriptors import (
    Array,
    MessageDescriptor,
    ParamSpec,
    Scalar,
    StructArray,
)
from repro.schema.mio import MIO, MIO_TYPE, make_mio_array_type
from repro.schema.registry import TypeRegistry
from repro.schema.skipscan import SeekTable, SkipScanFallback

__all__ = [
    "XSDType",
    "INT",
    "LONG",
    "DOUBLE",
    "STRING",
    "BOOLEAN",
    "PRIMITIVES",
    "primitive_by_id",
    "primitive_by_name",
    "Field",
    "StructType",
    "ArrayType",
    "MIO",
    "MIO_TYPE",
    "make_mio_array_type",
    "TypeRegistry",
    "MessageDescriptor",
    "ParamSpec",
    "Scalar",
    "Array",
    "StructArray",
    "SeekTable",
    "SkipScanFallback",
]
