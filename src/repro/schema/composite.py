"""Composite types: structs and arrays.

A :class:`StructType` is an ordered set of primitive fields (nested
structs are supported one level deep via flattening, which covers the
paper's workloads — the MIO is a flat ``[int,int,double]`` struct).
An :class:`ArrayType` is a homogeneous SOAP-ENC array of primitives or
structs; it is the shape all the paper's experiments send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from repro.errors import SchemaError
from repro.schema.types import XSDType

__all__ = ["Field", "StructType", "ArrayType", "ElementType"]


@dataclass(frozen=True, slots=True)
class Field:
    """One named, primitively-typed struct member."""

    name: str
    xsd_type: XSDType

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise SchemaError(f"invalid field name {self.name!r}")


@dataclass(frozen=True, slots=True)
class StructType:
    """An ordered, flat record of primitive fields."""

    name: str
    fields: Tuple[Field, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise SchemaError(f"struct {self.name!r} must have at least one field")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"struct {self.name!r} has duplicate field names")

    @property
    def arity(self) -> int:
        """Number of leaf values one instance contributes to the DUT."""
        return len(self.fields)

    @property
    def max_width(self) -> Optional[int]:
        """Sum of field maximum widths, or ``None`` if any is unbounded.

        This is the struct-level stuffing bound: 46 for the MIO.
        """
        total = 0
        for f in self.fields:
            if f.xsd_type.widths.max_width is None:
                return None
            total += f.xsd_type.widths.max_width
        return total

    @property
    def min_width(self) -> int:
        """Sum of field minimum widths (3 for the MIO)."""
        return sum(f.xsd_type.widths.min_width for f in self.fields)

    def field_named(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"struct {self.name!r} has no field {name!r}")

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)


ElementType = Union[XSDType, StructType]


@dataclass(frozen=True, slots=True)
class ArrayType:
    """A homogeneous SOAP-ENC array.

    Attributes
    ----------
    element:
        Element type — a primitive or a struct.
    item_tag:
        Tag used for each array item (SOAP encoding conventionally
        uses ``item``).
    """

    element: ElementType
    item_tag: str = "item"

    def __post_init__(self) -> None:
        if not self.item_tag:
            raise SchemaError("array item tag must be non-empty")

    @property
    def element_is_struct(self) -> bool:
        return isinstance(self.element, StructType)

    @property
    def values_per_item(self) -> int:
        """Leaf values per array item (1 for primitives, arity for structs)."""
        return self.element.arity if isinstance(self.element, StructType) else 1

    def soap_array_type(self, length: int) -> str:
        """The ``SOAP-ENC:arrayType`` attribute value, e.g. ``xsd:double[10]``."""
        if isinstance(self.element, StructType):
            return f"ns:{self.element.name}[{length}]"
        return f"{self.element.qname.prefixed}[{length}]"

    def type_label(self) -> str:
        """Stable label used in structure signatures."""
        if isinstance(self.element, StructType):
            inner = ",".join(f"{f.name}:{f.xsd_type.name}" for f in self.element.fields)
            return f"array<{self.element.name}{{{inner}}}>"
        return f"array<{self.element.name}>"
