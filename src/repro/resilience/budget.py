"""A pool-wide retry budget: retries are a fraction of successes.

Per-call retry policies bound how hard *one* call hammers a struggling
server; they do nothing about the aggregate.  Under overload, N
channels each dutifully retrying 3 times turn one wave of rejections
into a 4× wave — the classic retry storm that keeps a server pinned at
saturation after the original spike has passed.

:class:`RetryBudget` is the aggregate bound (the Finagle
``RetryBudget`` idea): a token bucket **shared by every channel in a
pool**.  Successful attempts deposit a fraction of a token; each retry
withdraws a whole one.  The steady-state retry rate is therefore
capped at ``deposit_per_success`` × the success rate — when the server
stops succeeding, the budget drains and the pool stops retrying
instead of amplifying.  A denied retry surfaces the original error to
the caller; nothing blocks.

Deterministic (no clock, no randomness): the budget's state is a pure
function of the success/retry sequence, so seeded chaos runs replay
exactly.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["RetryBudget"]


class RetryBudget:
    """Token bucket bounding pool-wide retries (see module docstring).

    Parameters
    ----------
    deposit_per_success:
        Tokens deposited by each successful attempt — the long-run
        retries-per-success ratio (0.1 ⇒ at most ~10% extra load from
        retries).
    capacity:
        Bucket cap: how many retries a burst of failures may spend
        before fresh successes must refill the bucket.
    initial:
        Starting balance (defaults to *capacity*, so cold-start
        failures — the server not up yet — may still retry).
    """

    def __init__(
        self,
        *,
        deposit_per_success: float = 0.1,
        capacity: float = 20.0,
        initial: float | None = None,
    ) -> None:
        if deposit_per_success < 0.0:
            raise ValueError("deposit_per_success must be >= 0")
        if capacity < 1.0:
            raise ValueError("capacity must be >= 1")
        self.deposit_per_success = deposit_per_success
        self.capacity = capacity
        self._tokens = capacity if initial is None else min(initial, capacity)
        self._lock = threading.Lock()
        self.successes = 0
        self.spent = 0
        self.denied = 0

    # ------------------------------------------------------------------
    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def record_success(self) -> None:
        """Deposit for one successful attempt."""
        with self._lock:
            self.successes += 1
            self._tokens = min(
                self.capacity, self._tokens + self.deposit_per_success
            )

    def try_spend(self) -> bool:
        """Withdraw one retry token; False when the budget is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return {
                "budget_tokens": self._tokens,
                "budget_successes": self.successes,
                "budget_retries_spent": self.spent,
                "budget_retries_denied": self.denied,
            }
