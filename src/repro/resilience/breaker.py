"""Circuit breaker: degrade to full serialization under repeated failure.

Differential sends are only profitable while client template and
server deserializer state stay in lockstep.  When calls keep failing
(flapping network, crash-looping server), every recovery is a forced
full serialization anyway — so the breaker *opens* and pins the client
to plain full-serialization mode (the paper's first-time-send path,
which carries no cross-call state to corrupt).  After
``recovery_successes`` consecutive clean calls the breaker closes and
differential sending resumes; the first send after closing rebuilds
templates, so the server resynchronizes naturally.

Unlike a classic breaker this one never rejects calls — the degraded
mode is still correct, just slower — which suits a reproduction whose
"open" fallback is a well-defined serialization path rather than an
error.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with success-count recovery.

    Parameters
    ----------
    failure_threshold:
        Consecutive failed calls that open the breaker (≥ 1).
    recovery_successes:
        Consecutive successful calls, while open, that close it again.
    """

    def __init__(self, failure_threshold: int = 3, recovery_successes: int = 2) -> None:
        if failure_threshold < 1 or recovery_successes < 1:
            raise ValueError("breaker thresholds must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_successes = recovery_successes
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.opens = 0
        self._open = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return "open" if self._open else "closed"

    def allow_differential(self) -> bool:
        """Whether the next send may use the differential machinery."""
        return not self._open

    # ------------------------------------------------------------------
    def record_failure(self) -> None:
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        if not self._open and self.consecutive_failures >= self.failure_threshold:
            self._open = True
            self.opens += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self._open:
            self.consecutive_successes += 1
            if self.consecutive_successes >= self.recovery_successes:
                self._open = False
                self.consecutive_successes = 0

    def reset(self) -> None:
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self._open = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state}, "
            f"failures={self.consecutive_failures}, opens={self.opens})"
        )
