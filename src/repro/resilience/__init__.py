"""Fault tolerance for differential sends.

The differential-serialization premise — the stub's saved template
mirrors what the server last received — makes partial failure uniquely
dangerous: a connection reset mid-message would otherwise leave the
template claiming "delivered" while the server saw a prefix.  This
package supplies the recovery machinery:

* :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  with jitter, per-call deadlines, and the retryable/fatal error
  classifier,
* :class:`~repro.resilience.reconnect.ReconnectingTCPTransport` — a
  connection identity that survives resets,
* :class:`~repro.resilience.breaker.CircuitBreaker` — degrade to
  full-serialization mode under repeated failure,
* :class:`~repro.resilience.budget.RetryBudget` — a pool-wide token
  bucket bounding the fleet's aggregate retry rate (retry storms),
* :class:`~repro.resilience.faults.FaultInjectingTransport` — the
  deterministic, seedable fault harness the fault-matrix tests drive.

Transactional template commit itself lives with the template
(:meth:`~repro.core.template.MessageTemplate.begin_send` /
``rollback_send``) and the client stub; see DESIGN.md §"Failure model
and recovery".
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import RetryBudget
from repro.resilience.faults import FAULT_KINDS, FaultInjectingTransport, FaultSpec
from repro.resilience.reconnect import ReconnectingTCPTransport
from repro.resilience.retry import RetryPolicy, parse_retry_after, retryable_error

__all__ = [
    "RetryPolicy",
    "retryable_error",
    "parse_retry_after",
    "RetryBudget",
    "ReconnectingTCPTransport",
    "CircuitBreaker",
    "FaultSpec",
    "FaultInjectingTransport",
    "FAULT_KINDS",
]
