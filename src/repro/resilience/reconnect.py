"""A reconnecting wrapper around :class:`~repro.transport.tcp.TCPTransport`.

The paper's transport is one persistent socket: a single connection
reset kills the channel for good.  This wrapper gives the channel a
connection *identity* instead of a connection *object* — any transport
failure marks the socket broken and tears it down; the next send (or
receive) transparently dials a fresh connection.

It deliberately does **not** retry on its own: resending a
half-transmitted differential message without rolling the template
back would desynchronize the server, so retry scheduling belongs to
the layer that also owns the template rollback
(:class:`~repro.channel.RPCChannel` with its
:class:`~repro.resilience.retry.RetryPolicy`).
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Tuple

from repro.errors import TransportError
from repro.hardening.limits import ResourceLimits
from repro.transport.base import ViewStream
from repro.transport.tcp import TCPTransport

__all__ = ["ReconnectingTCPTransport"]


class ReconnectingTCPTransport:
    """Lazily (re)connecting TCP transport with broken-socket tracking.

    Counters
    --------
    connections:
        Sockets dialed over the wrapper's lifetime.
    reconnects:
        Connections dialed *after* the first (i.e. recoveries).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        gather: bool = True,
        connect_timeout: float = 5.0,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.gather = gather
        self.connect_timeout = connect_timeout
        #: Passed to each dialed TCPTransport (recv-size cap etc.).
        self.limits = limits
        self._tcp: Optional[TCPTransport] = None
        self._closed = False
        # Guards dial/teardown: a pipelined channel drives send and
        # receive from two threads over this one connection identity,
        # and a concurrent redial must not leak a half-opened socket.
        self._conn_lock = threading.Lock()
        self.connections = 0
        self.messages = 0
        self.bytes_total = 0
        # Redial cooldown from a server Retry-After hint: a dial
        # attempted before it expires waits out the remainder.  The
        # channel's backoff normally covers the whole hint, so this
        # only bites callers that redial immediately (pipelining).
        self._cooldown_until = 0.0
        self.cooldown_waits = 0

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._tcp is not None

    @property
    def reconnects(self) -> int:
        return max(0, self.connections - 1)

    def note_retry_after(self, seconds: float) -> None:
        """Delay the next redial by *seconds* (server Retry-After).

        Honored only when dialing a *new* connection — an established
        socket keeps working.  A later, longer hint extends the
        cooldown; it never shrinks.
        """
        if seconds <= 0.0:
            return
        deadline = time.monotonic() + seconds
        with self._conn_lock:
            if deadline > self._cooldown_until:
                self._cooldown_until = deadline

    def connect(self) -> TCPTransport:
        """Dial if not connected; return the live inner transport."""
        with self._conn_lock:
            if self._closed:
                raise TransportError("transport is closed")
            if self._tcp is None:
                remaining = self._cooldown_until - time.monotonic()
                if remaining > 0:
                    self.cooldown_waits += 1
                    time.sleep(remaining)
                self._tcp = TCPTransport(
                    self.host,
                    self.port,
                    gather=self.gather,
                    connect_timeout=self.connect_timeout,
                    limits=self.limits,
                )
                self.connections += 1
            return self._tcp

    def disconnect(self) -> None:
        """Tear down the current socket (if any); the next use redials."""
        with self._conn_lock:
            if self._tcp is not None:
                self._tcp.close()
                self._tcp = None

    # ------------------------------------------------------------------
    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        tcp = self.connect()
        try:
            sent = tcp.send_message(views, total_bytes)
        except TransportError:
            self.disconnect()
            raise
        self.messages += 1
        self.bytes_total += sent
        return sent

    def recv_http_response(
        self, limit: Optional[int] = None
    ) -> Tuple[int, dict, bytes]:
        """*limit* ``None`` defers to the dialed transport's limits."""
        tcp = self.connect()
        try:
            return tcp.recv_http_response(limit)
        except TransportError:
            # Covers framing errors too: half a response may be
            # buffered on the socket, so request/response pairing is
            # lost either way — drop the connection.
            self.disconnect()
            raise

    def close(self) -> None:
        self.disconnect()
        self._closed = True

    def __enter__(self) -> "ReconnectingTCPTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
