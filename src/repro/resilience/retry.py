"""Retry policy: backoff schedule, per-call deadline, error classifier.

A failed differential send leaves the client template rolled back and
*suspect* (see :meth:`repro.core.template.MessageTemplate.rollback_send`),
so a retry is always safe: the resend is a forced full serialization
that resynchronizes the server's differential deserializer.  What the
policy decides is only *whether* and *when* to retry.

Classification rules:

* :class:`~repro.errors.SOAPFaultError` — the server answered; the
  round trip *worked*.  Never retried.
* :class:`~repro.errors.HTTPStatusError` — retryable iff the status is
  5xx (server-side, possibly transient); 4xx is a permanent request
  error.
* :class:`~repro.errors.HTTPFramingError` (including
  :class:`~repro.errors.IncompleteHTTPError` escaping a parser) — the
  peer is speaking garbage; retrying would resend into the same
  confusion.  Fatal.
* any other :class:`~repro.errors.TransportError` — connection reset,
  refused, closed mid-message: retryable.
* everything else (schema errors, template errors...) — a local bug,
  fatal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    HTTPFramingError,
    HTTPStatusError,
    SOAPFaultError,
    TransportError,
)

__all__ = ["RetryPolicy", "retryable_error", "parse_retry_after"]


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Parse a ``Retry-After`` header value into seconds.

    Only the delta-seconds form is produced by this stack (and by the
    admission controller); HTTP-dates and garbage parse to ``None`` —
    an unusable hint must never break the retry path.
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0.0 else None


def retryable_error(exc: BaseException) -> bool:
    """Apply the classification table above to *exc*."""
    if isinstance(exc, SOAPFaultError):
        return False
    if isinstance(exc, HTTPStatusError):
        return exc.status >= 500
    if isinstance(exc, HTTPFramingError):
        return False
    return isinstance(exc, TransportError)


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter and a per-call deadline.

    Parameters
    ----------
    max_attempts:
        Total tries per call, including the first (≥ 1).
    base_delay / multiplier / max_delay:
        Backoff before attempt *k* (1-based retries) is
        ``min(max_delay, base_delay * multiplier**(k-1))`` plus jitter.
    jitter:
        Fraction of the delay added uniformly at random ([0, jitter)).
        Seeded, so a fixed ``seed`` gives a reproducible schedule.
    deadline:
        Wall-clock budget in seconds for one logical call across all
        attempts (None = unbounded).  Checked before sleeping: a retry
        whose backoff would overrun the deadline is not attempted.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def retryable(self, exc: BaseException) -> bool:
        return retryable_error(exc)

    def backoff(self, retry_number: int, hint: Optional[float] = None) -> float:
        """Sleep before the *retry_number*-th retry (1-based).

        *hint* is a server ``Retry-After`` suggestion in seconds: the
        delay is raised to at least the hint (the server knows when it
        expects capacity back), but never beyond :attr:`max_delay` —
        the client's own ceiling wins over a hostile or confused hint.
        """
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry_number - 1)
        )
        if self.jitter > 0.0:
            delay += delay * self.jitter * self._rng.random()
        if hint is not None and hint > 0.0:
            delay = max(delay, min(float(hint), self.max_delay))
        return delay

    def admits(self, attempts_made: int, elapsed: float, next_delay: float) -> bool:
        """May another attempt start, given the budget spent so far?"""
        if attempts_made >= self.max_attempts:
            return False
        if self.deadline is not None and elapsed + next_delay >= self.deadline:
            return False
        return True
