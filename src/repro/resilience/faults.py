"""Deterministic fault injection for transport-level failure testing.

:class:`FaultInjectingTransport` wraps any byte transport (a raw
:class:`~repro.transport.tcp.TCPTransport`, a
:class:`~repro.resilience.reconnect.ReconnectingTCPTransport`, or an
in-memory sink) and injects scripted faults at exact points in the
byte stream:

* ``reset-mid-send`` — forward exactly ``at_byte`` wire bytes to the
  peer, kill the connection, raise :class:`TransportError` (a
  connection reset while streaming: the server saw a prefix).
* ``truncate`` — forward ``at_byte`` bytes, kill the connection, but
  *report success* to the sender; the loss surfaces on the next
  receive (a silent half-write, e.g. a dying NAT).
* ``delay`` — sleep ``delay`` seconds, then forward untouched (for
  deadline/backoff tests).
* ``reset-before-recv`` — deliver the message intact, then fail the
  response read (the reply got lost).
* ``corrupt-response`` — deliver and receive normally, then XOR one
  byte of the response body (payload corruption past the checksum).
* ``http-status`` — receive normally but overwrite the response
  status (e.g. a 503 from an overloaded middlebox).

Faults are scheduled per *message ordinal* (``script={2: spec}``
faults the third send) or drawn pseudo-randomly per message with
``rate``/``seed`` — both fully deterministic for a fixed seed, so a
failing fault-matrix case replays exactly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.transport.base import ViewStream

__all__ = ["FaultSpec", "FaultInjectingTransport", "FAULT_KINDS"]

FAULT_KINDS = (
    "reset-mid-send",
    "truncate",
    "delay",
    "reset-before-recv",
    "corrupt-response",
    "http-status",
)


@dataclass(slots=True)
class FaultSpec:
    """One scripted fault.

    ``at_byte`` counts wire bytes within the faulted message (framing
    included); ``corrupt_at`` indexes into the response body modulo
    its length; ``xor_mask`` must not be 0 (that would be a no-op).
    """

    kind: str
    at_byte: int = 0
    delay: float = 0.0
    status: int = 503
    corrupt_at: int = 0
    xor_mask: int = 0xFF

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in ("corrupt-response",) and self.xor_mask == 0:
            raise ValueError("xor_mask 0 would corrupt nothing")


class FaultInjectingTransport:
    """Wraps a byte transport, injecting scripted faults (see module doc)."""

    def __init__(
        self,
        inner,
        *,
        script: Optional[Dict[int, FaultSpec]] = None,
        rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.script: Dict[int, FaultSpec] = dict(script or {})
        self.rate = rate
        self._rng = random.Random(seed)
        self.send_index = 0
        #: (message ordinal, fault kind) pairs actually fired.
        self.injected: List[Tuple[int, str]] = []
        self._recv_fault: Optional[FaultSpec] = None

    # ------------------------------------------------------------------
    def _pick_fault(self, index: int) -> Optional[FaultSpec]:
        spec = self.script.get(index)
        if spec is None and self.rate > 0.0 and self._rng.random() < self.rate:
            kind = self._rng.choice(FAULT_KINDS)
            spec = FaultSpec(
                kind,
                at_byte=self._rng.randrange(1, 4096),
                delay=0.001,
                corrupt_at=self._rng.randrange(0, 1 << 16),
            )
        return spec

    def _kill_connection(self) -> None:
        """Drop the inner connection without closing the wrapper."""
        disconnect = getattr(self.inner, "disconnect", None)
        if disconnect is not None:
            disconnect()
        else:
            self.inner.close()

    # ------------------------------------------------------------------
    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        index = self.send_index
        self.send_index += 1
        spec = self._pick_fault(index)
        if spec is None:
            return self.inner.send_message(views, total_bytes)

        self.injected.append((index, spec.kind))
        if spec.kind == "delay":
            time.sleep(spec.delay)
            return self.inner.send_message(views, total_bytes)

        if spec.kind in ("reset-before-recv", "corrupt-response", "http-status"):
            sent = self.inner.send_message(views, total_bytes)
            self._recv_fault = spec
            return sent

        # reset-mid-send / truncate: forward a byte-exact prefix.
        assert spec.kind in ("reset-mid-send", "truncate")
        forwarded = 0
        prefix: List[bytes] = []
        for view in views:
            chunk = bytes(view)
            room = spec.at_byte - forwarded
            if room <= 0:
                break
            take = chunk[:room]
            prefix.append(take)
            forwarded += len(take)
            if len(take) < len(chunk):
                break
        if prefix:
            self.inner.send_message(prefix, None)
        self._kill_connection()
        if spec.kind == "reset-mid-send":
            raise TransportError(
                f"injected connection reset after {forwarded} bytes"
            )
        # truncate: pretend the whole message went out; the loss
        # surfaces when the caller waits for a response.
        self._recv_fault = spec
        return total_bytes if total_bytes is not None else forwarded

    # ------------------------------------------------------------------
    def recv_http_response(self, limit: Optional[int] = None):
        """*limit* ``None`` defers to the wrapped transport's
        :class:`~repro.hardening.ResourceLimits` recv cap."""
        spec, self._recv_fault = self._recv_fault, None
        if spec is not None and spec.kind in ("truncate", "reset-before-recv"):
            if spec.kind == "reset-before-recv":
                self._kill_connection()
            raise TransportError(f"injected {spec.kind}: response lost")
        status, headers, body = self.inner.recv_http_response(limit)
        if spec is not None and spec.kind == "http-status":
            return spec.status, headers, b""
        if spec is not None and spec.kind == "corrupt-response" and body:
            mutated = bytearray(body)
            pos = spec.corrupt_at % len(mutated)
            mutated[pos] ^= spec.xor_mask
            body = bytes(mutated)
        return status, headers, body

    # ------------------------------------------------------------------
    @property
    def reconnects(self) -> int:
        """Delegated from the wrapped transport (0 if it has none)."""
        return getattr(self.inner, "reconnects", 0)

    def disconnect(self) -> None:
        self._kill_connection()

    def close(self) -> None:
        self.inner.close()
