"""The gSOAP-role baseline: fastest streaming full serialization.

gSOAP is a C toolkit that serializes straight into output buffers with
per-element conversion; its Python analogue is a flat parts list
joined once — no intermediate tree, no template, no bookkeeping.  The
array hot loop is a single list comprehension over pre-formatted
lexical values with pre-encoded tags, which is as fast as full
serialization gets in CPython.

Optional multi-ref accessor support (the SOAP section-5 feature the
paper notes gSOAP has and bSOAP lacks): parameters referencing the
*same* Python array object are serialized once and ``href``-referenced
afterwards.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.common import attrs_bytes, param_texts, serialize_message_parts
from repro.lexical.floats import FloatFormat
from repro.schema.composite import ArrayType, StructType
from repro.soap.encoding import array_open_attrs, xsi_type_attr
from repro.soap.message import Parameter, SOAPMessage
from repro.soap.multiref import MultiRefTable
from repro.transport.base import Transport
from repro.transport.loopback import NullSink

__all__ = ["GSoapLikeClient"]


class GSoapLikeClient:
    """Full-serialization streaming client (see module docstring)."""

    def __init__(
        self,
        transport: Optional[Transport] = None,
        *,
        float_format: FloatFormat = FloatFormat.MINIMAL,
        multiref: bool = False,
    ) -> None:
        self.transport: Transport = transport if transport is not None else NullSink()
        self.float_format = float_format
        self.multiref = multiref
        self.sends = 0
        self.bytes_total = 0

    # ------------------------------------------------------------------
    def _emit_param(
        self, parts: List[bytes], param: Parameter, fmt: FloatFormat, refs=None
    ) -> None:
        name = param.name.encode("ascii")
        ptype = param.ptype
        if isinstance(ptype, ArrayType):
            if refs is not None:
                ref, first = refs.reference(param.value)
                if not first:
                    parts.append(b"<" + name + b' href="#' + ref.encode() + b'"/>')
                    return
                attrs = array_open_attrs(ptype, param.length)
                attrs["id"] = ref
                refs.mark_emitted(ref)
            else:
                attrs = array_open_attrs(ptype, param.length)
            parts.append(b"<" + name + attrs_bytes(attrs) + b">")
            texts = param_texts(param, fmt)
            element = ptype.element
            tag = ptype.item_tag.encode("ascii")
            if isinstance(element, StructType):
                arity = element.arity
                fo = [b"<" + f.name.encode("ascii") + b">" for f in element.fields]
                fc = [b"</" + f.name.encode("ascii") + b">" for f in element.fields]
                item_open = b"<" + tag + b">"
                item_close = b"</" + tag + b">"
                # Hot loop: one joined bytes object per item.
                parts.append(
                    b"".join(
                        item_open
                        + b"".join(
                            fo[f] + texts[i * arity + f] + fc[f]
                            for f in range(arity)
                        )
                        + item_close
                        for i in range(len(texts) // arity)
                    )
                )
            else:
                open_item = b"<" + tag + b">"
                close_item = b"</" + tag + b">"
                parts.append(
                    b"".join(open_item + t + close_item for t in texts)
                )
            parts.append(b"</" + name + b">")
        elif isinstance(ptype, StructType):
            parts.append(
                b"<" + name + attrs_bytes({"xsi:type": f"ns:{ptype.name}"}) + b">"
            )
            texts = param_texts(param, fmt)
            for f, text in zip(ptype.fields, texts):
                fn = f.name.encode("ascii")
                parts.append(b"<" + fn + b">" + text + b"</" + fn + b">")
            parts.append(b"</" + name + b">")
        else:
            key, value = xsi_type_attr(ptype)
            text = param_texts(param, fmt)[0]
            parts.append(
                b"<" + name + attrs_bytes({key: value}) + b">"
                + text + b"</" + name + b">"
            )

    def serialize(self, message: SOAPMessage) -> List[bytes]:
        """Full serialization of *message* into byte segments."""
        refs = MultiRefTable() if self.multiref else None

        def emit(parts: List[bytes], param: Parameter, fmt: FloatFormat) -> None:
            self._emit_param(parts, param, fmt, refs)

        return serialize_message_parts(message, self.float_format, emit)

    def send(self, message: SOAPMessage) -> int:
        parts = self.serialize(message)
        total = sum(len(p) for p in parts)
        sent = self.transport.send_message(parts, total)
        self.sends += 1
        self.bytes_total += sent
        return sent

    def close(self) -> None:
        self.transport.close()
