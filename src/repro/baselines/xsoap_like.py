"""The XSOAP-role baseline: DOM-then-serialize full serialization.

XSOAP (SoapRMI, Java) reflects call parameters into an object tree and
walks it to emit XML.  The Python analogue builds an :class:`Element`
node per XML element — one object allocation plus child-list append
per array item and per struct field — and then recursively renders the
tree.  The extra allocation/traversal work is exactly why the paper's
Figure 2 shows XSOAP above gSOAP/bSOAP, and it reproduces here.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.common import param_texts
from repro.lexical.floats import FloatFormat
from repro.schema.composite import ArrayType, StructType
from repro.soap.constants import (
    ENCODING_STYLE_ATTR,
    SERVICE_PREFIX,
    SOAP_ENV_PREFIX,
    STANDARD_NSDECLS,
)
from repro.soap.encoding import array_open_attrs, xsi_type_attr
from repro.soap.message import Parameter, SOAPMessage
from repro.transport.base import Transport
from repro.transport.loopback import NullSink
from repro.xmlkit.escape import escape_attr

__all__ = ["Element", "XSoapLikeClient"]


class Element:
    """A minimal DOM node: tag, attributes, text, children."""

    __slots__ = ("tag", "attrs", "text", "children")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        text: bytes = b"",
    ) -> None:
        self.tag = tag
        self.attrs = attrs or {}
        self.text = text
        self.children: List["Element"] = []

    def append(self, child: "Element") -> "Element":
        self.children.append(child)
        return child

    def render(self, out: List[bytes]) -> None:
        """Recursive serialization into a parts list."""
        tag = self.tag.encode("ascii")
        if self.attrs:
            attr_parts = [b"<", tag]
            for key, value in self.attrs.items():
                attr_parts.append(
                    b" " + key.encode("ascii") + b'="'
                    + escape_attr(value.encode("utf-8")) + b'"'
                )
            attr_parts.append(b">")
            out.append(b"".join(attr_parts))
        else:
            out.append(b"<" + tag + b">")
        if self.text:
            out.append(self.text)
        for child in self.children:
            child.render(out)
        out.append(b"</" + tag + b">")

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child with *tag* (tests)."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None


class XSoapLikeClient:
    """Full-serialization DOM client (see module docstring)."""

    def __init__(
        self,
        transport: Optional[Transport] = None,
        *,
        float_format: FloatFormat = FloatFormat.MINIMAL,
    ) -> None:
        self.transport: Transport = transport if transport is not None else NullSink()
        self.float_format = float_format
        self.sends = 0
        self.bytes_total = 0

    # ------------------------------------------------------------------
    def build_tree(self, message: SOAPMessage) -> Element:
        """Reflect the message into a DOM (the XSOAP-ish cost center)."""
        nsdecls = dict(STANDARD_NSDECLS)
        nsdecls[SERVICE_PREFIX] = message.namespace
        env_attrs = {
            ("xmlns" if not p else f"xmlns:{p}"): uri for p, uri in nsdecls.items()
        }
        env_attrs[ENCODING_STYLE_ATTR[0]] = ENCODING_STYLE_ATTR[1]
        envelope = Element(f"{SOAP_ENV_PREFIX}:Envelope", env_attrs)
        body = envelope.append(Element(f"{SOAP_ENV_PREFIX}:Body"))
        op = body.append(Element(f"{SERVICE_PREFIX}:{message.operation}"))
        for param in message.params:
            op.append(self._param_node(param))
        return envelope

    def _param_node(self, param: Parameter) -> Element:
        fmt = self.float_format
        ptype = param.ptype
        texts = param_texts(param, fmt)
        if isinstance(ptype, ArrayType):
            attrs = {k: v for k, v in array_open_attrs(ptype, param.length).items()}
            node = Element(param.name, attrs)
            element = ptype.element
            if isinstance(element, StructType):
                arity = element.arity
                names = [f.name for f in element.fields]
                for i in range(len(texts) // arity):
                    item = node.append(Element(ptype.item_tag))
                    for f in range(arity):
                        item.append(Element(names[f], text=texts[i * arity + f]))
            else:
                tag = ptype.item_tag
                for text in texts:
                    node.append(Element(tag, text=text))
            return node
        if isinstance(ptype, StructType):
            node = Element(param.name, {"xsi:type": f"ns:{ptype.name}"})
            for f, text in zip(ptype.fields, texts):
                node.append(Element(f.name, text=text))
            return node
        key, value = xsi_type_attr(ptype)
        return Element(param.name, {key: value}, text=texts[0])

    def serialize(self, message: SOAPMessage) -> List[bytes]:
        tree = self.build_tree(message)
        parts: List[bytes] = [b'<?xml version="1.0" encoding="UTF-8"?>']
        tree.render(parts)
        return parts

    def send(self, message: SOAPMessage) -> int:
        parts = self.serialize(message)
        total = sum(len(p) for p in parts)
        sent = self.transport.send_message(parts, total)
        self.sends += 1
        self.bytes_total += sent
        return sent

    def close(self) -> None:
        self.transport.close()
