"""Baseline SOAP serializers the paper compares against.

* :class:`~repro.baselines.gsoap_like.GSoapLikeClient` — plays the
  role of gSOAP: the fastest possible *streaming* full serializer in
  the host language (flat parts list + join, no DOM, no template).
* :class:`~repro.baselines.xsoap_like.XSoapLikeClient` — plays the
  role of XSOAP: a document-object-model is built per call and then
  walked to produce bytes, the design that makes DOM-based toolkits
  slower.
* :class:`~repro.baselines.naive.NaiveClient` — bytes-concatenation
  strawman, for teaching and sanity floors.

All baselines emit envelopes interoperable with the bSOAP templates
(same namespaces/array encoding), verified by the cross-equivalence
tests.
"""

from repro.baselines.common import FullSerializer, serialize_message_parts
from repro.baselines.gsoap_like import GSoapLikeClient
from repro.baselines.xsoap_like import Element, XSoapLikeClient
from repro.baselines.naive import NaiveClient

__all__ = [
    "FullSerializer",
    "serialize_message_parts",
    "GSoapLikeClient",
    "XSoapLikeClient",
    "Element",
    "NaiveClient",
]
