"""Naive concatenation baseline.

Accumulates the message by repeated ``bytes`` concatenation — the
textbook anti-pattern (quadratic in message size).  Kept as a floor
for the teaching benches and to sanity-check that the harness can
resolve order-of-magnitude differences.  Do not use above ~10k items.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.common import attrs_bytes, param_texts
from repro.lexical.floats import FloatFormat
from repro.schema.composite import ArrayType, StructType
from repro.soap.encoding import array_open_attrs, xsi_type_attr
from repro.soap.envelope import envelope_layout
from repro.soap.message import SOAPMessage
from repro.transport.base import Transport
from repro.transport.loopback import NullSink

__all__ = ["NaiveClient"]


class NaiveClient:
    """Quadratic bytes-concatenation serializer."""

    def __init__(
        self,
        transport: Optional[Transport] = None,
        *,
        float_format: FloatFormat = FloatFormat.MINIMAL,
    ) -> None:
        self.transport: Transport = transport if transport is not None else NullSink()
        self.float_format = float_format
        self.sends = 0

    def serialize(self, message: SOAPMessage) -> List[bytes]:
        layout = envelope_layout(message.namespace, message.operation)
        out = bytes(layout.prefix)
        for param in message.params:
            texts = param_texts(param, self.float_format)
            name = param.name.encode("ascii")
            ptype = param.ptype
            if isinstance(ptype, ArrayType):
                out += b"<" + name + attrs_bytes(
                    array_open_attrs(ptype, param.length)
                ) + b">"
                element = ptype.element
                tag = ptype.item_tag.encode("ascii")
                if isinstance(element, StructType):
                    arity = element.arity
                    names = [f.name.encode("ascii") for f in element.fields]
                    for i in range(len(texts) // arity):
                        out += b"<" + tag + b">"
                        for f in range(arity):
                            out += (
                                b"<" + names[f] + b">" + texts[i * arity + f]
                                + b"</" + names[f] + b">"
                            )
                        out += b"</" + tag + b">"
                else:
                    for text in texts:
                        out += b"<" + tag + b">" + text + b"</" + tag + b">"
                out += b"</" + name + b">"
            elif isinstance(ptype, StructType):
                out += b"<" + name + b">"
                for f, text in zip(ptype.fields, texts):
                    fn = f.name.encode("ascii")
                    out += b"<" + fn + b">" + text + b"</" + fn + b">"
                out += b"</" + name + b">"
            else:
                key, value = xsi_type_attr(ptype)
                out += (
                    b"<" + name + attrs_bytes({key: value}) + b">"
                    + texts[0] + b"</" + name + b">"
                )
        out += layout.suffix
        return [out]

    def send(self, message: SOAPMessage) -> int:
        parts = self.serialize(message)
        sent = self.transport.send_message(parts, len(parts[0]))
        self.sends += 1
        return sent

    def close(self) -> None:
        self.transport.close()
