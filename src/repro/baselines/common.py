"""Shared plumbing for the baseline clients.

Every baseline implements :class:`FullSerializer` — serialize the
whole message on every send — over the same transport interface as the
bSOAP client, so the performance study swaps implementations without
touching the harness.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.dut.tracked import format_column
from repro.errors import SchemaError
from repro.lexical.floats import FloatFormat
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import STRING, XSDType
from repro.soap.encoding import array_open_attrs, xsi_type_attr
from repro.soap.message import Parameter, SOAPMessage
from repro.xmlkit.escape import escape_attr

__all__ = ["FullSerializer", "serialize_message_parts", "param_texts", "attrs_bytes"]


@runtime_checkable
class FullSerializer(Protocol):
    """A client that fully serializes and sends a message."""

    def serialize(self, message: SOAPMessage) -> List[bytes]:
        """Produce the message as an ordered list of byte segments."""
        ...  # pragma: no cover - protocol

    def send(self, message: SOAPMessage) -> int:
        """Serialize and transmit; return payload bytes."""
        ...  # pragma: no cover - protocol


def attrs_bytes(attrs: dict) -> bytes:
    """Render an attribute mapping as raw tag-attribute bytes."""
    parts = []
    for key, value in attrs.items():
        parts.append(
            b" " + key.encode("ascii") + b'="'
            + escape_attr(value.encode("utf-8")) + b'"'
        )
    return b"".join(parts)


def param_texts(param: Parameter, fmt: FloatFormat) -> List[bytes]:
    """Lexical forms of a parameter's leaves in document order."""
    ptype, value = param.ptype, param.value
    if isinstance(ptype, ArrayType):
        element = ptype.element
        if isinstance(element, StructType):
            if isinstance(value, dict):
                cols = {k: np.asarray(v) for k, v in value.items()}
            else:
                cols = {
                    f.name: [
                        rec[i] if isinstance(rec, tuple) else getattr(rec, f.name)
                        for rec in value  # type: ignore[union-attr]
                    ]
                    for i, f in enumerate(element.fields)
                }
            arity = element.arity
            n = len(next(iter(cols.values())))
            out: List[bytes] = [b""] * (n * arity)
            for fpos, f in enumerate(element.fields):
                out[fpos::arity] = format_column(f.xsd_type, cols[f.name], fmt)
            return out
        if element is STRING:
            return [STRING.format(s) for s in value]  # type: ignore[union-attr]
        return format_column(element, np.asarray(value), fmt)
    if isinstance(ptype, StructType):
        texts = []
        for f in ptype.fields:
            v = value[f.name] if isinstance(value, dict) else getattr(value, f.name)
            texts.append(format_column(f.xsd_type, [v], fmt)[0])
        return texts
    if isinstance(ptype, XSDType):
        return format_column(ptype, [value], fmt)
    raise SchemaError(f"unsupported parameter type {ptype!r}")


def serialize_message_parts(
    message: SOAPMessage,
    fmt: FloatFormat,
    emit_param,
) -> List[bytes]:
    """Envelope skeleton + per-parameter payload via *emit_param*."""
    from repro.soap.envelope import envelope_layout

    layout = envelope_layout(message.namespace, message.operation)
    parts: List[bytes] = [layout.prefix]
    for param in message.params:
        emit_param(parts, param, fmt)
    parts.append(layout.suffix)
    return parts
