"""bSOAP — Differential Serialization for Optimized SOAP Performance.

A from-scratch Python reproduction of Abu-Ghazaleh, Lewis &
Govindaraju's HPDC 2004 system: a SOAP stack whose client stub saves
serialized messages as templates and, on later sends, re-serializes
only the values that changed (tracked through a Data Update Tracking
table), with message chunking, on-the-fly expansion (shifting),
whitespace stuffing, slack stealing, and chunk overlaying.

Quickstart::

    import numpy as np
    from repro import BSoapClient, Parameter, SOAPMessage
    from repro.schema import ArrayType, DOUBLE
    from repro.transport import MemcpySink

    client = BSoapClient(MemcpySink())
    msg = SOAPMessage(
        "putVector", "urn:solver",
        [Parameter("x", ArrayType(DOUBLE), np.linspace(0, 1, 1000))],
    )
    call = client.prepare(msg)
    first = call.send()                    # full serialization
    again = call.send()                    # content match: bytes reused
    call.tracked("x")[42] = 3.14           # dirty one value
    diff = call.send()                     # rewrites exactly one field
"""

from repro.core import (
    BSoapClient,
    DeltaPolicy,
    DiffPolicy,
    Expansion,
    MatchKind,
    MessageTemplate,
    OverlayPolicy,
    PlanPolicy,
    PreparedCall,
    SendReport,
    StuffMode,
    StuffingPolicy,
    build_template,
)
from repro.channel import RPCChannel
from repro.errors import ReproError
from repro.hardening import DEFAULT_LIMITS, ResourceLimits
from repro.resilience import (
    CircuitBreaker,
    FaultInjectingTransport,
    FaultSpec,
    ReconnectingTCPTransport,
    RetryPolicy,
)
from repro.runtime import (
    ClientPool,
    PipelinedChannel,
    PipelinedSender,
    ServerSessionManager,
)
from repro.soap import Parameter, SOAPMessage
from repro.wire import DeltaEncoder, DeltaLoopback, DeltaSession

__version__ = "1.0.0"

__all__ = [
    "BSoapClient",
    "PreparedCall",
    "DiffPolicy",
    "StuffingPolicy",
    "StuffMode",
    "OverlayPolicy",
    "PlanPolicy",
    "DeltaPolicy",
    "DeltaEncoder",
    "DeltaSession",
    "DeltaLoopback",
    "Expansion",
    "MatchKind",
    "SendReport",
    "MessageTemplate",
    "build_template",
    "SOAPMessage",
    "Parameter",
    "RPCChannel",
    "RetryPolicy",
    "CircuitBreaker",
    "ReconnectingTCPTransport",
    "FaultSpec",
    "FaultInjectingTransport",
    "ClientPool",
    "PipelinedChannel",
    "PipelinedSender",
    "ServerSessionManager",
    "ResourceLimits",
    "DEFAULT_LIMITS",
    "ReproError",
    "__version__",
]
