"""Double lexical forms — the serialization bottleneck.

Chiu et al. measured float↔ASCII conversion at ~90% of SOAP call cost;
the same asymmetry holds here (formatting a Python float costs on the
order of a microsecond, while copying its already-serialized bytes is
tens of nanoseconds).  Differential serialization's win comes from
skipping calls into this module.

Two formats are supported:

``FloatFormat.SHORTEST``
    Python ``repr`` — the shortest string that round-trips exactly.
    Lengths vary from 1 (``0``... actually ``0.0``) to 24 characters,
    which is what makes shifting/stuffing interesting.
``FloatFormat.G17``
    ``%.17g`` — fixed 17 significant digits, also round-trip exact,
    at most 24 characters.
``FloatFormat.FIXED``
    ``%24.16e`` — every finite double occupies **exactly** 24
    characters (17 significant digits, round-trip exact; shorter
    forms are left-padded with spaces, legal under XSD's
    ``whiteSpace=collapse``).  Constant widths mean a resend can
    never shift a closing tag, which is what enables the
    rewrite-plan *splice* path (``repro.core.plan``) to write whole
    dirty runs with strided NumPy assignments.

Special values use the XML Schema lexical forms ``INF``, ``-INF`` and
``NaN``.

Batch converters accept ``cached=True`` to route repeated values
through the conversion memo in :mod:`repro.lexical.cache` —
byte-identical output, one dict probe instead of a fresh conversion
on a hit.
"""

from __future__ import annotations

import enum
import math
from typing import List, Sequence

import numpy as np

from repro.errors import LexicalError
from repro.lexical.cache import (
    DOUBLE_FIXED_WIDTH,
    format_double_fixed,
    memo_format_batch,
)

__all__ = [
    "DOUBLE_MAX_WIDTH",
    "DOUBLE_MIN_WIDTH",
    "DOUBLE_FIXED_WIDTH",
    "FloatFormat",
    "format_double",
    "parse_double",
    "format_double_array",
]

#: Maximum characters any finite double can need in either format
#: (e.g. ``-2.2250738585072014e-308`` — paper §4.4: 24 characters).
DOUBLE_MAX_WIDTH = 24

#: Smallest possible serialized double (paper §4.3: one character,
#: e.g. ``0`` in the paper's C encoder; Python's shortest form for
#: ``5.0`` is ``5.0`` but integral-valued floats can be emitted as a
#: bare digit by the minimal encoder used in the width studies).
DOUBLE_MIN_WIDTH = 1

_ALLOWED = frozenset(b"+-.0123456789eE")


class FloatFormat(enum.Enum):
    """Selectable double→ASCII conversion policy."""

    SHORTEST = "shortest"
    G17 = "g17"
    #: Minimal form: like SHORTEST but integral values drop ``.0``
    #: (``5.0`` → ``5``).  This matches the paper's C encoder, whose
    #: smallest double costs a single character, and is the default.
    MINIMAL = "minimal"
    #: Constant-width ``%24.16e``: every finite double is exactly 24
    #: characters, enabling splice-run rewrite plans (no closing-tag
    #: shift can ever occur for doubles).
    FIXED = "fixed"


def format_double(value: float, fmt: FloatFormat = FloatFormat.MINIMAL) -> bytes:
    """Serialize one double to its lexical form."""
    if value != value:  # NaN
        return b"NaN"
    if value == math.inf:
        return b"INF"
    if value == -math.inf:
        return b"-INF"
    if fmt is FloatFormat.G17:
        return b"%.17g" % value
    if fmt is FloatFormat.FIXED:
        return format_double_fixed(value)
    text = repr(value)
    if fmt is FloatFormat.MINIMAL:
        if text.endswith(".0"):
            text = text[:-2]
        elif ".0e" in text:  # e.g. 1.0e+100 never produced by repr, but be safe
            text = text.replace(".0e", "e")
    return text.encode("ascii")


def parse_double(data: bytes) -> float:
    """Parse a double lexical form (XSD whiteSpace=collapse)."""
    text = data.strip(b" \t\r\n")
    if not text:
        raise LexicalError("empty double lexical form")
    if text == b"INF":
        return math.inf
    if text == b"-INF":
        return -math.inf
    if text == b"NaN":
        return math.nan
    if any(b not in _ALLOWED for b in text):
        raise LexicalError(f"invalid double lexical form {data!r}")
    try:
        return float(text)
    except ValueError as exc:
        raise LexicalError(f"invalid double lexical form {data!r}") from exc


def _format_minimal_one(v: float) -> bytes:
    text = repr(v)
    if text.endswith(".0"):
        text = text[:-2]
    return text.encode("ascii")


def _format_shortest_one(v: float) -> bytes:
    return repr(v).encode("ascii")


def _format_g17_one(v: float) -> bytes:
    return b"%.17g" % v


#: Per-format finite-value converters for the memoized batch path.
_FORMAT_ONE = {
    FloatFormat.MINIMAL: _format_minimal_one,
    FloatFormat.SHORTEST: _format_shortest_one,
    FloatFormat.G17: _format_g17_one,
    FloatFormat.FIXED: format_double_fixed,
}


def format_double_array(
    values: Sequence[float] | np.ndarray,
    fmt: FloatFormat = FloatFormat.MINIMAL,
    cached: bool = False,
) -> List[bytes]:
    """Batch conversion of doubles to lexical forms.

    The hot loop runs over unboxed Python floats (``ndarray.tolist``)
    — the fastest pure-Python formulation; this *is* the measured
    conversion cost that differential serialization avoids.  With
    ``cached=True`` repeated finite values resolve through the
    conversion memo (:mod:`repro.lexical.cache`) instead of being
    re-converted; output bytes are identical either way.
    """
    if isinstance(values, np.ndarray):
        if values.dtype.kind != "f":
            raise LexicalError(f"expected float array, got dtype {values.dtype}")
        finite = bool(np.isfinite(values).all())
        values = values.tolist()
    else:
        values = list(values)
        finite = all(v == v and abs(v) != math.inf for v in values)

    if not finite:
        return [format_double(v, fmt) for v in values]

    if cached:
        return memo_format_batch(values, fmt.value, _FORMAT_ONE[fmt])

    if fmt is FloatFormat.G17:
        return [b"%.17g" % v for v in values]

    if fmt is FloatFormat.FIXED:
        return [b"%24.16e" % v for v in values]

    if fmt is FloatFormat.MINIMAL:
        out: List[bytes] = []
        append = out.append
        for v in values:
            text = repr(v)
            if text.endswith(".0"):
                text = text[:-2]
            append(text.encode("ascii"))
        return out

    # SHORTEST
    return [repr(v).encode("ascii") for v in values]
