"""``xsd:string`` lexical forms.

Strings are the one type that cannot be stuffed: the paper notes there
is no maximum-size string, so a string field can always outgrow its
width and force shifting.  The width spec for strings therefore
reports ``max_width=None``.

Unlike the numeric types, string content must be XML-escaped on the
way out and unescaped on the way in — and, because the XML Schema
``string`` type carries whiteSpace=preserve, the differential layout
must never whitespace-pad *inside* a string element.  The template
layout engine handles this by giving string fields a pad that lives
strictly after the closing tag (which is true of all fields here) and
by never stripping string content on parse.
"""

from __future__ import annotations

from repro.xmlkit.escape import escape_text, unescape

__all__ = ["format_string", "parse_string"]


def format_string(value: str) -> bytes:
    """Serialize (escape + encode) string content."""
    return escape_text(value.encode("utf-8"))


def parse_string(data: bytes) -> str:
    """Parse (unescape + decode) string content; whitespace preserved."""
    return unescape(data).decode("utf-8")
