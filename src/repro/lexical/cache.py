"""Conversion caching: memoized and table-driven lexical formatting.

Float→ASCII conversion dominates serialization cost (§2 of the paper;
``benchmarks/bench_sec2_conversion.py``), and differential
serialization's steady state re-converts only *dirty* values — but it
still re-converts them from scratch on every send, even when the same
value recurs call after call (oscillating simulations, sensor arrays
with few distinct readings, iterative solvers revisiting fixed
points).  This module caches the conversions themselves:

* :class:`ConversionMemo` — a bounded **segmented-LRU** memo for
  float→bytes conversions, one generation pair (hot/cold) per
  :class:`~repro.lexical.floats.FloatFormat`.  A hit costs one or two
  dict probes (~50 ns) against ~500 ns for a fresh ``repr``-based
  conversion.
* a precomputed **small-int table**: the lexical forms of
  ``[-1024, 16384)`` materialized once at import, so common array
  indices/counters skip ``%d`` formatting entirely.
* :func:`format_double_fixed_blob` — the fixed-width batch formatter
  behind :attr:`~repro.lexical.floats.FloatFormat.FIXED`: every
  finite double formats to exactly :data:`DOUBLE_FIXED_WIDTH`
  characters, so a whole batch packs into one contiguous blob that
  the rewrite-plan splice path writes with strided NumPy assignment
  (see ``repro.core.plan``).

Correctness notes baked into the implementation:

* ``-0.0 == 0.0`` and they share a hash, but their lexical forms
  differ (``-0`` vs ``0``) — zero never enters the memo.
* Non-finite values (``NaN`` compares unequal to itself and would
  miss forever) bypass the memo.
* Memoized bytes are immutable and keyed by exact float value, so a
  hit returns byte-identical output to an uncached conversion —
  caching can never change wire bytes.
* **Adaptive bypass**: on full-entropy value streams the memo can
  never hit, and probing it per value is pure overhead.  Each memo
  tracks its hit rate over a sliding lookup window; when the rate
  drops below :data:`BYPASS_MIN_RATE` the memo stops being probed for
  the next :data:`BYPASS_BATCHES` batches (values are formatted
  directly), then probes again in case the distribution changed.
  Amortized probe overhead on hostile streams is ~1/64 of a batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "DOUBLE_FIXED_WIDTH",
    "ConversionMemo",
    "memo_for",
    "memo_stats",
    "clear_memos",
    "small_int_bytes",
    "SMALL_INT_MIN",
    "SMALL_INT_MAX",
    "format_double_fixed_blob",
]

#: Exact serialized width of every finite double under
#: :attr:`FloatFormat.FIXED` — ``%24.16e`` emits 17 significant
#: digits (round-trip exact for binary64) and never exceeds 24
#: characters (worst case ``-9.9999999999999991e-309``), left-padding
#: shorter forms with spaces (legal: XSD doubles carry
#: ``whiteSpace=collapse``).
DOUBLE_FIXED_WIDTH = 24

_FIXED_FMT = b"%24.16e"

#: Adaptive-bypass tuning: evaluate the hit rate once the window has
#: seen this many lookups...
BYPASS_WINDOW = 2048
#: ...and if fewer than this fraction were hits, bypass the memo...
BYPASS_MIN_RATE = 0.05
#: ...for this many batches before probing again.
BYPASS_BATCHES = 64


class ConversionMemo:
    """Bounded float→bytes memo with segmented-LRU eviction.

    Two generations (*hot* and *cold*): lookups probe hot then cold,
    and insertions always go to hot.  When hot outgrows ``capacity``,
    the generations rotate (cold is dropped, hot becomes cold) — an
    O(1)-per-operation approximation of LRU that keeps any value
    touched within the last ``capacity`` insertions resident, without
    per-hit bookkeeping.  Rotation is checked once per *batch* (see
    :meth:`maybe_rotate`), so a single batch may overshoot the bound
    by its own length; residency stays ≤ ``2 × capacity + batch``.

    Thread safety: individual dict operations are GIL-atomic and a
    racing rotation can at worst cause spurious misses, never wrong
    bytes (entries are immutable and keyed by exact value).
    """

    __slots__ = (
        "hot",
        "cold",
        "capacity",
        "hits",
        "misses",
        "rotations",
        "window_hits",
        "window_lookups",
        "bypass_remaining",
        "bypassed_batches",
    )

    def __init__(self, capacity: int = 1 << 16) -> None:
        self.hot: Dict[float, bytes] = {}
        self.cold: Dict[float, bytes] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.rotations = 0
        self.window_hits = 0
        self.window_lookups = 0
        self.bypass_remaining = 0
        self.bypassed_batches = 0

    def maybe_rotate(self) -> None:
        """Rotate generations if hot exceeded capacity (per-batch)."""
        if len(self.hot) > self.capacity:
            self.cold = self.hot
            self.hot = {}
            self.rotations += 1

    def should_probe(self) -> bool:
        """Whether the next batch should probe the memo at all.

        ``False`` while an adaptive bypass is active (the caller
        formats directly); each call during a bypass consumes one of
        its remaining batches, so probing resumes automatically.
        """
        if self.bypass_remaining > 0:
            self.bypass_remaining -= 1
            self.bypassed_batches += 1
            return False
        return True

    def record_batch(self, hits: int, lookups: int) -> None:
        """Fold one probed batch's outcome into the counters.

        Also drives the adaptive bypass: once the sliding window has
        seen :data:`BYPASS_WINDOW` lookups, a hit rate below
        :data:`BYPASS_MIN_RATE` turns probing off for the next
        :data:`BYPASS_BATCHES` batches.
        """
        self.hits += hits
        self.misses += lookups - hits
        self.window_hits += hits
        self.window_lookups += lookups
        if self.window_lookups >= BYPASS_WINDOW:
            if self.window_hits < BYPASS_MIN_RATE * self.window_lookups:
                self.bypass_remaining = BYPASS_BATCHES
            self.window_hits = 0
            self.window_lookups = 0
        self.maybe_rotate()

    def clear(self) -> None:
        self.hot.clear()
        self.cold.clear()
        self.window_hits = 0
        self.window_lookups = 0
        self.bypass_remaining = 0

    def __len__(self) -> int:
        return len(self.hot) + len(self.cold)


#: One memo per FloatFormat value string (lexical form depends on the
#: format, so ``(value, fmt)`` is the true key; separate tables keep
#: the per-hit probe a single-key dict lookup).
_MEMOS: Dict[str, ConversionMemo] = {}


def memo_for(fmt_key: str) -> ConversionMemo:
    """The process-wide memo for one float format (created on demand)."""
    memo = _MEMOS.get(fmt_key)
    if memo is None:
        memo = _MEMOS[fmt_key] = ConversionMemo()
    return memo


def memo_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size snapshot per format (bench + test introspection)."""
    return {
        key: {
            "hits": m.hits,
            "misses": m.misses,
            "size": len(m),
            "rotations": m.rotations,
            "bypassed_batches": m.bypassed_batches,
        }
        for key, m in _MEMOS.items()
    }


def clear_memos() -> None:
    """Drop all memoized conversions (tests and bench isolation)."""
    for m in _MEMOS.values():
        m.clear()
        m.hits = 0
        m.misses = 0
        m.rotations = 0
        m.bypassed_batches = 0


# ----------------------------------------------------------------------
# small-int table
# ----------------------------------------------------------------------

SMALL_INT_MIN = -1024
SMALL_INT_MAX = 16384

#: ``_SMALL_INTS[v - SMALL_INT_MIN]`` is ``b"%d" % v`` — built once at
#: import (~17K small bytes objects, well under a megabyte).
_SMALL_INTS: List[bytes] = [b"%d" % i for i in range(SMALL_INT_MIN, SMALL_INT_MAX)]


def small_int_bytes(value: int) -> Optional[bytes]:
    """Table-hit lexical form of *value*, or ``None`` outside the table."""
    if SMALL_INT_MIN <= value < SMALL_INT_MAX:
        return _SMALL_INTS[value - SMALL_INT_MIN]
    return None


def format_int_array_cached(values: Sequence[int] | np.ndarray) -> List[bytes]:
    """Batch int formatting through the small-int table.

    Vectorizes the in-table test when given an ndarray; elements
    outside the table fall back to ``%d`` formatting.  Output is
    byte-identical to the uncached path.
    """
    if isinstance(values, np.ndarray):
        if bool(
            ((values >= SMALL_INT_MIN) & (values < SMALL_INT_MAX)).all()
        ):
            table = _SMALL_INTS
            return [table[i] for i in (values - SMALL_INT_MIN).tolist()]
        values = values.tolist()
    table = _SMALL_INTS
    lo, hi = SMALL_INT_MIN, SMALL_INT_MAX
    return [table[v - lo] if lo <= v < hi else b"%d" % v for v in values]


# ----------------------------------------------------------------------
# fixed-width vectorized double formatting
# ----------------------------------------------------------------------

def format_double_fixed(value: float) -> bytes:
    """One finite double at exactly :data:`DOUBLE_FIXED_WIDTH` chars."""
    return _FIXED_FMT % value


def format_double_fixed_blob(
    values: np.ndarray | Sequence[float], cached: bool = False
) -> Optional[bytes]:
    """Batch-format doubles into one ``n × 24``-byte contiguous blob.

    Returns ``None`` when any value is non-finite (``NaN``/``INF``
    lexical forms are narrower than the fixed width, so the caller
    must take the variable-width path).  The blob's row *k* is exactly
    the bytes of value *k* — the rewrite-plan splice path reshapes it
    to ``(n, 24)`` and writes it with one strided NumPy assignment
    per chunk run, which is what makes this the "vectorized"
    formatter: Python-level work is one ``%``-format per value (or a
    memo hit) plus a single ``join``.
    """
    if isinstance(values, np.ndarray):
        if not bool(np.isfinite(values).all()):
            return None
        lst = values.tolist()
    else:
        lst = list(values)
        for v in lst:
            if v != v or v in (float("inf"), float("-inf")):
                return None
    fmt = _FIXED_FMT
    if not cached:
        return b"".join([fmt % v for v in lst])
    memo = memo_for("fixed")
    if not memo.should_probe():
        return b"".join([fmt % v for v in lst])
    hot = memo.hot
    cold = memo.cold
    hot_get = hot.get
    cold_get = cold.get
    out: List[bytes] = []
    append = out.append
    hits = 0
    for v in lst:
        t = hot_get(v)
        if t is None:
            t = cold_get(v)
            if t is None:
                t = fmt % v
                if v != 0.0:  # -0.0/0.0 share a key but differ lexically
                    hot[v] = t
            else:
                hot[v] = t
                hits += 1
        else:
            hits += 1
        append(t)
    memo.record_batch(hits, len(lst))
    return b"".join(out)


def memo_format_batch(
    lst: Sequence[float], fmt_key: str, format_one
) -> List[bytes]:
    """Generic memoized batch conversion for *finite* floats.

    ``format_one(v) -> bytes`` supplies the miss path.  Used by
    :func:`repro.lexical.floats.format_double_array` for the
    variable-width formats; zero is never memoized (see module
    docstring) and the caller guarantees finiteness.
    """
    memo = memo_for(fmt_key)
    if not memo.should_probe():
        return [format_one(v) for v in lst]
    hot = memo.hot
    cold = memo.cold
    hot_get = hot.get
    cold_get = cold.get
    out: List[bytes] = []
    append = out.append
    hits = 0
    for v in lst:
        t = hot_get(v)
        if t is None:
            t = cold_get(v)
            if t is None:
                t = format_one(v)
                if v != 0.0:
                    hot[v] = t
            else:
                hot[v] = t
                hits += 1
        else:
            hits += 1
        append(t)
    memo.record_batch(hits, len(lst))
    return out
