"""Integer lexical forms (``xsd:int`` / ``xsd:long``).

The paper's stuffing analysis uses the fact that an ``xsd:int`` value
never needs more than 11 characters (``-2147483648``); ``xsd:long``
never more than 20 (``-9223372036854775808``).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import LexicalError
from repro.lexical.cache import format_int_array_cached

__all__ = [
    "INT_MAX_WIDTH",
    "LONG_MAX_WIDTH",
    "INT32_MIN",
    "INT32_MAX",
    "format_int",
    "parse_int",
    "format_int_array",
]

#: Maximum characters for an ``xsd:int`` (paper §4.4: 11 characters).
INT_MAX_WIDTH = 11
#: Maximum characters for an ``xsd:long``.
LONG_MAX_WIDTH = 20

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_DIGITS = frozenset(b"0123456789")


def format_int(value: int) -> bytes:
    """Serialize *value* to its canonical decimal form.

    Values outside the 64-bit range are rejected: the wire types the
    reproduction models are ``xsd:int``/``xsd:long``.
    """
    if not (_INT64_MIN <= value <= _INT64_MAX):
        raise LexicalError(f"integer {value} outside xsd:long range")
    return b"%d" % value


def parse_int(data: bytes) -> int:
    """Parse an integer lexical form.

    XML Schema integer types carry the whiteSpace=collapse facet, so
    surrounding whitespace is accepted; an optional leading ``+`` or
    ``-`` is allowed; anything else is a :class:`LexicalError`.
    """
    text = data.strip(b" \t\r\n")
    if not text:
        raise LexicalError("empty integer lexical form")
    body = text[1:] if text[0] in b"+-" else text
    if not body or any(b not in _DIGITS for b in body):
        raise LexicalError(f"invalid integer lexical form {data!r}")
    return int(text)


def format_int_array(
    values: Sequence[int] | np.ndarray, cached: bool = False
) -> List[bytes]:
    """Vectorized batch conversion of integers to lexical forms.

    Accepts any integer sequence or NumPy integer array.  Returns a
    list of ``bytes``, one per element, in order.  The NumPy
    ``tolist()`` conversion moves the per-element unboxing into C,
    which is the idiomatic fast path for this kind of loop.  With
    ``cached=True`` values resolve through the precomputed small-int
    table (:mod:`repro.lexical.cache`) where possible.
    """
    if isinstance(values, np.ndarray) and values.dtype.kind not in "iu":
        raise LexicalError(f"expected integer array, got dtype {values.dtype}")
    if cached:
        return format_int_array_cached(values)
    if isinstance(values, np.ndarray):
        values = values.tolist()
    return [b"%d" % v for v in values]
