"""Lexical (ASCII) representations of typed values.

This layer is the paper's measured bottleneck: converting in-memory
binary values — above all IEEE-754 doubles — to and from their XML
schema lexical forms.  Everything the serializers need lives here:

* scalar converters (``bytes`` in/out),
* NumPy-vectorized batch converters for array hot paths,
* per-type **maximum serialized widths**, the numbers stuffing relies
  on (a double is at most 24 characters, an ``xsd:int`` at most 11,
  an MIO — ``[int,int,double]`` — at most 46).
"""

from repro.lexical.cache import (
    DOUBLE_FIXED_WIDTH,
    ConversionMemo,
    clear_memos,
    format_double_fixed_blob,
    memo_for,
    memo_stats,
    small_int_bytes,
)
from repro.lexical.integers import (
    INT_MAX_WIDTH,
    LONG_MAX_WIDTH,
    format_int,
    format_int_array,
    parse_int,
)
from repro.lexical.floats import (
    DOUBLE_MAX_WIDTH,
    FloatFormat,
    format_double,
    format_double_array,
    parse_double,
)
from repro.lexical.booleans import format_bool, parse_bool
from repro.lexical.strings import format_string, parse_string
from repro.lexical.widths import WidthSpec, width_spec_for

__all__ = [
    "INT_MAX_WIDTH",
    "LONG_MAX_WIDTH",
    "DOUBLE_MAX_WIDTH",
    "DOUBLE_FIXED_WIDTH",
    "ConversionMemo",
    "memo_for",
    "memo_stats",
    "clear_memos",
    "small_int_bytes",
    "format_double_fixed_blob",
    "FloatFormat",
    "format_int",
    "parse_int",
    "format_int_array",
    "format_double",
    "parse_double",
    "format_double_array",
    "format_bool",
    "parse_bool",
    "format_string",
    "parse_string",
    "WidthSpec",
    "width_spec_for",
]
