"""Lexical (ASCII) representations of typed values.

This layer is the paper's measured bottleneck: converting in-memory
binary values — above all IEEE-754 doubles — to and from their XML
schema lexical forms.  Everything the serializers need lives here:

* scalar converters (``bytes`` in/out),
* NumPy-vectorized batch converters for array hot paths,
* per-type **maximum serialized widths**, the numbers stuffing relies
  on (a double is at most 24 characters, an ``xsd:int`` at most 11,
  an MIO — ``[int,int,double]`` — at most 46).
"""

from repro.lexical.integers import (
    INT_MAX_WIDTH,
    LONG_MAX_WIDTH,
    format_int,
    format_int_array,
    parse_int,
)
from repro.lexical.floats import (
    DOUBLE_MAX_WIDTH,
    FloatFormat,
    format_double,
    format_double_array,
    parse_double,
)
from repro.lexical.booleans import format_bool, parse_bool
from repro.lexical.strings import format_string, parse_string
from repro.lexical.widths import WidthSpec, width_spec_for

__all__ = [
    "INT_MAX_WIDTH",
    "LONG_MAX_WIDTH",
    "DOUBLE_MAX_WIDTH",
    "FloatFormat",
    "format_int",
    "parse_int",
    "format_int_array",
    "format_double",
    "parse_double",
    "format_double_array",
    "format_bool",
    "parse_bool",
    "format_string",
    "parse_string",
    "WidthSpec",
    "width_spec_for",
]
