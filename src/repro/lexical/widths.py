"""Per-type serialized width facts.

Stuffing (paper §3.2/§4.4) relies on each type's *maximum* lexical
width: setting a DUT field width to the maximum guarantees shifting
can never happen for that field.  This module centralizes those facts
plus the intermediate widths the paper's width studies use (18-char
doubles, 36-char MIOs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemaError
from repro.lexical.booleans import BOOL_MAX_WIDTH
from repro.lexical.floats import DOUBLE_MAX_WIDTH, DOUBLE_MIN_WIDTH
from repro.lexical.integers import INT_MAX_WIDTH, LONG_MAX_WIDTH

__all__ = ["WidthSpec", "width_spec_for", "MIO_MAX_WIDTH", "MIO_MIN_WIDTH"]

#: Largest possible MIO value payload: two max ints + one max double
#: (11 + 11 + 24 = 46 characters; paper Fig. 6 caption).
MIO_MAX_WIDTH = 2 * INT_MAX_WIDTH + DOUBLE_MAX_WIDTH

#: Smallest possible MIO value payload: three one-character values
#: (paper Fig. 6 caption: three characters).
MIO_MIN_WIDTH = 3


@dataclass(frozen=True, slots=True)
class WidthSpec:
    """Width facts for one lexical type.

    Attributes
    ----------
    min_width:
        Fewest characters any value of the type serializes to.
    max_width:
        Most characters any value can need, or ``None`` when unbounded
        (strings) — such types cannot be max-stuffed.
    """

    min_width: int
    max_width: Optional[int]

    @property
    def stuffable(self) -> bool:
        """Whether max-width stuffing is possible for this type."""
        return self.max_width is not None

    def clamp(self, width: int) -> int:
        """Clamp a requested stuffing width into the legal range."""
        if width < self.min_width:
            return self.min_width
        if self.max_width is not None and width > self.max_width:
            return self.max_width
        return width


_SPECS = {
    "int": WidthSpec(1, INT_MAX_WIDTH),
    "long": WidthSpec(1, LONG_MAX_WIDTH),
    "double": WidthSpec(DOUBLE_MIN_WIDTH, DOUBLE_MAX_WIDTH),
    "boolean": WidthSpec(1, BOOL_MAX_WIDTH),
    "string": WidthSpec(0, None),
}


def width_spec_for(type_name: str) -> WidthSpec:
    """Return the :class:`WidthSpec` for a primitive type name."""
    try:
        return _SPECS[type_name]
    except KeyError:
        raise SchemaError(f"no width spec for type {type_name!r}") from None
