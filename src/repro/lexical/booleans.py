"""``xsd:boolean`` lexical forms (``true``/``false``/``1``/``0``)."""

from __future__ import annotations

from repro.errors import LexicalError

__all__ = ["BOOL_MAX_WIDTH", "format_bool", "parse_bool"]

#: ``false`` is the longest boolean lexical form.
BOOL_MAX_WIDTH = 5


def format_bool(value: bool) -> bytes:
    """Serialize to the canonical ``true``/``false`` form."""
    return b"true" if value else b"false"


def parse_bool(data: bytes) -> bool:
    """Parse any of the four legal boolean lexical forms."""
    text = data.strip(b" \t\r\n")
    if text in (b"true", b"1"):
        return True
    if text in (b"false", b"0"):
        return False
    raise LexicalError(f"invalid boolean lexical form {data!r}")
