"""Low-level XML toolkit used by every layer above.

This package is self-contained (no stdlib ``xml`` dependency) because
the paper's system serializes and scans XML with hand-rolled routines;
reproducing the cost model requires owning those routines.

Contents
--------
:mod:`repro.xmlkit.escape`
    Text/attribute escaping and whitespace predicates.
:mod:`repro.xmlkit.qname`
    Qualified names and namespace bindings.
:mod:`repro.xmlkit.writer`
    Streaming XML writer over any ``write(bytes)`` sink.
:mod:`repro.xmlkit.scanner`
    Pull-based event scanner (tokenizer + well-formedness checks).
:mod:`repro.xmlkit.feed`
    Incremental (push/feed) scanner for streaming input.
:mod:`repro.xmlkit.trie`
    Byte trie for single-pass tag matching (Chiu et al. optimization).
:mod:`repro.xmlkit.canonical`
    Whitespace-insensitive document comparison, used by tests and the
    differential-equivalence property checks.
"""

from repro.xmlkit.escape import (
    escape_attr,
    escape_text,
    is_xml_whitespace,
    unescape,
)
from repro.xmlkit.qname import NamespaceBindings, QName
from repro.xmlkit.scanner import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XMLScanner,
    parse_document,
)
from repro.xmlkit.feed import FeedScanner
from repro.xmlkit.trie import ByteTrie
from repro.xmlkit.writer import XMLWriter
from repro.xmlkit.canonical import canonical_events, documents_equivalent

__all__ = [
    "escape_attr",
    "escape_text",
    "unescape",
    "is_xml_whitespace",
    "QName",
    "NamespaceBindings",
    "XMLWriter",
    "XMLScanner",
    "StartElement",
    "EndElement",
    "Characters",
    "Comment",
    "ProcessingInstruction",
    "parse_document",
    "ByteTrie",
    "FeedScanner",
    "canonical_events",
    "documents_equivalent",
]
