"""Streaming XML writer.

The writer emits bytes to any object exposing ``write(bytes) -> Any``
(a :class:`bytearray`-backed sink, a chunked buffer appender, a
socket file...).  It performs well-formedness bookkeeping (balanced
tags, single root, attribute escaping) but intentionally does *no*
pretty-printing: bSOAP templates depend on byte-exact layouts.

Hot-path notes (see the optimization guide): the writer pre-encodes
tag names once, avoids intermediate string concatenation where a
sequence of ``write`` calls suffices, and exposes :meth:`raw` so the
serializers can emit pre-built byte segments without re-checking.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Protocol, Tuple

from repro.errors import XMLError
from repro.xmlkit.escape import escape_attr, escape_text

__all__ = ["ByteSink", "XMLWriter"]


class ByteSink(Protocol):
    """Anything the writer can emit bytes to."""

    def write(self, data: bytes) -> object:  # pragma: no cover - protocol
        ...


class _ListSink:
    """Default sink: accumulates parts; ``getvalue()`` joins them."""

    __slots__ = ("parts",)

    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class XMLWriter:
    """Event-style XML writer with namespace declarations.

    Parameters
    ----------
    sink:
        Byte sink; when omitted an internal list sink is used and the
        document is retrieved with :meth:`getvalue`.
    check:
        When ``True`` (default) the writer enforces balanced tags and
        a single root element.  The template serializer disables this
        on re-serialization hot paths where the structure is known
        valid by construction.
    """

    __slots__ = ("_sink", "_stack", "_check", "_root_closed", "_prolog_written")

    def __init__(self, sink: Optional[ByteSink] = None, *, check: bool = True) -> None:
        self._sink: ByteSink = sink if sink is not None else _ListSink()
        self._stack: list[bytes] = []
        self._check = check
        self._root_closed = False
        self._prolog_written = False

    # ------------------------------------------------------------------
    # document structure
    # ------------------------------------------------------------------
    def prolog(self, encoding: str = "UTF-8") -> None:
        """Emit the XML declaration.  Must precede the root element."""
        if self._check and (self._prolog_written or self._stack or self._root_closed):
            raise XMLError("prolog must be the first thing written")
        self._prolog_written = True
        self._sink.write(b'<?xml version="1.0" encoding="' + encoding.encode("ascii") + b'"?>')

    def start(
        self,
        tag: str,
        attrs: Optional[Mapping[str, str]] = None,
        nsdecls: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Open element *tag* (a lexical, possibly prefixed, name).

        ``attrs`` are written in iteration order; ``nsdecls`` maps
        prefixes to URIs and is emitted as ``xmlns``/``xmlns:p``
        attributes before the regular attributes.
        """
        if self._check and self._root_closed:
            raise XMLError("document already has a closed root element")
        btag = tag.encode("utf-8")
        w = self._sink.write
        w(b"<" + btag)
        if nsdecls:
            for prefix, uri in nsdecls.items():
                name = b"xmlns" if not prefix else b"xmlns:" + prefix.encode("utf-8")
                w(b" " + name + b'="' + escape_attr(uri.encode("utf-8")) + b'"')
        if attrs:
            for key, value in attrs.items():
                w(
                    b" "
                    + key.encode("utf-8")
                    + b'="'
                    + escape_attr(value.encode("utf-8"))
                    + b'"'
                )
        w(b">")
        self._stack.append(btag)

    def end(self, tag: Optional[str] = None) -> None:
        """Close the innermost open element.

        When *tag* is given it is checked against the element actually
        being closed (a cheap well-formedness assertion).
        """
        if not self._stack:
            raise XMLError("end() with no open element")
        btag = self._stack.pop()
        if self._check and tag is not None and btag != tag.encode("utf-8"):
            raise XMLError(
                f"mismatched end tag: expected </{btag.decode()}>, got </{tag}>"
            )
        self._sink.write(b"</" + btag + b">")
        if not self._stack:
            self._root_closed = True

    def empty(self, tag: str, attrs: Optional[Mapping[str, str]] = None) -> None:
        """Emit a self-closed element ``<tag .../>``."""
        if self._check and self._root_closed:
            raise XMLError("document already has a closed root element")
        w = self._sink.write
        w(b"<" + tag.encode("utf-8"))
        if attrs:
            for key, value in attrs.items():
                w(
                    b" "
                    + key.encode("utf-8")
                    + b'="'
                    + escape_attr(value.encode("utf-8"))
                    + b'"'
                )
        w(b"/>")
        if not self._stack:
            self._root_closed = True

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    def text(self, data: str) -> None:
        """Write escaped character data."""
        if self._check and not self._stack:
            raise XMLError("character data outside the root element")
        self._sink.write(escape_text(data.encode("utf-8")))

    def text_bytes(self, data: bytes) -> None:
        """Write escaped character data already held as bytes."""
        if self._check and not self._stack:
            raise XMLError("character data outside the root element")
        self._sink.write(escape_text(data))

    def raw(self, data: bytes) -> None:
        """Write *data* verbatim (caller guarantees well-formedness).

        This is the hot path used by the serializers for pre-escaped
        lexical values and pre-built tag segments.
        """
        self._sink.write(data)

    def comment(self, data: str) -> None:
        """Emit an XML comment (``--`` is rejected)."""
        if "--" in data:
            raise XMLError("'--' not allowed inside a comment")
        self._sink.write(b"<!--" + data.encode("utf-8") + b"-->")

    def element(
        self,
        tag: str,
        text: str = "",
        attrs: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Convenience: ``<tag attrs>text</tag>``."""
        self.start(tag, attrs)
        if text:
            self.text(text)
        self.end()

    def elements(self, tag: str, texts: Iterable[str]) -> None:
        """Emit a run of identical simple elements (array items)."""
        btag = tag.encode("utf-8")
        open_ = b"<" + btag + b">"
        close = b"</" + btag + b">"
        w = self._sink.write
        for value in texts:
            w(open_)
            w(escape_text(value.encode("utf-8")))
            w(close)

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close all open elements (deepest first)."""
        while self._stack:
            self.end()

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack)

    @property
    def open_tags(self) -> Tuple[str, ...]:
        """Lexical names of the currently open elements, outermost first."""
        return tuple(tag.decode("utf-8") for tag in self._stack)

    def getvalue(self) -> bytes:
        """Return accumulated bytes (only for the internal list sink)."""
        sink = self._sink
        if isinstance(sink, _ListSink):
            return sink.getvalue()
        raise XMLError("getvalue() requires the internal sink")
