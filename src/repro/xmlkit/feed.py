"""Incremental (push/feed) XML scanning.

:class:`FeedScanner` accepts document bytes in arbitrary fragments —
as they arrive from a socket or an HTTP chunked body — and emits the
same event stream as :class:`~repro.xmlkit.scanner.XMLScanner` does
over the whole document.  Events are produced as soon as their bytes
are complete; a token split across fragments is held until its
terminator arrives.

Equivalence with the whole-document scanner is property-tested over
random fragmentations (``tests/test_feed.py``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ResourceLimitError, XMLSyntaxError
from repro.hardening.limits import ResourceLimits
from repro.xmlkit.escape import XML_WHITESPACE, unescape
from repro.xmlkit.scanner import (
    Characters,
    Comment,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    decode_utf8,
    parse_start_tag_at,
)

__all__ = ["FeedScanner"]

_WS = frozenset(XML_WHITESPACE)


def _find_tag_end(data: bytes, pos: int) -> int:
    """Index of the ``>`` closing the tag at *pos*, quote-aware; -1 if
    not yet present in the buffer."""
    quote = 0
    for i in range(pos, len(data)):
        byte = data[i]
        if quote:
            if byte == quote:
                quote = 0
        elif byte in (0x22, 0x27):  # " '
            quote = byte
        elif byte == 0x3E:  # '>'
            return i
    return -1


class FeedScanner:
    """Streaming tokenizer with the whole-document scanner's semantics."""

    def __init__(
        self,
        *,
        keep_whitespace: bool = False,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self._buf = bytearray()
        self._base = 0  # global offset of _buf[0]
        self._stack: List[str] = []
        self._seen_root = False
        self._keep_ws = keep_whitespace
        self._limits = limits
        self._elements = 0
        self._finished = False

    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> List[Event]:
        """Add bytes; return every event completed by them."""
        if self._finished:
            raise XMLSyntaxError("feed() after close()")
        self._buf += data
        return self._drain(final=False)

    def close(self) -> List[Event]:
        """Signal end of input; return trailing events; validate."""
        if self._finished:
            return []
        self._finished = True
        events = self._drain(final=True)
        if self._buf.strip(XML_WHITESPACE):
            raise XMLSyntaxError(
                "document ended inside an incomplete construct", self._base
            )
        if self._stack:
            raise XMLSyntaxError(
                f"unexpected end of document: {len(self._stack)} unclosed element(s)"
            )
        if not self._seen_root:
            raise XMLSyntaxError("document has no root element")
        return events

    @property
    def depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    def _consume(self, count: int) -> None:
        del self._buf[:count]
        self._base += count

    def _drain(self, final: bool) -> List[Event]:
        events: List[Event] = []
        while True:
            batch = self._try_token(final)
            if batch is None:
                return events
            events.extend(batch)

    def _try_token(self, final: bool) -> Optional[List[Event]]:
        buf = self._buf
        if not buf:
            return None
        base = self._base

        if buf[0] != 0x3C:  # character data
            lt = buf.find(b"<")
            if lt < 0:
                if not final:
                    return None  # run may continue in the next fragment
                lt = len(buf)
            run = bytes(buf[:lt])
            self._consume(lt)
            if not self._stack:
                if all(b in _WS for b in run):
                    return []
                raise XMLSyntaxError("character data outside root element", base)
            if not self._keep_ws and all(b in _WS for b in run):
                return []
            return [Characters(decode_utf8(unescape(run), base), base)]

        # Markup. Decide the construct kind; some prefixes are ambiguous
        # until more bytes arrive ("<!" could open a comment or CDATA).
        data = bytes(buf)

        if data.startswith(b"<!--") or b"<!--".startswith(data[:4]):
            if len(data) < 4:
                return self._need_more(final)
            end = data.find(b"-->", 4)
            if end < 0:
                return self._need_more(final)
            text = decode_utf8(data[4:end], base)
            if "--" in text:
                raise XMLSyntaxError("'--' inside comment", base)
            self._consume(end + 3)
            return [Comment(text, base)]

        if data.startswith(b"<![CDATA[") or b"<![CDATA[".startswith(data[:9]):
            if len(data) < 9:
                return self._need_more(final)
            end = data.find(b"]]>", 9)
            if end < 0:
                return self._need_more(final)
            if not self._stack:
                raise XMLSyntaxError("CDATA outside root element", base)
            text = decode_utf8(data[9:end], base)
            self._consume(end + 3)
            return [Characters(text, base)]

        if data.startswith(b"<!DOCTYPE") or (
            data[:9] and b"<!DOCTYPE".startswith(data[:9]) and len(data) < 9
        ):
            if len(data) < 9:
                return self._need_more(final)
            raise XMLSyntaxError("DOCTYPE is not allowed in SOAP messages", base)

        if data.startswith(b"<?"):
            end = data.find(b"?>", 2)
            if end < 0:
                return self._need_more(final)
            body = data[2:end]
            space = -1
            for i, byte in enumerate(body):
                if byte in _WS:
                    space = i
                    break
            if space < 0:
                target, rest = body, b""
            else:
                target, rest = body[:space], body[space + 1 :]
            self._consume(end + 2)
            return [
                ProcessingInstruction(
                    decode_utf8(target, base), decode_utf8(rest, base).strip(), base
                )
            ]

        if data.startswith(b"</"):
            end = data.find(b">", 2)
            if end < 0:
                return self._need_more(final)
            name = decode_utf8(data[2:end].strip(XML_WHITESPACE), base)
            if not self._stack:
                raise XMLSyntaxError(f"unexpected </{name}>", base)
            expected = self._stack.pop()
            if name != expected:
                raise XMLSyntaxError(
                    f"mismatched end tag </{name}>, expected </{expected}>", base
                )
            self._consume(end + 1)
            return [EndElement(name, base)]

        # Start tag: wait for its (quote-aware) '>' before parsing.
        end = _find_tag_end(data, 1)
        if end < 0:
            return self._need_more(final)
        limits = self._limits
        name, attrs, self_closing, consumed = parse_start_tag_at(
            data, 0, limits=limits
        )
        if not self._stack:
            if self._seen_root:
                raise XMLSyntaxError("multiple root elements", base)
            self._seen_root = True
        if limits is not None:
            self._elements += 1
            if self._elements > limits.max_xml_elements:
                raise ResourceLimitError(
                    f"document exceeds max_xml_elements={limits.max_xml_elements}",
                    "max_xml_elements",
                )
            if not self_closing and len(self._stack) >= limits.max_xml_depth:
                raise ResourceLimitError(
                    f"nesting exceeds max_xml_depth={limits.max_xml_depth}",
                    "max_xml_depth",
                )
        self._consume(consumed)
        if self_closing:
            return [
                StartElement(name, attrs, True, base),
                EndElement(name, base),
            ]
        self._stack.append(name)
        return [StartElement(name, attrs, False, base)]

    def _need_more(self, final: bool) -> Optional[List[Event]]:
        if final:
            raise XMLSyntaxError(
                "document ended inside an incomplete construct", self._base
            )
        return None
