"""Whitespace-insensitive document comparison.

The central correctness property of differential serialization is that
the *rewritten* template and a *from-scratch* serialization are the
same message.  They are not byte-identical — stuffing inserts legal
whitespace between elements and numeric values may carry leading or
trailing pad — so equivalence is defined over canonical event streams:

* inter-element whitespace dropped,
* adjacent character runs merged,
* character data stripped of surrounding XML whitespace (legal for the
  whiteSpace-collapse simple types SOAP arrays carry),
* attributes compared as sorted mappings.

This module is used by tests, the property-based equivalence suite,
and the differential deserializer's self-checks.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.xmlkit.scanner import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XMLScanner,
)

__all__ = ["canonical_events", "documents_equivalent", "diff_documents"]

CanonicalEvent = Union[
    Tuple[str, str, Tuple[Tuple[str, str], ...]],  # ("start", name, attrs)
    Tuple[str, str],  # ("end", name) / ("text", text)
]


def canonical_events(data: bytes, *, strip_text: bool = True) -> List[CanonicalEvent]:
    """Reduce *data* to a canonical event list (see module docstring)."""
    events: List[CanonicalEvent] = []
    pending_text: List[str] = []

    def flush() -> None:
        if pending_text:
            text = "".join(pending_text)
            if strip_text:
                text = text.strip(" \t\r\n")
            if text:
                events.append(("text", text))
            pending_text.clear()

    for event in XMLScanner(data, keep_whitespace=True):
        if isinstance(event, Characters):
            pending_text.append(event.text)
        elif isinstance(event, StartElement):
            flush()
            events.append(("start", event.name, tuple(sorted(event.attrs.items()))))
        elif isinstance(event, EndElement):
            flush()
            events.append(("end", event.name))
        elif isinstance(event, (Comment, ProcessingInstruction)):
            continue
    flush()
    return events


def documents_equivalent(a: bytes, b: bytes) -> bool:
    """``True`` iff *a* and *b* are canonically the same document."""
    return canonical_events(a) == canonical_events(b)


def diff_documents(a: bytes, b: bytes, *, context: int = 2) -> str:
    """Human-readable first-difference report for test failures."""
    ea = canonical_events(a)
    eb = canonical_events(b)
    limit = min(len(ea), len(eb))
    for i in range(limit):
        if ea[i] != eb[i]:
            lo = max(0, i - context)
            lines = [f"documents diverge at canonical event {i}:"]
            for j in range(lo, min(limit, i + context + 1)):
                marker = ">>" if j == i else "  "
                lines.append(f"{marker} a[{j}]={ea[j]!r}")
                lines.append(f"{marker} b[{j}]={eb[j]!r}")
            return "\n".join(lines)
    if len(ea) != len(eb):
        return (
            f"documents diverge in length: {len(ea)} vs {len(eb)} canonical events; "
            f"first extra event: "
            f"{(ea + eb)[limit]!r}"
        )
    return "documents are equivalent"
