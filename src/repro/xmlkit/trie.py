"""Byte trie for single-pass tag recognition.

Chiu et al. (HPDC 2002) — the paper's own prior work — reduce XML tag
comparison cost with a trie so each incoming tag is classified in one
pass over its bytes instead of one ``strcmp`` per candidate.  The
server-side parser and the differential deserializer use this to map
expected tags to handler ids.

The trie maps ``bytes`` keys to integer ids (ids are opaque to the
trie; callers keep a side table).  Lookup can start at any offset in a
larger buffer and reports how many bytes were consumed, so the
deserializer can classify ``<tag`` runs in place without slicing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ByteTrie"]


class _Node:
    __slots__ = ("children", "value")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.value: Optional[int] = None


class ByteTrie:
    """A byte-keyed trie mapping keys to non-negative integer ids."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def insert(self, key: bytes, value: int) -> None:
        """Insert or replace *key* → *value* (value must be ≥ 0)."""
        if value < 0:
            raise ValueError("trie values must be non-negative")
        node = self._root
        for byte in key:
            nxt = node.children.get(byte)
            if nxt is None:
                nxt = _Node()
                node.children[byte] = nxt
            node = nxt
        if node.value is None:
            self._size += 1
        node.value = value

    def get(self, key: bytes) -> Optional[int]:
        """Exact lookup; ``None`` when absent."""
        node = self._root
        for byte in key:
            node = node.children.get(byte)  # type: ignore[assignment]
            if node is None:
                return None
        return node.value

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._size

    def match_at(
        self, buffer: bytes, offset: int, terminators: bytes = b" \t\r\n/>"
    ) -> Tuple[Optional[int], int]:
        """Match the longest key starting at ``buffer[offset]``.

        Returns ``(value, end_offset)``.  A key only matches if the
        byte following it (when any) is one of *terminators* — this is
        what makes ``<item`` not match inside ``<items``.  When nothing
        matches, returns ``(None, offset)``.
        """
        node = self._root
        best: Optional[int] = None
        best_end = offset
        i = offset
        n = len(buffer)
        term = frozenset(terminators)
        while i < n:
            if node.value is not None and (i >= n or buffer[i] in term):
                best, best_end = node.value, i
            nxt = node.children.get(buffer[i])
            if nxt is None:
                break
            node = nxt
            i += 1
        if node.value is not None and (i >= n or buffer[i] in term):
            best, best_end = node.value, i
        if best is None:
            return None, offset
        return best, best_end

    def items(self) -> Iterator[Tuple[bytes, int]]:
        """Yield ``(key, value)`` pairs in lexicographic key order."""
        stack: List[Tuple[_Node, bytes]] = [(self._root, b"")]
        out: List[Tuple[bytes, int]] = []
        while stack:
            node, prefix = stack.pop()
            if node.value is not None:
                out.append((prefix, node.value))
            for byte in sorted(node.children, reverse=True):
                stack.append((node.children[byte], prefix + bytes([byte])))
        out.sort()
        return iter(out)

    @classmethod
    def from_tags(cls, tags: List[bytes]) -> "ByteTrie":
        """Build a trie assigning sequential ids to *tags*."""
        trie = cls()
        for i, tag in enumerate(tags):
            trie.insert(tag, i)
        return trie
