"""Pull-based XML scanner (tokenizer with well-formedness checks).

The server side of the reproduction needs a real parser: the paper's
dummy server does not parse, but §6's *differential deserialization*
and the baseline full deserializer do.  The scanner is written around
``bytes.find`` so the common path (long character-data runs between
tags, as in big numeric arrays) touches each byte once.

It supports the XML subset SOAP messages use: elements, attributes,
character data, comments, processing instructions, CDATA sections and
the five predefined entities plus numeric character references.
DOCTYPE is rejected (SOAP forbids it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ResourceLimitError, XMLSyntaxError
from repro.hardening.limits import ResourceLimits
from repro.xmlkit.escape import XML_WHITESPACE, unescape

__all__ = [
    "StartElement",
    "EndElement",
    "Characters",
    "Comment",
    "ProcessingInstruction",
    "Event",
    "XMLScanner",
    "parse_document",
    "decode_utf8",
]

_WS = frozenset(XML_WHITESPACE)
_NAME_END = frozenset(b" \t\r\n/>=")


def decode_utf8(data: bytes, pos: int = -1) -> str:
    """Decode *data* as UTF-8, mapping failure to :class:`XMLSyntaxError`.

    Untrusted wires routinely contain invalid byte sequences; those
    must surface as a malformed-document error (→ SOAP Fault), never
    as a raw :class:`UnicodeDecodeError` escaping the parse.
    """
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise XMLSyntaxError(f"invalid UTF-8: {exc.reason}", pos) from None


@dataclass(frozen=True, slots=True)
class StartElement:
    """``<name attr="v" ...>`` (also emitted for self-closing tags)."""

    name: str
    attrs: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False
    offset: int = -1


@dataclass(frozen=True, slots=True)
class EndElement:
    """``</name>`` (also synthesized right after a self-closing start)."""

    name: str
    offset: int = -1


@dataclass(frozen=True, slots=True)
class Characters:
    """A run of character data with entities resolved."""

    text: str
    offset: int = -1


@dataclass(frozen=True, slots=True)
class Comment:
    """``<!-- ... -->``."""

    text: str
    offset: int = -1


@dataclass(frozen=True, slots=True)
class ProcessingInstruction:
    """``<?target data?>`` (includes the XML declaration)."""

    target: str
    data: str
    offset: int = -1


Event = Union[StartElement, EndElement, Characters, Comment, ProcessingInstruction]


def parse_start_tag_at(
    data: bytes, pos: int, *, limits: Optional[ResourceLimits] = None
) -> Tuple[str, Dict[str, str], bool, int]:
    """Parse a start tag beginning at ``data[pos] == b'<'``.

    Returns ``(name, attrs, self_closing, end_pos)``; raises
    :class:`XMLSyntaxError` on malformed or truncated input and
    :class:`~repro.errors.ResourceLimitError` when *limits* bound the
    token length or attribute count and the tag exceeds them.  Shared
    by the whole-document :class:`XMLScanner` and the incremental
    :class:`~repro.xmlkit.feed.FeedScanner`.
    """
    max_token = limits.max_token_bytes if limits is not None else None
    max_attrs = limits.max_attributes if limits is not None else None
    n = len(data)
    i = pos + 1
    start = i
    while i < n and data[i] not in _NAME_END:
        i += 1
    if i == start:
        raise XMLSyntaxError("empty element name", pos)
    if max_token is not None and i - start > max_token:
        raise ResourceLimitError(
            f"element name exceeds max_token_bytes={max_token}",
            "max_token_bytes",
        )
    name = decode_utf8(data[start:i], pos)

    attrs: Dict[str, str] = {}
    self_closing = False
    while True:
        while i < n and data[i] in _WS:
            i += 1
        if i >= n:
            raise XMLSyntaxError("unterminated start tag", pos)
        byte = data[i]
        if byte == 0x3E:  # '>'
            i += 1
            break
        if byte == 0x2F:  # '/'
            if i + 1 >= n or data[i + 1] != 0x3E:
                raise XMLSyntaxError("'/' not followed by '>' in tag", i)
            self_closing = True
            i += 2
            break
        # attribute
        astart = i
        while i < n and data[i] not in _NAME_END:
            i += 1
        if max_token is not None and i - astart > max_token:
            raise ResourceLimitError(
                f"attribute name exceeds max_token_bytes={max_token}",
                "max_token_bytes",
            )
        aname = decode_utf8(data[astart:i], astart)
        if not aname:
            raise XMLSyntaxError("malformed attribute", astart)
        while i < n and data[i] in _WS:
            i += 1
        if i >= n or data[i] != 0x3D:  # '='
            raise XMLSyntaxError(f"attribute {aname!r} missing '='", i)
        i += 1
        while i < n and data[i] in _WS:
            i += 1
        if i >= n or data[i] not in (0x22, 0x27):
            raise XMLSyntaxError(f"attribute {aname!r} value not quoted", i)
        quote = data[i]
        i += 1
        vend = data.find(bytes([quote]), i)
        if vend < 0:
            raise XMLSyntaxError(f"unterminated value for {aname!r}", i)
        if max_token is not None and vend - i > max_token:
            raise ResourceLimitError(
                f"attribute {aname!r} value exceeds max_token_bytes={max_token}",
                "max_token_bytes",
            )
        if aname in attrs:
            raise XMLSyntaxError(f"duplicate attribute {aname!r}", astart)
        if max_attrs is not None and len(attrs) >= max_attrs:
            raise ResourceLimitError(
                f"element has more than max_attributes={max_attrs} attributes",
                "max_attributes",
            )
        attrs[aname] = decode_utf8(unescape(data[i:vend]), i)
        i = vend + 1
    return name, attrs, self_closing, i


class XMLScanner:
    """Iterate events over a complete in-memory document.

    Parameters
    ----------
    data:
        The document bytes.
    keep_whitespace:
        When ``False`` (default) character-data runs that are pure
        XML whitespace are suppressed.  bSOAP's stuffing pads messages
        with inter-element whitespace, so consumers comparing logical
        content want it dropped; the layout tests enable it.
    limits:
        Optional :class:`~repro.hardening.ResourceLimits`.  When set,
        nesting depth, total element count, per-element attribute
        count, and token lengths are enforced *during* the scan (a
        nesting/element bomb is rejected incrementally, before it can
        materialize a huge event list), raising
        :class:`~repro.errors.ResourceLimitError`.
    """

    def __init__(
        self,
        data: bytes,
        *,
        keep_whitespace: bool = False,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self._data = data
        self._keep_ws = keep_whitespace
        self._limits = limits
        self._elements = 0
        self._pos = 0
        self._stack: List[str] = []
        self._seen_root = False
        self._pending_end: Optional[EndElement] = None

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Event]:
        return self

    def __next__(self) -> Event:
        event = self._next_event()
        if event is None:
            raise StopIteration
        return event

    # ------------------------------------------------------------------
    def _next_event(self) -> Optional[Event]:
        if self._pending_end is not None:
            event, self._pending_end = self._pending_end, None
            if not self._stack:
                pass
            return event

        data = self._data
        n = len(data)
        pos = self._pos
        if pos >= n:
            if self._stack:
                raise XMLSyntaxError(
                    f"unexpected end of document: {len(self._stack)} unclosed element(s)",
                    n,
                )
            return None

        if data[pos] != 0x3C:  # not '<' → character data
            lt = data.find(b"<", pos)
            if lt < 0:
                lt = n
            run = data[pos:lt]
            self._pos = lt
            if not self._stack:
                if all(b in _WS for b in run):
                    return self._next_event()
                raise XMLSyntaxError("character data outside root element", pos)
            if not self._keep_ws and all(b in _WS for b in run):
                return self._next_event()
            return Characters(decode_utf8(unescape(run), pos), pos)

        # A markup construct.
        if data.startswith(b"<!--", pos):
            end = data.find(b"-->", pos + 4)
            if end < 0:
                raise XMLSyntaxError("unterminated comment", pos)
            text = decode_utf8(data[pos + 4 : end], pos)
            if "--" in text:
                raise XMLSyntaxError("'--' inside comment", pos)
            self._pos = end + 3
            return Comment(text, pos)

        if data.startswith(b"<![CDATA[", pos):
            end = data.find(b"]]>", pos + 9)
            if end < 0:
                raise XMLSyntaxError("unterminated CDATA section", pos)
            if not self._stack:
                raise XMLSyntaxError("CDATA outside root element", pos)
            self._pos = end + 3
            return Characters(decode_utf8(data[pos + 9 : end], pos), pos)

        if data.startswith(b"<!DOCTYPE", pos):
            raise XMLSyntaxError("DOCTYPE is not allowed in SOAP messages", pos)

        if data.startswith(b"<?", pos):
            end = data.find(b"?>", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated processing instruction", pos)
            body = data[pos + 2 : end]
            space = -1
            for i, b in enumerate(body):
                if b in _WS:
                    space = i
                    break
            if space < 0:
                target, rest = body, b""
            else:
                target, rest = body[:space], body[space + 1 :]
            self._pos = end + 2
            return ProcessingInstruction(
                decode_utf8(target, pos), decode_utf8(rest, pos).strip(), pos
            )

        if data.startswith(b"</", pos):
            end = data.find(b">", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated end tag", pos)
            name = decode_utf8(data[pos + 2 : end].strip(XML_WHITESPACE), pos)
            if not self._stack:
                raise XMLSyntaxError(f"unexpected </{name}>", pos)
            expected = self._stack.pop()
            if name != expected:
                raise XMLSyntaxError(
                    f"mismatched end tag </{name}>, expected </{expected}>", pos
                )
            self._pos = end + 1
            return EndElement(name, pos)

        # Start tag.
        return self._scan_start_tag(pos)

    # ------------------------------------------------------------------
    def _scan_start_tag(self, pos: int) -> StartElement:
        limits = self._limits
        name, attrs, self_closing, i = parse_start_tag_at(
            self._data, pos, limits=limits
        )

        if not self._stack:
            if self._seen_root:
                raise XMLSyntaxError("multiple root elements", pos)
            self._seen_root = True
        if limits is not None:
            self._elements += 1
            if self._elements > limits.max_xml_elements:
                raise ResourceLimitError(
                    f"document exceeds max_xml_elements={limits.max_xml_elements}",
                    "max_xml_elements",
                )
            if not self_closing and len(self._stack) >= limits.max_xml_depth:
                raise ResourceLimitError(
                    f"nesting exceeds max_xml_depth={limits.max_xml_depth}",
                    "max_xml_depth",
                )
        self._pos = i
        if self_closing:
            self._pending_end = EndElement(name, pos)
        else:
            self._stack.append(name)
        return StartElement(name, attrs, self_closing, pos)

    @property
    def depth(self) -> int:
        """Current element nesting depth."""
        return len(self._stack)


def parse_document(data: bytes, *, keep_whitespace: bool = False) -> List[Event]:
    """Scan *data* to completion and return the event list.

    Raises :class:`~repro.errors.XMLSyntaxError` if the document is
    not well formed or has no root element.
    """
    events = list(XMLScanner(data, keep_whitespace=keep_whitespace))
    if not any(isinstance(e, StartElement) for e in events):
        raise XMLSyntaxError("document has no root element")
    return events
