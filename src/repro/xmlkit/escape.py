"""XML escaping, unescaping, and whitespace predicates.

The serializers in this library operate on ``bytes`` end to end (the
wire format is ASCII/UTF-8), so the hot-path escape functions accept
and return :class:`bytes`.  Convenience ``str`` wrappers are provided
for the schema layer.

Whitespace matters to bSOAP: the *stuffing* technique pads serialized
fields with spaces, and the padding between a field's closing tag and
the next opening tag must consist only of characters XML treats as
whitespace (space, tab, CR, LF).  :func:`is_xml_whitespace` is the
predicate the layout invariants are checked against.
"""

from __future__ import annotations

from repro.errors import XMLError

__all__ = [
    "escape_text",
    "escape_attr",
    "unescape",
    "escape_text_str",
    "escape_attr_str",
    "unescape_str",
    "is_xml_whitespace",
    "XML_WHITESPACE",
    "PAD_BYTE",
]

#: The four characters the XML 1.0 grammar treats as white space (``S``).
XML_WHITESPACE: bytes = b" \t\r\n"

#: The byte used by stuffing/padding throughout the library.
PAD_BYTE: int = 0x20  # space

# Translation tables used for a cheap "does it need escaping" test.
_TEXT_SPECIALS = b"&<>"
_ATTR_SPECIALS = b"&<>\"'"

_TEXT_MAP = {
    ord("&"): b"&amp;",
    ord("<"): b"&lt;",
    ord(">"): b"&gt;",
}
_ATTR_MAP = {
    ord("&"): b"&amp;",
    ord("<"): b"&lt;",
    ord(">"): b"&gt;",
    ord('"'): b"&quot;",
    ord("'"): b"&apos;",
}

_NAMED_ENTITIES = {
    b"amp": b"&",
    b"lt": b"<",
    b"gt": b">",
    b"quot": b'"',
    b"apos": b"'",
}


def escape_text(data: bytes) -> bytes:
    """Escape *data* for use as XML element content.

    ``&``, ``<`` and ``>`` are replaced by their named entities.  The
    common case — no special characters — is detected with a single C
    scan and returns the input object unchanged (no copy).
    """
    for b in _TEXT_SPECIALS:
        if b in data:
            break
    else:
        return data
    out = bytearray()
    for byte in data:
        repl = _TEXT_MAP.get(byte)
        if repl is None:
            out.append(byte)
        else:
            out += repl
    return bytes(out)


def escape_attr(data: bytes) -> bytes:
    """Escape *data* for use inside a double-quoted XML attribute."""
    for b in _ATTR_SPECIALS:
        if b in data:
            break
    else:
        return data
    out = bytearray()
    for byte in data:
        repl = _ATTR_MAP.get(byte)
        if repl is None:
            out.append(byte)
        else:
            out += repl
    return bytes(out)


def _codepoint_utf8(cp: int, ref: bytes) -> bytes:
    """Encode a numeric character reference, rejecting non-characters.

    Out-of-range and surrogate code points would otherwise escape as
    :class:`ValueError`/:class:`UnicodeEncodeError` — wire garbage must
    stay an :class:`XMLError` so servers answer with a fault.
    """
    try:
        return chr(cp).encode("utf-8")
    except (ValueError, UnicodeEncodeError):
        raise XMLError(f"character reference {ref!r} out of range") from None


def unescape(data: bytes) -> bytes:
    """Resolve the five predefined entities and numeric char refs.

    Raises :class:`~repro.errors.XMLError` on an unterminated or
    unknown entity reference.
    """
    amp = data.find(b"&")
    if amp < 0:
        return data
    out = bytearray(data[:amp])
    i = amp
    n = len(data)
    while i < n:
        byte = data[i]
        if byte != 0x26:  # '&'
            out.append(byte)
            i += 1
            continue
        end = data.find(b";", i + 1)
        if end < 0:
            raise XMLError(f"unterminated entity reference near byte {i}")
        name = data[i + 1 : end]
        if name.startswith(b"#x") or name.startswith(b"#X"):
            try:
                cp = int(name[2:], 16)
            except ValueError as exc:
                raise XMLError(f"bad hex character reference {name!r}") from exc
            out += _codepoint_utf8(cp, name)
        elif name.startswith(b"#"):
            try:
                cp = int(name[1:], 10)
            except ValueError as exc:
                raise XMLError(f"bad character reference {name!r}") from exc
            out += _codepoint_utf8(cp, name)
        else:
            repl = _NAMED_ENTITIES.get(name)
            if repl is None:
                raise XMLError(f"unknown entity &{name.decode('ascii', 'replace')};")
            out += repl
        i = end + 1
    return bytes(out)


def escape_text_str(data: str) -> str:
    """``str`` convenience wrapper around :func:`escape_text`."""
    return escape_text(data.encode("utf-8")).decode("utf-8")


def escape_attr_str(data: str) -> str:
    """``str`` convenience wrapper around :func:`escape_attr`."""
    return escape_attr(data.encode("utf-8")).decode("utf-8")


def unescape_str(data: str) -> str:
    """``str`` convenience wrapper around :func:`unescape`."""
    return unescape(data.encode("utf-8")).decode("utf-8")


def is_xml_whitespace(data: bytes) -> bool:
    """Return ``True`` iff every byte of *data* is XML white space.

    The empty string counts as whitespace (an empty pad is legal).
    """
    return all(b in XML_WHITESPACE for b in data)
