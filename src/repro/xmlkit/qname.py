"""Qualified names and namespace prefix bindings.

SOAP messages are namespace-heavy (``SOAP-ENV``, ``SOAP-ENC``, ``xsd``,
``xsi`` plus the service namespace).  The writer keeps a
:class:`NamespaceBindings` scope stack so prefixes are declared once on
the envelope element, exactly as the paper's toolkits do; templates
then never need to re-emit declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import XMLError

__all__ = ["QName", "NamespaceBindings", "split_prefixed"]


def split_prefixed(name: str) -> Tuple[str, str]:
    """Split ``prefix:local`` into ``(prefix, local)``.

    An unprefixed name yields an empty prefix.  More than one colon is
    rejected (per XML Namespaces).
    """
    first = name.find(":")
    if first < 0:
        return "", name
    if name.find(":", first + 1) >= 0:
        raise XMLError(f"invalid QName {name!r}: multiple colons")
    if first == 0 or first == len(name) - 1:
        raise XMLError(f"invalid QName {name!r}: empty prefix or local part")
    return name[:first], name[first + 1 :]


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded XML name: ``(namespace_uri, local)`` plus a preferred prefix.

    ``QName`` instances are immutable and hashable so they can be used
    as dictionary keys in type registries and WSDL models.
    """

    uri: str
    local: str
    prefix: str = ""

    def __post_init__(self) -> None:
        if not self.local:
            raise XMLError("QName local part must be non-empty")
        if ":" in self.local:
            raise XMLError(f"QName local part {self.local!r} may not contain ':'")

    @property
    def prefixed(self) -> str:
        """The lexical ``prefix:local`` (or bare ``local``) form."""
        return f"{self.prefix}:{self.local}" if self.prefix else self.local

    @property
    def clark(self) -> str:
        """Clark notation ``{uri}local`` — prefix-independent identity."""
        return f"{{{self.uri}}}{self.local}" if self.uri else self.local

    def with_prefix(self, prefix: str) -> "QName":
        """Return a copy bound to a different preferred prefix."""
        return QName(self.uri, self.local, prefix)

    def matches(self, other: "QName") -> bool:
        """Namespace-aware equality (ignores the cosmetic prefix)."""
        return self.uri == other.uri and self.local == other.local

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.prefixed


class NamespaceBindings:
    """A stack of prefix → URI scopes mirroring element nesting.

    The writer pushes a scope per element that declares namespaces and
    pops it on the end tag; lookups walk the stack innermost-first.
    """

    def __init__(self, initial: Optional[Dict[str, str]] = None) -> None:
        self._scopes: List[Dict[str, str]] = [dict(initial or {})]

    def push(self, declarations: Optional[Dict[str, str]] = None) -> None:
        """Enter a new scope, optionally declaring prefixes in it."""
        self._scopes.append(dict(declarations or {}))

    def pop(self) -> None:
        """Leave the innermost scope."""
        if len(self._scopes) == 1:
            raise XMLError("namespace scope underflow")
        self._scopes.pop()

    def declare(self, prefix: str, uri: str) -> None:
        """Declare *prefix* → *uri* in the current scope."""
        self._scopes[-1][prefix] = uri

    def resolve(self, prefix: str) -> str:
        """Return the URI bound to *prefix* (innermost wins).

        The empty prefix resolves to the default namespace, which is
        ``""`` (no namespace) when never declared.
        """
        for scope in reversed(self._scopes):
            if prefix in scope:
                return scope[prefix]
        if prefix == "":
            return ""
        if prefix == "xml":
            return "http://www.w3.org/XML/1998/namespace"
        raise XMLError(f"unbound namespace prefix {prefix!r}")

    def prefix_for(self, uri: str) -> Optional[str]:
        """Return some in-scope prefix bound to *uri*, or ``None``.

        Innermost declarations win; a prefix shadowed by an inner
        redeclaration is not returned.
        """
        seen: set[str] = set()
        for scope in reversed(self._scopes):
            for prefix, bound in scope.items():
                if prefix in seen:
                    continue
                seen.add(prefix)
                if bound == uri:
                    return prefix
        return None

    def expand(self, prefixed: str, *, is_attribute: bool = False) -> QName:
        """Expand a lexical ``prefix:local`` form using current scopes.

        Unprefixed attribute names are in *no* namespace (per XML
        Namespaces), while unprefixed element names take the default
        namespace.
        """
        prefix, local = split_prefixed(prefixed)
        if is_attribute and not prefix:
            return QName("", local, "")
        return QName(self.resolve(prefix), local, prefix)

    def iter_bindings(self) -> Iterator[Tuple[str, str]]:
        """Yield effective ``(prefix, uri)`` pairs, innermost wins."""
        seen: set[str] = set()
        for scope in reversed(self._scopes):
            for prefix, uri in scope.items():
                if prefix not in seen:
                    seen.add(prefix)
                    yield prefix, uri

    @property
    def depth(self) -> int:
        """Number of scopes currently on the stack (≥ 1)."""
        return len(self._scopes)
