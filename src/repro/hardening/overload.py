"""Overload control: admission gates + a memory budget with tiered relief.

PRs 6–8 multiplied the per-session state a server keeps to make
steady-state traffic cheap — response templates, delta mirrors,
compiled seek tables — without a global budget or an overload story.
This module adds the robustness layer that makes saturation survivable
instead of fatal:

* :class:`AdmissionController` sits in front of request handling and
  **rejects early** (HTTP ``503`` + ``Retry-After``) instead of
  queuing unboundedly.  Three gates, each cheap and independently
  configurable through :class:`OverloadPolicy`:

  - *concurrency* — at most ``max_concurrent_requests`` in flight;
  - *queue depth* — at most ``max_queue_depth`` callers waiting for a
    slot, each for at most ``queue_timeout`` seconds;
  - *rate* — a token bucket (``rate_per_sec`` refill, ``burst``
    capacity) smoothing arrival spikes.

* :class:`MemoryAccountant` is the ledger every piece of per-session
  state is charged against — deserializer templates, seek tables,
  delta mirrors, response templates — with one global byte budget
  (``ResourceLimits.max_state_bytes``).  When usage crosses the
  budget, :meth:`ServerSessionManager.relieve_pressure
  <repro.runtime.sessions.ServerSessionManager.relieve_pressure>`
  sheds state **in order of cheapest recovery**:

  1. ``mirror`` — delta mirrors (client recovers via the existing
     409-resync → full-XML re-announce);
  2. ``seektable`` — compiled seek tables (the per-leaf loop and the
     full parse stay authoritative);
  3. ``session`` — LRU idle sessions (the client falls back to a
     first-time send).

  Every shed emits ``repro_overload_events_total{tier}`` and an
  ``overload`` span; nothing in the ladder can lose a request, only
  speed.  Relief stops at the low watermark
  (``shed_target_fraction`` × budget) to avoid shed/refill thrash.

Both pieces are optional and off by default: a service built without
them behaves exactly as before.  ``docs/overload.md`` walks the whole
recovery ladder; the chaos harness (:mod:`repro.chaos`) proves it
under deterministic fault schedules.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import AdmissionRejectedError
from repro.obs import NULL_OBS, Observability

__all__ = [
    "OverloadPolicy",
    "AdmissionController",
    "MemoryAccountant",
    "SHED_TIERS",
    "STATE_COMPONENTS",
]

#: Pressure-relief tiers in shed order (cheapest client recovery
#: first).  ``over-budget`` is the extra metric label used when every
#: tier is exhausted and usage still exceeds the budget.
SHED_TIERS = ("mirror", "seektable", "session")

#: Ledger components a session's state is split into (also the
#: ``component`` label on the ``repro_state_bytes`` gauge).
STATE_COMPONENTS = ("deser", "seektable", "mirror", "response")


@dataclass(frozen=True)
class OverloadPolicy:
    """Knobs for :class:`AdmissionController` (see module docstring).

    The defaults are sized for the threaded
    :class:`~repro.server.service.HTTPSoapServer`: admit roughly as
    many concurrent requests as it has worker threads, keep a short
    bounded queue, and let the rate gate stay effectively open unless
    configured down.
    """

    #: Requests executing at once before new ones queue.
    max_concurrent_requests: int = 64
    #: Callers allowed to wait for a concurrency slot; beyond this the
    #: request is rejected immediately.
    max_queue_depth: int = 64
    #: Longest a queued caller waits for a slot before a 503.
    queue_timeout: float = 0.5
    #: Token-bucket refill rate (requests/second).
    rate_per_sec: float = 10_000.0
    #: Token-bucket capacity (burst tolerance).
    burst: float = 10_000.0
    #: Floor for the ``Retry-After`` hint (seconds; HTTP delta-seconds
    #: are integral, so hints round up to at least this).
    retry_after_min: int = 1
    #: Ceiling for the ``Retry-After`` hint.
    retry_after_max: int = 30
    #: Relief sheds until usage ≤ this fraction of the byte budget
    #: (the low watermark; 1.0 would shed exactly to the budget and
    #: thrash on the very next allocation).
    shed_target_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.max_concurrent_requests < 1:
            raise ValueError("max_concurrent_requests must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.queue_timeout < 0:
            raise ValueError("queue_timeout must be >= 0")
        if self.rate_per_sec <= 0 or self.burst <= 0:
            raise ValueError("rate_per_sec and burst must be positive")
        if not (1 <= self.retry_after_min <= self.retry_after_max):
            raise ValueError("need 1 <= retry_after_min <= retry_after_max")
        if not (0.0 < self.shed_target_fraction <= 1.0):
            raise ValueError("shed_target_fraction must be in (0, 1]")


class AdmissionController:
    """Concurrency + queue-depth + token-bucket admission gates.

    Usage::

        controller = AdmissionController(OverloadPolicy(...))
        try:
            with controller.admit():
                ...handle the request...
        except AdmissionRejectedError as exc:
            ...answer 503 with Retry-After: exc.retry_after...

    Thread-safe; one instance fronts one service.  ``clock`` is
    injectable so the token bucket and queue timeout are testable
    without sleeping.
    """

    def __init__(
        self,
        policy: Optional[OverloadPolicy] = None,
        *,
        obs: Optional[Observability] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else OverloadPolicy()
        self.obs = obs if obs is not None else NULL_OBS
        self._clock = clock
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._tokens = float(self.policy.burst)
        self._refilled_at = clock()
        #: Decision counters (also mirrored into
        #: ``repro_admission_total{outcome}`` when metrics are on).
        self.admitted = 0
        self.rejected: Dict[str, int] = {
            "concurrency": 0,
            "queue": 0,
            "rate": 0,
        }

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(
                float(self.policy.burst),
                self._tokens + elapsed * self.policy.rate_per_sec,
            )
            self._refilled_at = now

    def _hint(self, seconds: float) -> int:
        """Clamp a backoff suggestion into the Retry-After bounds."""
        return max(
            self.policy.retry_after_min,
            min(self.policy.retry_after_max, int(math.ceil(seconds))),
        )

    def _reject(self, gate: str, hint_s: float) -> AdmissionRejectedError:
        self.rejected[gate] += 1
        self.obs.record_admission(f"rejected-{gate}")
        retry_after = self._hint(hint_s)
        return AdmissionRejectedError(
            f"admission rejected at the {gate} gate", gate, retry_after
        )

    def try_admit(self) -> None:
        """Pass the gates or raise :class:`AdmissionRejectedError`.

        Callers must pair success with :meth:`release` — or use the
        :meth:`admit` context manager, which does.
        """
        policy = self.policy
        with self._cond:
            now = self._clock()
            self._refill_locked(now)
            if self._tokens < 1.0:
                # Refill time until a whole token exists.
                deficit = (1.0 - self._tokens) / policy.rate_per_sec
                raise self._reject("rate", deficit)
            if self._in_flight >= policy.max_concurrent_requests:
                if self._queued >= policy.max_queue_depth:
                    raise self._reject("queue", policy.queue_timeout)
                self._queued += 1
                deadline = now + policy.queue_timeout
                try:
                    while self._in_flight >= policy.max_concurrent_requests:
                        remaining = deadline - self._clock()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            raise self._reject(
                                "concurrency", policy.queue_timeout
                            )
                finally:
                    self._queued -= 1
            self._tokens -= 1.0
            self._in_flight += 1
            self.admitted += 1
        self.obs.record_admission("admitted")

    def release(self) -> None:
        with self._cond:
            self._in_flight = max(0, self._in_flight - 1)
            self._cond.notify()

    def admit(self) -> "_AdmissionTicket":
        """Context-manager form of :meth:`try_admit` / :meth:`release`."""
        self.try_admit()
        return _AdmissionTicket(self)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        with self._cond:
            out: Dict[str, int] = {"admitted": self.admitted}
            for gate, count in self.rejected.items():
                out[f"rejected_{gate}"] = count
            out["in_flight"] = self._in_flight
            out["queued"] = self._queued
            return out


class _AdmissionTicket:
    """Releases one admitted slot on exit (see ``admit()``)."""

    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> "_AdmissionTicket":
        return self

    def __exit__(self, *exc) -> None:
        self._controller.release()


class MemoryAccountant:
    """Byte ledger for per-session server state, split by component.

    Holders (the session manager) push **deltas** through
    :meth:`charge` as state is created, resized, shed, or retired, so
    reading usage is O(1) — no walk over sessions on the hot path.
    The accountant is pure bookkeeping plus policy arithmetic; the
    shedding itself lives with the state's owner
    (:meth:`~repro.runtime.sessions.ServerSessionManager.relieve_pressure`),
    which knows locking and recovery semantics.

    The gauge mirror: every charge pushes the component's new total
    into ``repro_state_bytes{component}``, so ``GET /metrics`` shows
    live state sizes the same way ``merged_counters`` does.
    """

    def __init__(
        self,
        budget_bytes: int,
        *,
        shed_target_fraction: float = 0.8,
        obs: Optional[Observability] = None,
    ) -> None:
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1")
        if not (0.0 < shed_target_fraction <= 1.0):
            raise ValueError("shed_target_fraction must be in (0, 1]")
        self.budget_bytes = budget_bytes
        self.shed_target_fraction = shed_target_fraction
        self.obs = obs if obs is not None else NULL_OBS
        self._lock = threading.Lock()
        self._by_component: Dict[str, int] = {c: 0 for c in STATE_COMPONENTS}
        #: Running total of ``_by_component`` — maintained on every
        #: charge so :attr:`usage_bytes` is a read, not a sum.  At C10K
        #: scale the shed ladder probes usage thousands of times per
        #: relief pass; re-summing per probe was the hot path.
        self._usage = 0
        #: High-water mark of total usage (post-charge, pre-relief).
        self.peak_bytes = 0
        #: Sheds performed against this ledger, by tier (the owner
        #: reports them through :meth:`note_shed`).
        self.sheds: Dict[str, int] = {t: 0 for t in SHED_TIERS}
        self.over_budget_ticks = 0

    # ------------------------------------------------------------------
    def charge(self, component: str, delta: int) -> None:
        """Add *delta* bytes (may be negative) to *component*."""
        if delta == 0:
            return
        with self._lock:
            old = self._by_component.get(component, 0)
            new_total = max(0, old + delta)
            self._by_component[component] = new_total
            self._usage += new_total - old
            if self._usage > self.peak_bytes:
                self.peak_bytes = self._usage
        self.obs.record_state_bytes(component, new_total)

    @property
    def usage_bytes(self) -> int:
        with self._lock:
            return self._usage

    def usage_by_component(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._by_component)

    @property
    def over_budget(self) -> bool:
        return self.usage_bytes > self.budget_bytes

    @property
    def shed_target_bytes(self) -> int:
        """The low watermark relief sheds down to."""
        return int(self.budget_bytes * self.shed_target_fraction)

    def relief_needed(self) -> int:
        """Bytes to free to reach the low watermark (0 when under)."""
        usage = self.usage_bytes
        if usage <= self.budget_bytes:
            return 0
        return usage - self.shed_target_bytes

    # ------------------------------------------------------------------
    def note_shed(self, tier: str) -> None:
        """Record one shed at *tier* (metrics + span + counter)."""
        with self._lock:
            self.sheds[tier] = self.sheds.get(tier, 0) + 1
        self.obs.record_overload(tier)

    def note_over_budget(self) -> None:
        """Everything sheddable is gone and usage still exceeds the
        budget (all remaining state belongs to busy/pinned sessions)."""
        with self._lock:
            self.over_budget_ticks += 1
        self.obs.record_overload("over-budget")

    def counters(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {
                "state_bytes": sum(self._by_component.values()),
                "state_budget_bytes": self.budget_bytes,
                "state_peak_bytes": self.peak_bytes,
                "over_budget_ticks": self.over_budget_ticks,
            }
            for component, nbytes in self._by_component.items():
                out[f"state_{component}_bytes"] = nbytes
            for tier, count in self.sheds.items():
                out[f"sheds_{tier}"] = count
            return out
