"""Server/client resource limits — one config object for every layer.

A production SOAP endpoint ("heavy traffic from millions of users",
ROADMAP.md) cannot trust any byte it receives: a request may be
oversized, absurdly nested, attribute-bombed, slow-trickled, or plain
garbage.  :class:`ResourceLimits` is the single knob set shared by the
scanner (:mod:`repro.xmlkit.scanner`), the request parser
(:mod:`repro.server.parser`), the HTTP front ends
(:class:`~repro.server.service.HTTPSoapServer`,
:class:`~repro.transport.dummy_server.DummyServer`) and the client
transports (:class:`~repro.transport.tcp.TCPTransport` and its
resilience wrappers), so both sides of a connection agree on one
configurable bound instead of scattered hardcoded ``1 << 24`` caps.

Every limit maps to a deterministic, *answered* rejection — a
:class:`~repro.errors.ResourceLimitError` (serialized as a SOAP Client
fault) at the XML layers, or a clean HTTP 400/408/413/503 at the
framing layer — never a raw traceback, a hang, or a silently dropped
socket.  ``docs/failure_model.md`` tabulates which limit maps to which
rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ResourceLimits", "DEFAULT_LIMITS", "UNLIMITED"]


@dataclass(frozen=True, slots=True)
class ResourceLimits:
    """Bounds enforced on inbound traffic (see module docstring).

    The defaults are generous enough for every legitimate workload in
    the benchmarks (multi-MiB arrays, thousands of pipelined calls)
    while keeping adversarial input bounded.  All byte/count limits
    are inclusive: a message *at* the limit is accepted, one unit past
    it is rejected.
    """

    #: Largest accepted SOAP body (request payload) in bytes.
    max_body_bytes: int = 1 << 24  # 16 MiB
    #: Largest accepted HTTP header block in bytes.
    max_header_bytes: int = 1 << 16  # 64 KiB
    #: Deepest accepted XML element nesting.
    max_xml_depth: int = 64
    #: Most elements accepted in one document.
    max_xml_elements: int = 1 << 20
    #: Most attributes accepted on one element.
    max_attributes: int = 64
    #: Longest accepted single token (tag name, attribute name/value).
    max_token_bytes: int = 1 << 16  # 64 KiB
    #: Seconds a connection may take to deliver one complete request
    #: once its first byte arrived (slow-trickle guard → HTTP 408).
    read_deadline: float = 30.0
    #: Requests served on one connection before it is closed (503).
    max_requests_per_connection: int = 100_000
    #: Concurrent connections accepted by a server front end (503).
    max_concurrent_connections: int = 128
    #: Most splices accepted in one binary delta frame (resync).
    max_delta_splices: int = 1 << 17
    #: Largest accepted binary delta frame in bytes (resync).  Framing
    #: already caps it at ``max_body_bytes``; this is the tighter bound
    #: a patch-sized payload should never legitimately reach.
    max_delta_frame_bytes: int = 1 << 24
    #: Mirror documents retained per server session for delta
    #: reconstruction (LRU beyond this; an evicted template's next
    #: frame answers resync and the client re-announces).
    max_delta_mirrors: int = 4
    #: Global byte budget for *all* per-session server state —
    #: deserializer templates, compiled seek tables, delta mirrors,
    #: response templates — summed across sessions.  Crossing it
    #: triggers tiered pressure relief (mirrors → seek tables → LRU
    #: sessions; see :mod:`repro.hardening.overload`), never a
    #: rejection: every shed tier has a correct slow-path recovery.
    max_state_bytes: int = 1 << 26  # 64 MiB

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value <= 0:
                raise ValueError(f"{f.name} must be positive, got {value!r}")

    # ------------------------------------------------------------------
    @property
    def recv_cap(self) -> int:
        """Total bytes a client buffers for one HTTP response.

        Header allowance plus body allowance — the bound the transports'
        ``recv_http_response`` enforces instead of a hardcoded cap.
        """
        return self.max_header_bytes + self.max_body_bytes

    def replace(self, **overrides: object) -> "ResourceLimits":
        """A copy with *overrides* applied (convenience for tests)."""
        from dataclasses import replace as _replace

        return _replace(self, **overrides)


#: The shared default instance; layers that receive ``limits=None``
#: fall back to this.
DEFAULT_LIMITS = ResourceLimits()

#: Effectively-unbounded limits for trusted/benchmark paths that must
#: not reject anything (still finite so arithmetic stays safe).
UNLIMITED = ResourceLimits(
    max_body_bytes=1 << 40,
    max_header_bytes=1 << 30,
    max_xml_depth=1 << 20,
    max_xml_elements=1 << 40,
    max_attributes=1 << 20,
    max_token_bytes=1 << 32,
    read_deadline=86_400.0,
    max_requests_per_connection=1 << 40,
    max_concurrent_connections=1 << 20,
    max_delta_splices=1 << 30,
    max_delta_frame_bytes=1 << 40,
    max_delta_mirrors=1 << 10,
    max_state_bytes=1 << 50,
)
