"""Seeded wire fuzzer for the fault-not-crash contract.

Two drivers share one corpus-mutation engine:

* :func:`fuzz_service` pushes mutated SOAP bodies straight through
  :meth:`SOAPService.handle` — the invariant is that ``handle`` never
  raises, always returns a parseable envelope (response or Fault), and
  that a pristine *probe* wire still gets a non-fault answer after any
  amount of garbage (no poisoned session state).
* :func:`fuzz_http` wraps mutated bodies in (sometimes deliberately
  broken) HTTP framing and drives them through a live
  :class:`HTTPSoapServer` over real sockets — the invariant is that
  every connection gets an answer (no hangs, no silent drops) with a
  status from the allowed set.

Two more target the binary delta-frame protocol (``repro.wire``),
sharing a :class:`DeltaFrameFuzzer` whose mutators aim at each
decoder/mirror check individually (truncations, splice-count and
doc-len lies, out-of-bounds offsets, stale epochs, sequence gaps):

* :func:`fuzz_delta` announces a baseline then pushes mutated frames
  through :meth:`SOAPService.handle_wire` — only 200/409 may come
  back, nothing raises, and a pristine frame still reconstructs after
  any garbage;
* :func:`fuzz_delta_http` does the same over real sockets, one
  connection per case carrying a well-formed announce plus a mutated
  frame.

Everything is driven by one ``random.Random(seed)``: a failing case
replays exactly from the printed seed.  Mutations are corpus-based
(byte-level: bit flips, truncations, slice splices) plus
structure-aware ones that target what this codebase actually relies
on: tag splices, digit/width perturbation of the stuffed DUT field
regions, ``arrayType`` count lies, entity garbage, and
limits-shaped bombs (nesting depth, attribute count, token length)
sized just past the service's :class:`ResourceLimits`.

Run standalone (CI ``fuzz-smoke`` job)::

    PYTHONPATH=src python -m repro.hardening.fuzz \
        --corpus tests/golden --seed 12345 \
        --service-iterations 2000 --http-iterations 200 \
        --delta-iterations 600 --delta-http-iterations 100

Outcome counts are exported through the service's
:class:`~repro.obs.MetricsRegistry` as
``repro_fuzz_cases_total{mode,outcome}`` so a fuzzed server's
``/metrics`` endpoint shows the rejection mix.
"""

from __future__ import annotations

import argparse
import random
import re
import socket
import struct
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.schema.types import INT
from repro.server.service import HTTPSoapServer, Operation, SOAPService
from repro.soap.fault import SOAPFault
from repro.wire.frame import HEADER, encode_frame

__all__ = [
    "WireFuzzer",
    "HTTPFuzzer",
    "DeltaFrameFuzzer",
    "FuzzReport",
    "build_fuzz_service",
    "load_corpus",
    "default_corpus",
    "fuzz_service",
    "fuzz_http",
    "fuzz_delta",
    "fuzz_delta_http",
    "ALLOWED_HTTP_STATUSES",
    "main",
]

#: Statuses a hardened front end may legitimately answer with
#: (409 is the delta protocol's resync signal).
ALLOWED_HTTP_STATUSES = frozenset({200, 400, 404, 408, 409, 413, 503})

#: Operations appearing in the golden corpus — the fuzz service
#: registers a handler for each so pristine wires dispatch cleanly.
CORPUS_OPERATIONS = (
    "putDoubles",
    "putMesh",
    "exchangeAds",
    "shareArrays",
    "configure",
)

_DIGIT_RUN = re.compile(rb"[0-9][0-9.eE+\-]{0,30}")
_ARRAYTYPE = re.compile(rb'arrayType="[^"]*"')
_TAG_NAME = re.compile(rb"</?([A-Za-z][A-Za-z0-9:_\-]*)")
_ITEM_VALUE = re.compile(rb"<item>([^<]{1,64})</item>")
_CLOSE_PAD = re.compile(rb"(</[A-Za-z][A-Za-z0-9:]*>)([ \t]{2,64})")


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
def load_corpus(path) -> List[bytes]:
    """Load every ``*.xml``/``*.bin`` wire under *path*, sorted by name."""
    directory = Path(path)
    files = sorted(
        p for p in directory.glob("*") if p.suffix in (".xml", ".bin")
    )
    if not files:
        raise FileNotFoundError(f"no corpus wires under {directory}")
    return [p.read_bytes() for p in files]


def _synthetic_corpus() -> List[bytes]:
    """Deterministic fallback wires when no golden corpus is on disk."""
    import numpy as np

    from repro.core.serializer import build_template
    from repro.schema.composite import ArrayType
    from repro.schema.types import DOUBLE, STRING
    from repro.soap.message import Parameter, SOAPMessage

    doubles = SOAPMessage(
        "putDoubles",
        "urn:golden",
        [
            Parameter(
                "data",
                ArrayType(DOUBLE),
                np.array([0.0, 1.5, -2.25, 3.141592653589793]),
            )
        ],
    )
    mixed = SOAPMessage(
        "configure",
        "urn:golden",
        [
            Parameter("n", INT, -42),
            Parameter("scale", DOUBLE, 0.125),
            Parameter("names", ArrayType(STRING), ["alpha", "b<c"]),
        ],
    )
    return [build_template(m).tobytes() for m in (doubles, mixed)]


def default_corpus() -> List[bytes]:
    """``tests/golden`` when running from a checkout, else synthetic."""
    golden = Path(__file__).resolve().parents[3] / "tests" / "golden"
    try:
        return load_corpus(golden)
    except FileNotFoundError:
        return _synthetic_corpus()


def _checksum_handler(**params: object) -> int:
    """Deterministic CRC over every decoded value, not just a count.

    The pristine-probe poisoning check compares this answer against a
    calibration baseline, so a session whose skip-scan lane silently
    committed *wrong values* (not just a fault) flips the probe — the
    failure mode trusted-offset parsing has to prove it does not have.
    """
    import numpy as np

    acc = 0
    for name in sorted(params):
        value = params[name]
        acc = zlib.crc32(name.encode(), acc)
        if isinstance(value, dict):  # struct array: field -> column
            for key in sorted(value):
                acc = zlib.crc32(key.encode(), acc)
                acc = zlib.crc32(np.asarray(value[key]).tobytes(), acc)
        elif isinstance(value, np.ndarray):
            acc = zlib.crc32(value.tobytes(), acc)
        else:
            acc = zlib.crc32(repr(value).encode(), acc)
    return acc & 0x7FFFFFFF


def build_fuzz_service(
    *,
    limits: Optional[ResourceLimits] = None,
    obs=None,
) -> SOAPService:
    """A service accepting every corpus operation (``urn:golden``).

    Handlers take arbitrary keyword parameters and return a count, so
    any well-formed corpus wire dispatches without a fault while the
    response side still exercises the differential serializer.
    """
    from repro.apps.classads import MACHINE_AD_TYPE
    from repro.schema.mio import MIO_TYPE
    from repro.schema.registry import TypeRegistry

    registry = TypeRegistry()
    registry.register_struct(MIO_TYPE)
    registry.register_struct(MACHINE_AD_TYPE)
    service = SOAPService("urn:golden", registry, limits=limits, obs=obs)
    for name in CORPUS_OPERATIONS:
        service.register(
            Operation(
                name, _checksum_handler, result_type=INT, result_name="count"
            )
        )
    return service


# ----------------------------------------------------------------------
# Mutation engine
# ----------------------------------------------------------------------
class WireFuzzer:
    """Deterministic corpus mutator (one :class:`random.Random`).

    Structure-aware mutators are sized off *limits* so the bombs land
    just past the configured bounds — the interesting side of each
    limit.
    """

    def __init__(
        self,
        corpus: Sequence[bytes],
        seed: int = 0,
        *,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self.corpus = [bytes(w) for w in corpus if w]
        if not self.corpus:
            raise ValueError("fuzz corpus is empty")
        self.seed = seed
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._rng = random.Random(seed)
        self._mutators: List[Tuple[str, Callable[[random.Random, bytes], bytes]]] = [
            ("identity", lambda rng, w: w),
            ("bit_flip", self._bit_flip),
            ("truncate", self._truncate),
            ("delete_slice", self._delete_slice),
            ("duplicate_slice", self._duplicate_slice),
            ("tag_splice", self._tag_splice),
            ("digit_perturb", self._digit_perturb),
            ("width_perturb", self._width_perturb),
            ("arraytype_lie", self._arraytype_lie),
            ("skeleton_flip", self._skeleton_flip),
            ("span_length_lie", self._span_length_lie),
            ("offset_desync", self._offset_desync),
            ("pad_crlf", self._pad_crlf),
            ("entity_garbage", self._entity_garbage),
            ("utf8_garbage", self._utf8_garbage),
            ("nest_bomb", self._nest_bomb),
            ("attr_bomb", self._attr_bomb),
            ("token_bomb", self._token_bomb),
            ("pure_garbage", self._pure_garbage),
        ]

    def next_case(self) -> Tuple[bytes, str]:
        """One mutated wire plus the mutator name that produced it."""
        rng = self._rng
        wire = rng.choice(self.corpus)
        name, mutate = rng.choice(self._mutators)
        return mutate(rng, wire), name

    # -- byte-level ----------------------------------------------------
    @staticmethod
    def _bit_flip(rng: random.Random, wire: bytes) -> bytes:
        out = bytearray(wire)
        for _ in range(rng.randint(1, 8)):
            out[rng.randrange(len(out))] ^= 1 << rng.randrange(8)
        return bytes(out)

    @staticmethod
    def _truncate(rng: random.Random, wire: bytes) -> bytes:
        return wire[: rng.randrange(len(wire))]

    @staticmethod
    def _delete_slice(rng: random.Random, wire: bytes) -> bytes:
        i = rng.randrange(len(wire))
        j = min(len(wire), i + rng.randint(1, 64))
        return wire[:i] + wire[j:]

    @staticmethod
    def _duplicate_slice(rng: random.Random, wire: bytes) -> bytes:
        i = rng.randrange(len(wire))
        j = min(len(wire), i + rng.randint(1, 64))
        return wire[:j] + wire[i:j] + wire[j:]

    # -- structure-aware -----------------------------------------------
    def _tag_splice(self, rng: random.Random, wire: bytes) -> bytes:
        """Copy one tag-ish region over another (mismatched tag soup)."""
        starts = [m.start() for m in re.finditer(rb"<", wire)]
        if len(starts) < 2:
            return self._bit_flip(rng, wire)
        src, dst = rng.sample(starts, 2)
        piece = wire[src : src + rng.randint(2, 40)]
        return wire[:dst] + piece + wire[dst:]

    def _digit_perturb(self, rng: random.Random, wire: bytes) -> bytes:
        """Corrupt characters inside a numeric run (DUT field region)."""
        runs = list(_DIGIT_RUN.finditer(wire))
        if not runs:
            return self._bit_flip(rng, wire)
        run = rng.choice(runs)
        out = bytearray(wire)
        for _ in range(rng.randint(1, 3)):
            pos = rng.randrange(run.start(), run.end())
            out[pos] = rng.choice(b"0123456789.-+eEZ#")
        return bytes(out)

    def _width_perturb(self, rng: random.Random, wire: bytes) -> bytes:
        """Grow or shrink a numeric run (breaks stuffed-width framing)."""
        runs = list(_DIGIT_RUN.finditer(wire))
        if not runs:
            return self._truncate(rng, wire)
        run = rng.choice(runs)
        if rng.random() < 0.5:
            extra = bytes(rng.choice(b"0123456789") for _ in range(rng.randint(1, 24)))
            return wire[: run.end()] + extra + wire[run.end() :]
        keep = rng.randrange(run.end() - run.start())
        return wire[: run.start() + keep] + wire[run.end() :]

    def _arraytype_lie(self, rng: random.Random, wire: bytes) -> bytes:
        """Make ``arrayType`` disagree with the actual item count."""
        match = _ARRAYTYPE.search(wire)
        if match is None:
            return self._tag_splice(rng, wire)
        lie = rng.choice(
            [
                b'arrayType="xsd:double[%d]"' % rng.randrange(0, 1 << 16),
                b'arrayType="xsd:double[-1]"',
                b'arrayType="garbage"',
                b'arrayType=""',
            ]
        )
        return wire[: match.start()] + lie + wire[match.end() :]

    # -- skip-scan-aware (trusted-offset deserialization) --------------
    def _skeleton_flip(self, rng: random.Random, wire: bytes) -> bytes:
        """Flip one tag-name byte behind still-valid ``<``/``>`` framing
        — exactly the skeleton bytes a compiled seek table trusts."""
        tags = list(_TAG_NAME.finditer(wire))
        if not tags:
            return self._bit_flip(rng, wire)
        match = rng.choice(tags)
        out = bytearray(wire)
        out[rng.randrange(match.start(1), match.end(1))] = rng.choice(
            b"abcdefghijkz"
        )
        return bytes(out)

    def _span_length_lie(self, rng: random.Random, wire: bytes) -> bytes:
        """Grow or truncate one ``<item>`` value without adjusting the
        pad, so the wire length lies to any armed seek table."""
        runs = list(_ITEM_VALUE.finditer(wire))
        if not runs:
            return self._width_perturb(rng, wire)
        match = rng.choice(runs)
        value = match.group(1)
        if rng.random() < 0.5 and len(value) > 1:
            new = value[: rng.randrange(1, len(value))]
        else:
            new = value + bytes(
                rng.choice(b"0123456789") for _ in range(rng.randint(1, 12))
            )
        return wire[: match.start(1)] + new + wire[match.end(1) :]

    def _offset_desync(self, rng: random.Random, wire: bytes) -> bytes:
        """Slide a close tag within its stuffing pad: same length, same
        dirty regions, but every offset the seek table computed from
        its template is now wrong by a few bytes."""
        runs = list(_CLOSE_PAD.finditer(wire))
        if not runs:
            return self._span_length_lie(rng, wire)
        match = rng.choice(runs)
        tag, pad = match.group(1), match.group(2)
        shift = rng.randint(1, len(pad))
        return (
            wire[: match.start()]
            + pad[:shift]
            + tag
            + pad[shift:]
            + wire[match.end() :]
        )

    def _pad_crlf(self, rng: random.Random, wire: bytes) -> bytes:
        """Rewrite stuffing pad with CRLF/TAB soup (legal whitespace the
        vectorized pad check must accept) or sneak in one non-WS byte
        (which it must refuse)."""
        runs = list(_CLOSE_PAD.finditer(wire))
        if not runs:
            return self._bit_flip(rng, wire)
        match = rng.choice(runs)
        pad = bytearray(match.group(2))
        alphabet = b"\r\n\t " if rng.random() < 0.7 else b"\r\n\t x"
        for _ in range(rng.randint(1, len(pad))):
            pad[rng.randrange(len(pad))] = rng.choice(alphabet)
        return wire[: match.start(2)] + bytes(pad) + wire[match.end(2) :]

    def _entity_garbage(self, rng: random.Random, wire: bytes) -> bytes:
        junk = rng.choice(
            [b"&bogus;", b"&#xFFFFFFFF;", b"&#x110000;", b"&#-1;", b"&#;", b"&"]
        )
        pos = rng.randrange(len(wire))
        return wire[:pos] + junk + wire[pos:]

    def _utf8_garbage(self, rng: random.Random, wire: bytes) -> bytes:
        junk = rng.choice([b"\xff\xfe", b"\xc3", b"\xe2\x28\xa1", b"\x80"])
        pos = rng.randrange(len(wire))
        return wire[:pos] + junk + wire[pos:]

    # -- limits-shaped bombs -------------------------------------------
    def _nest_bomb(self, rng: random.Random, wire: bytes) -> bytes:
        depth = self.limits.max_xml_depth + rng.randint(1, 64)
        return b"<d>" * depth + b"x" + b"</d>" * depth

    def _attr_bomb(self, rng: random.Random, wire: bytes) -> bytes:
        count = self.limits.max_attributes + rng.randint(1, 64)
        attrs = b" ".join(b'a%d="v"' % i for i in range(count))
        return b"<e " + attrs + b"/>"

    def _token_bomb(self, rng: random.Random, wire: bytes) -> bytes:
        name = b"t" * (self.limits.max_token_bytes + rng.randint(1, 64))
        return b"<" + name + b">x</" + name + b">"

    @staticmethod
    def _pure_garbage(rng: random.Random, wire: bytes) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 256)))


# Byte offsets of the delta-frame header fields ("<4sQIIQII"): the
# header is not CRC-covered, so patching these fields yields frames
# that pass the CRC check and land on the decoder's semantic checks.
_F_TEMPLATE = 4
_F_EPOCH = 12
_F_SEQ = 16
_F_DOC_LEN = 20
_F_COUNT = 28


def _patch_u32(frame: bytes, offset: int, value: int) -> bytes:
    return frame[:offset] + struct.pack("<I", value & 0xFFFFFFFF) + frame[offset + 4:]


def _patch_u64(frame: bytes, offset: int, value: int) -> bytes:
    return (
        frame[:offset]
        + struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)
        + frame[offset + 8:]
    )


class DeltaFrameFuzzer:
    """Structure-aware mutator for binary delta frames.

    Each case starts from a freshly encoded *valid* frame (splices
    copying bytes of the mirror body, so pristine application is a
    no-op reconstruction) and applies one mutation targeting a
    specific decoder or mirror-matching check: framing lies (magic,
    truncation, CRC), directory lies (splice-count, widths,
    out-of-bounds and overlapping offsets, payload length), and state
    lies (stale/future epochs, sequence gaps, unknown templates,
    doc_len disagreement).
    """

    def __init__(
        self, rng: random.Random, limits: Optional[ResourceLimits] = None
    ) -> None:
        self._rng = rng
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._mutators: List[
            Tuple[str, Callable[[random.Random, bytes, dict], bytes]]
        ] = [
            ("identity", lambda rng, f, ctx: f),
            ("truncate", self._truncate),
            ("bit_flip", self._bit_flip),
            ("bad_magic", self._bad_magic),
            ("splice_count_lie", self._splice_count_lie),
            ("giant_splice_count", self._giant_splice_count),
            ("stale_epoch", self._stale_epoch),
            ("future_epoch", self._future_epoch),
            ("sequence_gap", self._sequence_gap),
            ("doc_len_lie", self._doc_len_lie),
            ("unknown_template", self._unknown_template),
            ("oob_offset", self._oob_offset),
            ("overlapping_splices", self._overlapping_splices),
            ("zero_width_splice", self._zero_width_splice),
            ("payload_length_lie", self._payload_length_lie),
            ("payload_garbage", self._payload_garbage),
            ("pure_garbage", self._pure_garbage),
        ]

    # ------------------------------------------------------------------
    def valid_frame(
        self, template_id: int, epoch: int, seq: int, body: bytes
    ) -> bytes:
        """A decodable frame whose splices copy *body*'s own bytes."""
        rng = self._rng
        offsets: List[int] = []
        widths: List[int] = []
        pieces: List[bytes] = []
        n = rng.randint(0, 4)
        if n and len(body) >= 8:
            prev_end = 0
            for start in sorted(rng.sample(range(len(body)), n)):
                if start < prev_end:
                    continue
                width = min(rng.randint(1, 16), len(body) - start)
                offsets.append(start)
                widths.append(width)
                pieces.append(body[start : start + width])
                prev_end = start + width
        return encode_frame(
            template_id, epoch, seq, len(body), offsets, widths, b"".join(pieces)
        )

    def next_case(
        self, template_id: int, epoch: int, seq: int, body: bytes
    ) -> Tuple[bytes, str]:
        """One mutated frame plus the mutator name that produced it."""
        rng = self._rng
        frame = self.valid_frame(template_id, epoch, seq, body)
        ctx = {
            "template_id": template_id,
            "epoch": epoch,
            "seq": seq,
            "body": body,
        }
        name, mutate = rng.choice(self._mutators)
        return mutate(rng, frame, ctx), name

    # -- framing lies --------------------------------------------------
    @staticmethod
    def _truncate(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return frame[: rng.randrange(len(frame))]

    @staticmethod
    def _bit_flip(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        out = bytearray(frame)
        for _ in range(rng.randint(1, 8)):
            out[rng.randrange(len(out))] ^= 1 << rng.randrange(8)
        return bytes(out)

    @staticmethod
    def _bad_magic(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(4)) + frame[4:]

    # -- directory lies ------------------------------------------------
    @staticmethod
    def _splice_count_lie(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        lie = rng.choice([0, 1, 7, 0xFFFF])
        return _patch_u32(frame, _F_COUNT, lie)

    def _giant_splice_count(
        self, rng: random.Random, frame: bytes, ctx: dict
    ) -> bytes:
        lie = self.limits.max_delta_splices + rng.randint(1, 1 << 10)
        return _patch_u32(frame, _F_COUNT, lie)

    @staticmethod
    def _oob_offset(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        doc_len = len(ctx["body"])
        offset = rng.choice(
            [doc_len, doc_len + 1, doc_len * 2 + 17, (1 << 63), (1 << 64) - 1]
        )
        return encode_frame(
            ctx["template_id"], ctx["epoch"], ctx["seq"], doc_len,
            [offset], [4], b"XXXX",
        )

    @staticmethod
    def _overlapping_splices(
        rng: random.Random, frame: bytes, ctx: dict
    ) -> bytes:
        return encode_frame(
            ctx["template_id"], ctx["epoch"], ctx["seq"], len(ctx["body"]),
            [5, 8], [8, 4], b"Y" * 12,
        )

    @staticmethod
    def _zero_width_splice(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return encode_frame(
            ctx["template_id"], ctx["epoch"], ctx["seq"], len(ctx["body"]),
            [3], [0], b"",
        )

    @staticmethod
    def _payload_length_lie(
        rng: random.Random, frame: bytes, ctx: dict
    ) -> bytes:
        return encode_frame(
            ctx["template_id"], ctx["epoch"], ctx["seq"], len(ctx["body"]),
            [2], [6], b"zz",
        )

    @staticmethod
    def _payload_garbage(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        """Structurally valid frame splicing random bytes into the
        mirror — exercises parsing of a corrupted reconstruction."""
        body = ctx["body"]
        width = min(rng.randint(1, 32), len(body))
        offset = rng.randrange(len(body) - width + 1)
        junk = bytes(rng.getrandbits(8) for _ in range(width))
        return encode_frame(
            ctx["template_id"], ctx["epoch"], ctx["seq"], len(body),
            [offset], [width], junk,
        )

    # -- state lies ----------------------------------------------------
    @staticmethod
    def _stale_epoch(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return _patch_u32(frame, _F_EPOCH, max(0, ctx["epoch"] - 1))

    @staticmethod
    def _future_epoch(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return _patch_u32(frame, _F_EPOCH, ctx["epoch"] + rng.randint(1, 5))

    @staticmethod
    def _sequence_gap(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        lie = rng.choice([0, ctx["seq"] + rng.randint(1, 10)])
        return _patch_u32(frame, _F_SEQ, lie)

    @staticmethod
    def _doc_len_lie(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        doc_len = len(ctx["body"])
        lie = rng.choice([0, doc_len - 1, doc_len + 1, doc_len * 2, 1 << 40])
        return _patch_u64(frame, _F_DOC_LEN, lie)

    @staticmethod
    def _unknown_template(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return _patch_u64(frame, _F_TEMPLATE, ctx["template_id"] + 1000)

    @staticmethod
    def _pure_garbage(rng: random.Random, frame: bytes, ctx: dict) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 256)))


class HTTPFuzzer:
    """Wraps :class:`WireFuzzer` bodies in (possibly broken) framing."""

    FRAMINGS = (
        "valid",
        "valid",  # weighted: most cases exercise body parsing, not framing
        "chunked",
        "lying_short",
        "lying_long",
        "chunk_truncated",
        "chunk_bad_size",
        "garbage_request_line",
        "header_bomb",
        "oversize_declared",
    )

    def __init__(self, wire_fuzzer: WireFuzzer) -> None:
        self.wires = wire_fuzzer
        self.limits = wire_fuzzer.limits
        self._rng = wire_fuzzer._rng

    def next_case(self) -> Tuple[bytes, str]:
        """One raw request byte-string plus a ``framing/mutator`` label."""
        rng = self._rng
        body, mutator = self.wires.next_case()
        framing = rng.choice(self.FRAMINGS)
        raw = getattr(self, "_frame_" + framing)(rng, body)
        return raw, f"{framing}/{mutator}"

    @staticmethod
    def _head(length: int) -> bytes:
        return (
            b"POST / HTTP/1.1\r\nContent-Type: text/xml\r\n"
            b"Content-Length: %d\r\n\r\n" % length
        )

    def _frame_valid(self, rng: random.Random, body: bytes) -> bytes:
        return self._head(len(body)) + body

    def _frame_chunked(self, rng: random.Random, body: bytes) -> bytes:
        out = [
            b"POST / HTTP/1.1\r\nContent-Type: text/xml\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        ]
        pos = 0
        while pos < len(body):
            size = min(len(body) - pos, rng.randint(1, 512))
            out.append(b"%x\r\n" % size + body[pos : pos + size] + b"\r\n")
            pos += size
        out.append(b"0\r\n\r\n")
        return b"".join(out)

    def _frame_lying_short(self, rng: random.Random, body: bytes) -> bytes:
        """Declare more bytes than are sent (EOF mid-body)."""
        return self._head(len(body) + rng.randint(1, 512)) + body

    def _frame_lying_long(self, rng: random.Random, body: bytes) -> bytes:
        """Declare fewer bytes than are sent (tail parsed as garbage)."""
        declared = rng.randrange(len(body)) if body else 0
        return self._head(declared) + body

    def _frame_chunk_truncated(self, rng: random.Random, body: bytes) -> bytes:
        """Chunked framing cut at a chunk boundary or mid-chunk."""
        whole = self._frame_chunked(rng, body)
        header_end = whole.index(b"\r\n\r\n") + 4
        cut = rng.randrange(header_end, len(whole))
        return whole[:cut]

    def _frame_chunk_bad_size(self, rng: random.Random, body: bytes) -> bytes:
        bad = rng.choice([b"ZZZ", b"-5", b"1x", b""])
        return (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            + bad
            + b"\r\n"
            + body[:16]
        )

    def _frame_garbage_request_line(
        self, rng: random.Random, body: bytes
    ) -> bytes:
        line = bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 64)))
        return line.replace(b"\r", b"?").replace(b"\n", b"?") + b"\r\n\r\n"

    def _frame_header_bomb(self, rng: random.Random, body: bytes) -> bytes:
        filler = b"X-Junk: " + b"j" * 1024 + b"\r\n"
        count = self.limits.max_header_bytes // len(filler) + 2
        return (
            b"POST / HTTP/1.1\r\n" + filler * count
            + b"Content-Length: 0\r\n\r\n"
        )

    def _frame_oversize_declared(self, rng: random.Random, body: bytes) -> bytes:
        declared = self.limits.max_body_bytes + rng.randint(1, 1 << 16)
        return self._head(declared) + body[:64]


# ----------------------------------------------------------------------
# Reports and drivers
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Aggregated result of one fuzz run (one seed)."""

    seed: int
    mode: str = "service"
    iterations: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    mutators: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(self, outcome: str, mutator: str) -> None:
        self.iterations += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.mutators[mutator] = self.mutators.get(mutator, 0) + 1

    def violate(self, description: str) -> None:
        self.violations.append(f"[seed={self.seed}] {description}")

    def summary(self) -> str:
        mix = ", ".join(
            f"{name}={count}" for name, count in sorted(self.outcomes.items())
        )
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.mode} fuzz: {self.iterations} cases (seed {self.seed}) "
            f"[{mix}] -> {verdict}"
        )


def _classify_response(response: object) -> str:
    """``ok``/``fault`` for a parseable envelope; raises otherwise."""
    if not isinstance(response, (bytes, bytearray)) or not response:
        raise ValueError(f"non-bytes response: {type(response).__name__}")
    fault = SOAPFault.from_xml(bytes(response))
    return "fault" if fault is not None else "ok"


def _response_values(response: bytes) -> list:
    """Decoded ``(name, value)`` pairs of a non-fault response body.

    The probe identity check: the checksum handler folds every decoded
    request value into its answer, so comparing this against the
    calibration baseline detects sessions that silently decode wrong
    values, not only sessions that fault."""
    from repro.server.parser import SOAPRequestParser

    message = SOAPRequestParser().parse(bytes(response)).message
    return [(p.name, p.value) for p in message.params]


def fuzz_service(
    service: Optional[SOAPService] = None,
    corpus: Optional[Sequence[bytes]] = None,
    *,
    iterations: int = 2000,
    seed: int = 0,
    probe_every: int = 100,
) -> FuzzReport:
    """Drive mutated wires through ``service.handle``; see module doc.

    Every *probe_every* cases (and once at the end) a pristine corpus
    wire is replayed and must get a non-fault response — garbage must
    never poison the session for the next legitimate caller.
    """
    service = service if service is not None else build_fuzz_service()
    wires = list(corpus) if corpus is not None else default_corpus()
    fuzzer = WireFuzzer(wires, seed, limits=service.limits)
    report = FuzzReport(seed=seed, mode="service")
    counter = (
        service.obs.metrics.counter(
            "repro_fuzz_cases_total",
            "Fuzz cases by driver mode and outcome",
            ("mode", "outcome"),
        )
        if service.obs.metrics is not None
        else None
    )

    # Calibrate the probe set: corpus wires the service answers
    # without a fault when pristine, with the checksum answer each one
    # must keep producing for the rest of the run.  There must be at
    # least one, otherwise the "recovers after garbage" invariant is
    # vacuous.
    probes: List[bytes] = []
    baselines: List[list] = []
    for wire in fuzzer.corpus:
        response = service.handle(wire)
        if _classify_response(response) == "ok":
            probes.append(wire)
            baselines.append(_response_values(bytes(response)))
    if not probes:
        report.violate("no corpus wire gets a non-fault response pristine")
        return report

    def _probe(case_no: int) -> None:
        index = (case_no // max(1, probe_every)) % len(probes)
        try:
            response = service.handle(probes[index])
            outcome = _classify_response(response)
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            report.violate(f"probe after case {case_no} raised {exc!r}")
            return
        if outcome != "ok":
            report.violate(
                f"probe after case {case_no} faulted: session state poisoned"
            )
        elif _response_values(bytes(response)) != baselines[index]:
            # The checksum handler folds every decoded request value
            # into the answer: a different answer means garbage made a
            # later pristine request *decode differently* — values
            # poisoned without a fault, the worst skip-scan failure.
            report.violate(
                f"probe after case {case_no} returned a different value "
                "checksum: decoded state poisoned"
            )

    for case_no in range(iterations):
        wire, mutator = fuzzer.next_case()
        try:
            response = service.handle(wire)
            outcome = _classify_response(response)
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            report.violate(
                f"case {case_no} ({mutator}, {len(wire)}B) escaped handle(): "
                f"{type(exc).__name__}: {exc}"
            )
            outcome = "crash"
        report.record(outcome, mutator)
        if counter is not None:
            counter.inc(mode="service", outcome=outcome)
        if probe_every and (case_no + 1) % probe_every == 0:
            _probe(case_no)
    _probe(iterations)
    return report


def _one_exchange(
    host: str, port: int, raw: bytes, timeout: float
) -> Tuple[str, bytes]:
    """Send *raw*, half-close, read to EOF.  ``(disposition, bytes)``."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        try:
            sock.sendall(raw)
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            # The server may reject and close while we are still
            # writing (e.g. oversized framing) — whatever it answered
            # before the reset is still on our receive queue.
            pass
        chunks: List[bytes] = []
        while True:
            try:
                data = sock.recv(65536)
            except socket.timeout:
                return "hang", b"".join(chunks)
            except OSError:
                break
            if not data:
                break
            chunks.append(data)
    return "closed", b"".join(chunks)


def fuzz_http(
    service: Optional[SOAPService] = None,
    corpus: Optional[Sequence[bytes]] = None,
    *,
    iterations: int = 200,
    seed: int = 0,
    host: str = "127.0.0.1",
    timeout: float = 10.0,
) -> FuzzReport:
    """Fuzz a live :class:`HTTPSoapServer` over real sockets.

    One fresh connection per case (half-closed after sending, so the
    server's EOF handling is on the hook every time).  Violations:
    read timeout (hang), empty response (silent drop), or a status
    outside :data:`ALLOWED_HTTP_STATUSES`.
    """
    service = service if service is not None else build_fuzz_service()
    wires = list(corpus) if corpus is not None else default_corpus()
    fuzzer = HTTPFuzzer(WireFuzzer(wires, seed, limits=service.limits))
    report = FuzzReport(seed=seed, mode="http")
    counter = (
        service.obs.metrics.counter(
            "repro_fuzz_cases_total",
            "Fuzz cases by driver mode and outcome",
            ("mode", "outcome"),
        )
        if service.obs.metrics is not None
        else None
    )
    with HTTPSoapServer(service, host) as server:
        for case_no in range(iterations):
            raw, label = fuzzer.next_case()
            disposition, payload = _one_exchange(host, server.port, raw, timeout)
            if disposition == "hang":
                report.violate(f"case {case_no} ({label}): server hung")
                outcome = "hang"
            elif not payload:
                report.violate(
                    f"case {case_no} ({label}): connection closed with no "
                    "response (silent drop)"
                )
                outcome = "silent_drop"
            else:
                status = _first_status(payload)
                if status is None:
                    report.violate(
                        f"case {case_no} ({label}): unparseable response "
                        f"{payload[:60]!r}"
                    )
                    outcome = "garbled"
                elif status not in ALLOWED_HTTP_STATUSES:
                    report.violate(
                        f"case {case_no} ({label}): unexpected status {status}"
                    )
                    outcome = f"http_{status}"
                else:
                    outcome = f"http_{status}"
            report.record(outcome, label)
            if counter is not None:
                counter.inc(mode="http", outcome=outcome)
    return report


#: Headers marking a request body as a binary delta frame.
_FRAME_HEADERS = {"x-repro-delta": "1", "x-repro-delta-frame": "1"}

#: Template id the delta fuzzers announce their mirrors under.
_FUZZ_TEMPLATE_ID = 71


def _announce_headers(template_id: int, epoch: int) -> Dict[str, str]:
    return {
        "x-repro-delta": "1",
        "x-repro-delta-template": str(template_id),
        "x-repro-delta-epoch": str(epoch),
    }


def fuzz_delta(
    service: Optional[SOAPService] = None,
    corpus: Optional[Sequence[bytes]] = None,
    *,
    iterations: int = 600,
    seed: int = 0,
    probe_every: int = 50,
) -> FuzzReport:
    """Drive mutated delta frames through ``service.handle_wire``.

    Each case announces a fresh full-XML baseline (new epoch), then
    submits one mutated frame against it.  Invariants: ``handle_wire``
    never raises, answers only 200 (with a parseable envelope) or 409
    (resync), and — the probe — a pristine zero-splice frame against a
    fresh announce still reconstructs and dispatches cleanly after any
    amount of garbage.
    """
    service = service if service is not None else build_fuzz_service()
    wires = list(corpus) if corpus is not None else default_corpus()
    rng = random.Random(seed)
    fuzzer = DeltaFrameFuzzer(rng, service.limits)
    report = FuzzReport(seed=seed, mode="delta")
    counter = (
        service.obs.metrics.counter(
            "repro_fuzz_cases_total",
            "Fuzz cases by driver mode and outcome",
            ("mode", "outcome"),
        )
        if service.obs.metrics is not None
        else None
    )
    session_id = "fuzz-delta"
    probes = [w for w in wires if _classify_response(service.handle(w)) == "ok"]
    if not probes:
        report.violate("no corpus wire gets a non-fault response pristine")
        return report
    epoch = 0

    def _announce(body: bytes) -> None:
        nonlocal epoch
        epoch += 1
        service.handle_wire(
            body, _announce_headers(_FUZZ_TEMPLATE_ID, epoch), session_id
        )

    def _probe(case_no: int) -> None:
        body = probes[(case_no // max(1, probe_every)) % len(probes)]
        _announce(body)
        frame = encode_frame(
            _FUZZ_TEMPLATE_ID, epoch, 1, len(body), [], [], b""
        )
        try:
            status, _extra, response = service.handle_wire(
                frame, _FRAME_HEADERS, session_id
            )
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            report.violate(f"probe after case {case_no} raised {exc!r}")
            return
        if status != 200 or _classify_response(response) != "ok":
            report.violate(
                f"probe after case {case_no} rejected (status {status}): "
                "delta state poisoned"
            )

    for case_no in range(iterations):
        body = rng.choice(probes)
        _announce(body)
        frame, mutator = fuzzer.next_case(_FUZZ_TEMPLATE_ID, epoch, 1, body)
        try:
            status, _extra, response = service.handle_wire(
                frame, _FRAME_HEADERS, session_id
            )
            if status == 200:
                outcome = _classify_response(response)
            elif status == 409:
                outcome = "resync"
            else:
                report.violate(
                    f"case {case_no} ({mutator}): unexpected status {status}"
                )
                outcome = f"status_{status}"
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            report.violate(
                f"case {case_no} ({mutator}, {len(frame)}B) escaped "
                f"handle_wire(): {type(exc).__name__}: {exc}"
            )
            outcome = "crash"
        report.record(outcome, mutator)
        if counter is not None:
            counter.inc(mode="delta", outcome=outcome)
        if probe_every and (case_no + 1) % probe_every == 0:
            _probe(case_no)
    _probe(iterations)
    return report


def fuzz_delta_http(
    service: Optional[SOAPService] = None,
    corpus: Optional[Sequence[bytes]] = None,
    *,
    iterations: int = 100,
    seed: int = 0,
    host: str = "127.0.0.1",
    timeout: float = 10.0,
) -> FuzzReport:
    """Fuzz delta frames against a live :class:`HTTPSoapServer`.

    One fresh connection per case carrying two pipelined POSTs: a
    well-formed full-XML announce, then a mutated binary frame.
    Violations: hang, silent drop, fewer than two responses, or any
    status outside :data:`ALLOWED_HTTP_STATUSES`.
    """
    service = service if service is not None else build_fuzz_service()
    wires = list(corpus) if corpus is not None else default_corpus()
    rng = random.Random(seed)
    fuzzer = DeltaFrameFuzzer(rng, service.limits)
    report = FuzzReport(seed=seed, mode="delta-http")
    counter = (
        service.obs.metrics.counter(
            "repro_fuzz_cases_total",
            "Fuzz cases by driver mode and outcome",
            ("mode", "outcome"),
        )
        if service.obs.metrics is not None
        else None
    )
    with HTTPSoapServer(service, host) as server:
        for case_no in range(iterations):
            body = rng.choice(wires)
            epoch = case_no + 1
            announce = (
                b"POST /soap HTTP/1.1\r\nContent-Type: text/xml\r\n"
                b"X-Repro-Delta: 1\r\n"
                b"X-Repro-Delta-Template: %d\r\n"
                b"X-Repro-Delta-Epoch: %d\r\n"
                b"Content-Length: %d\r\n\r\n"
                % (_FUZZ_TEMPLATE_ID, epoch, len(body))
            ) + body
            frame, mutator = fuzzer.next_case(
                _FUZZ_TEMPLATE_ID, epoch, 1, body
            )
            frame_req = (
                b"POST /soap HTTP/1.1\r\n"
                b"Content-Type: application/x-repro-delta\r\n"
                b"X-Repro-Delta: 1\r\nX-Repro-Delta-Frame: 1\r\n"
                b"Content-Length: %d\r\n\r\n" % len(frame)
            ) + frame
            disposition, payload = _one_exchange(
                host, server.port, announce + frame_req, timeout
            )
            if disposition == "hang":
                report.violate(f"case {case_no} ({mutator}): server hung")
                outcome = "hang"
            elif not payload:
                report.violate(
                    f"case {case_no} ({mutator}): connection closed with "
                    "no response (silent drop)"
                )
                outcome = "silent_drop"
            else:
                statuses = [
                    int(s)
                    for s in re.findall(rb"HTTP/1\.1 (\d{3})", payload)
                ]
                bad = [s for s in statuses if s not in ALLOWED_HTTP_STATUSES]
                if bad:
                    report.violate(
                        f"case {case_no} ({mutator}): unexpected "
                        f"status(es) {bad}"
                    )
                    outcome = "bad_status"
                elif len(statuses) < 2:
                    report.violate(
                        f"case {case_no} ({mutator}): only "
                        f"{len(statuses)} responses to 2 requests"
                    )
                    outcome = "missing_response"
                else:
                    outcome = "http_" + "_".join(str(s) for s in statuses)
            report.record(outcome, mutator)
            if counter is not None:
                counter.inc(mode="delta-http", outcome=outcome)
    return report


def _first_status(payload: bytes) -> Optional[int]:
    """Status code of the first HTTP response in *payload* (or None)."""
    line, _, _ = payload.partition(b"\r\n")
    parts = line.split()
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


# ----------------------------------------------------------------------
# CLI (the CI fuzz-smoke job)
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.hardening.fuzz",
        description="Seeded wire fuzzer for the hardened SOAP stack.",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="directory of seed wires (default: tests/golden, else synthetic)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--service-iterations", type=int, default=2000)
    parser.add_argument("--http-iterations", type=int, default=200)
    parser.add_argument("--delta-iterations", type=int, default=0)
    parser.add_argument("--delta-http-iterations", type=int, default=0)
    args = parser.parse_args(argv)

    corpus = load_corpus(args.corpus) if args.corpus else default_corpus()
    print(f"fuzz seed: {args.seed} ({len(corpus)} corpus wires)")

    reports = []
    if args.service_iterations > 0:
        reports.append(
            fuzz_service(
                corpus=corpus, iterations=args.service_iterations, seed=args.seed
            )
        )
        print(reports[-1].summary())
    if args.http_iterations > 0:
        reports.append(
            fuzz_http(
                corpus=corpus, iterations=args.http_iterations, seed=args.seed
            )
        )
        print(reports[-1].summary())
    if args.delta_iterations > 0:
        reports.append(
            fuzz_delta(
                corpus=corpus, iterations=args.delta_iterations, seed=args.seed
            )
        )
        print(reports[-1].summary())
    if args.delta_http_iterations > 0:
        reports.append(
            fuzz_delta_http(
                corpus=corpus,
                iterations=args.delta_http_iterations,
                seed=args.seed,
            )
        )
        print(reports[-1].summary())

    failed = [v for r in reports for v in r.violations]
    for violation in failed[:25]:
        print(f"VIOLATION: {violation}")
    if failed:
        print(f"FAILED with {len(failed)} violations (replay with --seed {args.seed})")
        return 1
    print("fault-not-crash invariant held for every case")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI job
    sys.exit(main())
