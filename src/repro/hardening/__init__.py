"""Server-side hardening: resource limits + a seeded wire fuzzer.

Two halves:

* :mod:`repro.hardening.limits` — the :class:`ResourceLimits` config
  enforced at the scanner, parser, and HTTP framing layers (imported
  eagerly; it has no dependencies beyond :mod:`repro.errors`, so the
  low-level xmlkit/transport modules can import it without cycles).
* :mod:`repro.hardening.fuzz` — a deterministic corpus-mutation fuzzer
  driving mutated wires through ``SOAPService.handle`` and a live
  ``HTTPSoapServer``, asserting the fault-not-crash invariant.  Loaded
  lazily because it imports the server stack, which itself imports
  this package's limits.
* :mod:`repro.hardening.overload` — admission control (concurrency /
  queue-depth / rate gates answering ``503 + Retry-After``) and the
  :class:`MemoryAccountant` byte ledger behind the tiered
  pressure-relief ladder (mirrors → seek tables → LRU sessions).
  Loaded lazily for the same reason as the fuzzer.
"""

from __future__ import annotations

from repro.hardening.limits import DEFAULT_LIMITS, UNLIMITED, ResourceLimits

__all__ = [
    "ResourceLimits",
    "DEFAULT_LIMITS",
    "UNLIMITED",
    "WireFuzzer",
    "HTTPFuzzer",
    "FuzzReport",
    "fuzz_service",
    "fuzz_http",
    "load_corpus",
    "build_fuzz_service",
    "OverloadPolicy",
    "AdmissionController",
    "MemoryAccountant",
]

_FUZZ_NAMES = frozenset(
    [
        "WireFuzzer",
        "HTTPFuzzer",
        "FuzzReport",
        "fuzz_service",
        "fuzz_http",
        "load_corpus",
        "build_fuzz_service",
    ]
)

_OVERLOAD_NAMES = frozenset(
    ["OverloadPolicy", "AdmissionController", "MemoryAccountant"]
)


def __getattr__(name: str):
    if name in _FUZZ_NAMES:
        from repro.hardening import fuzz

        return getattr(fuzz, name)
    if name in _OVERLOAD_NAMES:
        from repro.hardening import overload

        return getattr(overload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
