"""The logical SOAP message model.

A :class:`SOAPMessage` is what applications hand to a client stub: an
operation name in a service namespace plus an ordered list of typed
:class:`Parameter` values.  The **structure signature** — the key the
bSOAP template store uses — captures everything that determines the
serialized *layout* (operation, parameter names/types, array lengths)
while excluding the values themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import SchemaError
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import XSDType

__all__ = ["Parameter", "SOAPMessage", "structure_signature"]

ParamType = Union[XSDType, StructType, ArrayType]


def _value_length(ptype: ParamType, value: object) -> int:
    """Array length contribution of a parameter (0 for scalars)."""
    if isinstance(ptype, ArrayType):
        if isinstance(value, dict):
            # Struct-of-arrays form: {"x": ndarray, ...}
            lengths = {len(v) for v in value.values()}
            if len(lengths) != 1:
                raise SchemaError("struct-of-arrays columns have differing lengths")
            return lengths.pop()
        if isinstance(value, (str, bytes)):
            raise SchemaError("array parameter value may not be a plain string")
        try:
            return len(value)  # ndarray, list, tuple, tracked wrapper...
        except TypeError:
            raise SchemaError(
                f"array parameter value must be sized, got {type(value)!r}"
            ) from None
    return 0


@dataclass(slots=True)
class Parameter:
    """One named, typed call parameter.

    Array-of-struct values may be supplied either as a sequence of
    struct instances or — the HPC-friendly form — as a dict of NumPy
    columns keyed by field name (struct-of-arrays).
    """

    name: str
    ptype: ParamType
    value: object

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("parameter name must be non-empty")
        # Validate array values early so stubs fail fast.
        _value_length(self.ptype, self.value) if isinstance(
            self.ptype, ArrayType
        ) else None

    @property
    def length(self) -> int:
        """Array length (0 for scalar parameters)."""
        return _value_length(self.ptype, self.value)

    def type_label(self) -> str:
        """Stable textual label of the parameter type."""
        if isinstance(self.ptype, ArrayType):
            return self.ptype.type_label()
        if isinstance(self.ptype, StructType):
            inner = ",".join(f"{f.name}:{f.xsd_type.name}" for f in self.ptype.fields)
            return f"{self.ptype.name}{{{inner}}}"
        return self.ptype.name


@dataclass(slots=True)
class SOAPMessage:
    """An RPC request (or response) body: operation + parameters."""

    operation: str
    namespace: str
    params: Sequence[Parameter] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.operation:
            raise SchemaError("operation name must be non-empty")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate parameter names in message")

    def param(self, name: str) -> Parameter:
        for p in self.params:
            if p.name == name:
                return p
        raise SchemaError(f"message has no parameter {name!r}")


Signature = Tuple[str, str, Tuple[Tuple[str, str, int], ...]]


def structure_signature(message: SOAPMessage) -> Signature:
    """The template-store key: layout-determining structure only.

    Two messages with equal signatures serialize to templates with
    identical tag skeletons and DUT shapes; only field values (and
    value widths) may differ.
    """
    return (
        message.namespace,
        message.operation,
        tuple((p.name, p.type_label(), p.length) for p in message.params),
    )
