"""Multi-reference accessor support.

SOAP 1.1 section 5 lets a serializer emit a shared value once as an
independent element carrying ``id="ref-N"`` and refer to it from each
use site with ``href="#ref-N"``.  The paper notes gSOAP supports
multi-ref fully while bSOAP does not (footnote 3); accordingly the
gSOAP-like baseline here uses this table when enabled, and the bSOAP
serializer leaves it off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["MultiRefTable"]


class MultiRefTable:
    """Tracks aliased Python objects during one serialization pass.

    Identity (``id()``) based: two parameters referencing the same
    list/array object are multi-ref candidates; equal but distinct
    objects are not (matching gSOAP's graph-serialization semantics).
    """

    def __init__(self) -> None:
        self._ids: Dict[int, str] = {}
        self._emitted: set[str] = set()
        self._pinned: List[object] = []  # keep targets alive while tabled
        self._counter = 0

    def reference(self, obj: object) -> Tuple[str, bool]:
        """Return ``(ref_id, first_time)`` for *obj*.

        The first call for an object allocates ``ref-N`` and reports
        ``first_time=True`` (caller serializes the value and attaches
        ``id``); later calls report ``False`` (caller emits ``href``).
        """
        key = id(obj)
        ref = self._ids.get(key)
        if ref is None:
            self._counter += 1
            ref = f"ref-{self._counter}"
            self._ids[key] = ref
            self._pinned.append(obj)
            return ref, True
        return ref, False

    def seen(self, obj: object) -> Optional[str]:
        """Ref id if *obj* was referenced before, else ``None``."""
        return self._ids.get(id(obj))

    def mark_emitted(self, ref: str) -> None:
        """Record that the value for *ref* has been written."""
        self._emitted.add(ref)

    @property
    def dangling(self) -> List[str]:
        """Refs handed out but never emitted (must be empty at end)."""
        return [r for r in self._ids.values() if r not in self._emitted]

    def __len__(self) -> int:
        return len(self._ids)
