"""Envelope skeleton construction.

Every serializer in the repository wraps its payload in the same SOAP
1.1 skeleton::

    <?xml version="1.0" encoding="UTF-8"?>
    <SOAP-ENV:Envelope xmlns:SOAP-ENV="..." xmlns:SOAP-ENC="..."
                       xmlns:xsd="..." xmlns:xsi="..." xmlns:ns="SERVICE"
                       SOAP-ENV:encodingStyle="...">
      <SOAP-ENV:Body>
        <ns:OPERATION>
          ...parameters...
        </ns:OPERATION>
      </SOAP-ENV:Body>
    </SOAP-ENV:Envelope>

(with no inter-element pretty-printing whitespace — templates are
byte-exact).  :func:`envelope_layout` returns the pre-rendered prefix
and suffix byte strings for an operation so the hot serializers emit
them with two writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.soap.constants import (
    ENCODING_STYLE_ATTR,
    SERVICE_PREFIX,
    SOAP_ENV_PREFIX,
    STANDARD_NSDECLS,
)
from repro.xmlkit.escape import escape_attr
from repro.xmlkit.writer import XMLWriter

__all__ = ["EnvelopeLayout", "envelope_layout"]


@dataclass(frozen=True, slots=True)
class EnvelopeLayout:
    """Pre-rendered envelope skeleton for one (namespace, operation)."""

    prefix: bytes  # prolog .. <ns:OPERATION>
    suffix: bytes  # </ns:OPERATION> .. </SOAP-ENV:Envelope>
    operation_tag: str  # lexical tag of the operation element

    @property
    def overhead(self) -> int:
        """Envelope bytes independent of the payload."""
        return len(self.prefix) + len(self.suffix)


@lru_cache(maxsize=256)
def envelope_layout(namespace: str, operation: str) -> EnvelopeLayout:
    """Build (and cache) the skeleton for *operation* in *namespace*."""
    op_tag = f"{SERVICE_PREFIX}:{operation}"

    writer = XMLWriter()
    writer.prolog()
    nsdecls = dict(STANDARD_NSDECLS)
    nsdecls[SERVICE_PREFIX] = namespace
    attr_name, attr_value = ENCODING_STYLE_ATTR
    writer.start(f"{SOAP_ENV_PREFIX}:Envelope", {attr_name: attr_value}, nsdecls)
    writer.start(f"{SOAP_ENV_PREFIX}:Body")
    writer.start(op_tag)
    prefix = writer.getvalue()

    suffix = (
        f"</{op_tag}></{SOAP_ENV_PREFIX}:Body></{SOAP_ENV_PREFIX}:Envelope>"
    ).encode("ascii")
    # Sanity: namespace must have been escaped if needed.
    assert escape_attr(namespace.encode("utf-8")) in prefix
    return EnvelopeLayout(prefix=prefix, suffix=suffix, operation_tag=op_tag)
