"""SOAP 1.1 namespace constants and standard prefix bindings."""

from __future__ import annotations

from typing import Dict

__all__ = [
    "SOAP_ENV_URI",
    "SOAP_ENC_URI",
    "XSD_URI",
    "XSI_URI",
    "SOAP_ENV_PREFIX",
    "SOAP_ENC_PREFIX",
    "SERVICE_PREFIX",
    "STANDARD_NSDECLS",
    "ENCODING_STYLE_ATTR",
]

SOAP_ENV_URI = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP_ENC_URI = "http://schemas.xmlsoap.org/soap/encoding/"
XSD_URI = "http://www.w3.org/2001/XMLSchema"
XSI_URI = "http://www.w3.org/2001/XMLSchema-instance"

SOAP_ENV_PREFIX = "SOAP-ENV"
SOAP_ENC_PREFIX = "SOAP-ENC"
#: Prefix bound to the target service namespace in request bodies.
SERVICE_PREFIX = "ns"

#: Prefix → URI declarations emitted once on the Envelope element.
STANDARD_NSDECLS: Dict[str, str] = {
    SOAP_ENV_PREFIX: SOAP_ENV_URI,
    SOAP_ENC_PREFIX: SOAP_ENC_URI,
    "xsd": XSD_URI,
    "xsi": XSI_URI,
}

#: The SOAP 1.1 section-5 encoding-style declaration on the Envelope.
ENCODING_STYLE_ATTR = (SOAP_ENV_PREFIX + ":encodingStyle", SOAP_ENC_URI)
