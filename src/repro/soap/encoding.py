"""SOAP section-5 encoding helpers (arrays and ``xsi:type``)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SOAPError
from repro.schema.composite import ArrayType, StructType
from repro.schema.types import XSDType
from repro.soap.constants import SOAP_ENC_PREFIX

__all__ = [
    "array_type_attr",
    "xsi_type_attr",
    "array_open_attrs",
    "parse_array_type_attr",
]


def array_type_attr(array: ArrayType, length: int) -> Tuple[str, str]:
    """The ``SOAP-ENC:arrayType="T[N]"`` attribute for an array element."""
    return (f"{SOAP_ENC_PREFIX}:arrayType", array.soap_array_type(length))


def xsi_type_attr(xsd_type: XSDType) -> Tuple[str, str]:
    """The ``xsi:type="xsd:T"`` attribute for a typed scalar element."""
    return ("xsi:type", xsd_type.xsi_type)


def array_open_attrs(array: ArrayType, length: int) -> Dict[str, str]:
    """All attributes for an array's container element."""
    name, value = array_type_attr(array, length)
    return {"xsi:type": f"{SOAP_ENC_PREFIX}:Array", name: value}


def parse_array_type_attr(value: str) -> Tuple[str, Optional[int]]:
    """Parse ``"xsd:double[100]"`` → ``("xsd:double", 100)``.

    A missing or empty length (``T[]``) yields ``None`` — SOAP permits
    open-ended arrays whose size comes from the item count.
    """
    bracket = value.find("[")
    if bracket < 0 or not value.endswith("]"):
        raise SOAPError(f"malformed arrayType value {value!r}")
    type_part = value[:bracket]
    size_part = value[bracket + 1 : -1].strip()
    if not type_part:
        raise SOAPError(f"malformed arrayType value {value!r}")
    if not size_part:
        return type_part, None
    try:
        size = int(size_part)
    except ValueError:
        raise SOAPError(f"malformed arrayType size in {value!r}") from None
    if size < 0:
        raise SOAPError(f"negative arrayType size in {value!r}")
    return type_part, size
