"""SOAP 1.1 Faults."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SOAPError, SOAPFaultError
from repro.soap.constants import SOAP_ENV_PREFIX, STANDARD_NSDECLS
from repro.xmlkit.scanner import Characters, EndElement, StartElement, XMLScanner
from repro.xmlkit.writer import XMLWriter

__all__ = ["SOAPFault"]


@dataclass(frozen=True, slots=True)
class SOAPFault:
    """A SOAP 1.1 ``Fault`` element's standard fields."""

    faultcode: str
    faultstring: str
    detail: str = ""

    @classmethod
    def client(cls, message: str, detail: str = "") -> "SOAPFault":
        return cls(f"{SOAP_ENV_PREFIX}:Client", message, detail)

    @classmethod
    def server(cls, message: str, detail: str = "") -> "SOAPFault":
        return cls(f"{SOAP_ENV_PREFIX}:Server", message, detail)

    def to_xml(self) -> bytes:
        """Serialize a complete fault envelope."""
        writer = XMLWriter()
        writer.prolog()
        writer.start(f"{SOAP_ENV_PREFIX}:Envelope", nsdecls=STANDARD_NSDECLS)
        writer.start(f"{SOAP_ENV_PREFIX}:Body")
        writer.start(f"{SOAP_ENV_PREFIX}:Fault")
        writer.element("faultcode", self.faultcode)
        writer.element("faultstring", self.faultstring)
        if self.detail:
            writer.element("detail", self.detail)
        writer.close()
        return writer.getvalue()

    @classmethod
    def from_xml(cls, data: bytes) -> Optional["SOAPFault"]:
        """Extract a fault from an envelope, or ``None`` if not a fault."""
        stack: List[str] = []
        fields = {"faultcode": "", "faultstring": "", "detail": ""}
        in_fault = False
        found = False
        current: Optional[str] = None
        for event in XMLScanner(data):
            if isinstance(event, StartElement):
                stack.append(event.name)
                local = event.name.rsplit(":", 1)[-1]
                if local == "Fault" and len(stack) >= 2:
                    in_fault = True
                    found = True
                elif in_fault and local in fields:
                    current = local
            elif isinstance(event, Characters):
                if current is not None:
                    fields[current] += event.text
            elif isinstance(event, EndElement):
                local = event.name.rsplit(":", 1)[-1]
                if local in fields:
                    current = None
                if local == "Fault":
                    in_fault = False
                stack.pop()
        if not found:
            return None
        if not fields["faultcode"]:
            raise SOAPError("Fault element missing faultcode")
        return cls(fields["faultcode"], fields["faultstring"], fields["detail"])

    def raise_(self) -> None:
        """Raise this fault as a :class:`SOAPFaultError`."""
        raise SOAPFaultError(self.faultcode, self.faultstring, self.detail)
