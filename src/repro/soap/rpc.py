"""SOAP-RPC conventions.

Request bodies carry an element named after the operation; responses
carry ``<opResponse>`` with a ``<return>``-style result parameter.
These helpers keep the naming conventions in one place so the client
stubs, the server dispatcher, and WSDL generation agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.schema.composite import ArrayType, StructType
from repro.schema.types import XSDType
from repro.soap.message import Parameter, SOAPMessage

__all__ = ["RPCRequest", "RPCResponse", "response_message", "RESPONSE_SUFFIX"]

#: Conventional suffix for RPC response element names.
RESPONSE_SUFFIX = "Response"


@dataclass(slots=True)
class RPCRequest:
    """A typed RPC invocation bound to a service endpoint."""

    endpoint: str
    message: SOAPMessage
    soap_action: str = ""

    @property
    def operation(self) -> str:
        return self.message.operation

    def action_header(self) -> str:
        """Value for the HTTP ``SOAPAction`` header (quoted per SOAP 1.1)."""
        action = self.soap_action or f"{self.message.namespace}#{self.operation}"
        return f'"{action}"'


@dataclass(slots=True)
class RPCResponse:
    """A decoded RPC response: result values keyed by part name."""

    operation: str
    values: dict = field(default_factory=dict)
    fault: object = None

    @property
    def ok(self) -> bool:
        return self.fault is None

    def result(self, name: str = "return"):
        return self.values[name]


def response_message(
    request_operation: str,
    namespace: str,
    result_name: str,
    result_type: XSDType | StructType | ArrayType,
    result_value: object,
    extra_params: Sequence[Parameter] = (),
) -> SOAPMessage:
    """Build the response message for an operation.

    Servers reuse the same serialization machinery as clients — which
    is how the paper envisions differential serialization helping
    "heavily-used servers" whose response schema never changes.
    """
    params = [Parameter(result_name, result_type, result_value), *extra_params]
    return SOAPMessage(
        operation=request_operation + RESPONSE_SUFFIX,
        namespace=namespace,
        params=params,
    )
