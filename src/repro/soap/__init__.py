"""SOAP 1.1 protocol layer: envelopes, RPC encoding, multi-ref, faults.

This package defines the *logical* message model
(:class:`~repro.soap.message.SOAPMessage` — an operation plus typed
parameters) and the envelope conventions every serializer in the
repository shares, so the bSOAP templates, the gSOAP-like baseline and
the XSOAP-like baseline all emit interoperable documents.
"""

from repro.soap.constants import (
    SOAP_ENC_URI,
    SOAP_ENV_URI,
    STANDARD_NSDECLS,
    XSD_URI,
    XSI_URI,
)
from repro.soap.message import Parameter, SOAPMessage, structure_signature
from repro.soap.envelope import EnvelopeLayout, envelope_layout
from repro.soap.encoding import array_type_attr, xsi_type_attr
from repro.soap.fault import SOAPFault
from repro.soap.multiref import MultiRefTable
from repro.soap.rpc import RPCRequest, RPCResponse, response_message

__all__ = [
    "SOAP_ENV_URI",
    "SOAP_ENC_URI",
    "XSD_URI",
    "XSI_URI",
    "STANDARD_NSDECLS",
    "Parameter",
    "SOAPMessage",
    "structure_signature",
    "EnvelopeLayout",
    "envelope_layout",
    "array_type_attr",
    "xsi_type_attr",
    "SOAPFault",
    "MultiRefTable",
    "RPCRequest",
    "RPCResponse",
    "response_message",
]
