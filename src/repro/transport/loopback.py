"""In-process sinks: Null (discard), Memcpy (drain copy), Collect, Latest.

These isolate serialization cost from network cost.  ``MemcpySink``
models what a kernel ``send()`` does to the caller — one copy of every
byte — without syscall or scheduling noise; ``NullSink`` measures pure
preparation; ``CollectSink`` keeps the bytes for tests; ``LatestSink``
keeps only the most recent message (bounded — for long-lived server
sessions).
"""

from __future__ import annotations

from typing import List, Optional

from repro.transport.base import ViewStream

__all__ = ["NullSink", "MemcpySink", "CollectSink", "LatestSink"]


class NullSink:
    """Counts and discards.  Zero per-byte cost."""

    def __init__(self) -> None:
        self.messages = 0
        self.bytes_total = 0

    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        sent = 0
        for view in views:
            sent += len(view)
        self.messages += 1
        self.bytes_total += sent
        return sent

    def close(self) -> None:
        pass


class MemcpySink:
    """Copies every segment into a reusable drain buffer.

    The drain is grown geometrically and reused across messages so the
    steady-state cost is exactly one memcpy per byte — the user-space
    analogue of the kernel socket-buffer copy.
    """

    def __init__(self, initial_capacity: int = 1 << 16) -> None:
        self._drain = bytearray(initial_capacity)
        self.messages = 0
        self.bytes_total = 0
        self.last_size = 0

    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        drain = self._drain
        pos = 0
        for view in views:
            n = len(view)
            end = pos + n
            if end > len(drain):
                grown = bytearray(max(end, 2 * len(drain)))
                grown[:pos] = drain[:pos]
                self._drain = drain = grown
            drain[pos:end] = view
            pos = end
        self.messages += 1
        self.bytes_total += pos
        self.last_size = pos
        return pos

    def last_message(self) -> bytes:
        """Copy of the most recent message (tests)."""
        return bytes(self._drain[: self.last_size])

    def close(self) -> None:
        pass


class CollectSink:
    """Keeps every message verbatim (tests and round-trip checks)."""

    def __init__(self) -> None:
        self.messages: List[bytes] = []

    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        data = b"".join(bytes(v) for v in views)
        self.messages.append(data)
        return len(data)

    @property
    def last(self) -> bytes:
        return self.messages[-1]

    def close(self) -> None:
        pass


class LatestSink:
    """Keeps only the most recent message — as its raw segment views.

    The bounded sibling of :class:`CollectSink`: a server session
    serializing responses for the lifetime of a connection must not
    retain every response it ever sent, only the one the front end is
    about to write.

    The message is retained as the *view list* the serializer emitted,
    not a flattened copy: a vectored front end reads :meth:`views` and
    hands the chunk views straight to ``socket.sendmsg``, so a
    steady-state structural resend never copies payload bytes.  The
    views alias the responder's live chunk buffers, which the next
    request on the same session rewrites in place — they are only
    valid until that session handles another request (front ends
    finish writing response *i* before dispatching request *i+1* on a
    connection, which is exactly that window).  :attr:`last` joins on
    demand for callers that want contiguous bytes.
    """

    def __init__(self) -> None:
        self._views: Optional[List[memoryview | bytes]] = None
        self._total = 0
        self.messages_sent = 0
        self.bytes_total = 0

    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        # Materializing a lazy stream drives the interleaved rewrite;
        # yielded chunk views are final once the iterator is exhausted.
        parts: List[memoryview | bytes] = [v for v in views if len(v)]
        total = sum(len(v) for v in parts)
        self._views = parts
        self._total = total
        self.messages_sent += 1
        self.bytes_total += total
        return total

    @property
    def last(self) -> bytes:
        if self._views is None:
            raise LookupError("no message sent yet")
        return b"".join(bytes(v) for v in self._views)

    def views(self) -> List[memoryview | bytes]:
        """The retained message's segment views (no copy)."""
        if self._views is None:
            raise LookupError("no message sent yet")
        return self._views

    def last_bytes(self) -> int:
        """Size of the retained message (0 before the first send)."""
        return self._total

    def close(self) -> None:
        pass
