"""TCP transport with the paper's socket configuration.

The performance study (§4) sets ``SO_KEEPALIVE``, ``TCP_NODELAY`` and
32 KiB send/receive buffers, and sends to a dummy server over a fast
link.  This transport reproduces that: a persistent connection, the
same options, and scatter-gather ``sendmsg`` so a multi-chunk message
goes out without coalescing copies.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence, Tuple

from repro.buffers.iovec import IOV_MAX
from repro.errors import TransportError
from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.transport.base import ViewStream

__all__ = ["TCPTransport", "PAPER_SOCKET_OPTIONS", "apply_paper_options"]

#: (level, option, value) triples from the paper's §4 test setup.
PAPER_SOCKET_OPTIONS: Tuple[Tuple[int, int, int], ...] = (
    (socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1),
    (socket.IPPROTO_TCP, socket.TCP_NODELAY, 1),
    (socket.SOL_SOCKET, socket.SO_SNDBUF, 32768),
    (socket.SOL_SOCKET, socket.SO_RCVBUF, 32768),
)


def apply_paper_options(sock: socket.socket) -> None:
    """Apply the paper's socket options to *sock*."""
    for level, option, value in PAPER_SOCKET_OPTIONS:
        sock.setsockopt(level, option, value)


class TCPTransport:
    """A persistent client connection carrying raw message bytes.

    Parameters
    ----------
    host, port:
        Peer address (usually a :class:`DummyServer`).
    gather:
        Use ``sendmsg`` with iovec batching (default).  When False,
        falls back to ``sendall`` per segment — the ablation bench
        compares the two.
    limits:
        :class:`~repro.hardening.ResourceLimits` bounding how many
        response bytes :meth:`recv_http_response` buffers (its
        ``recv_cap``), replacing the old hardcoded ``1 << 24`` so
        client and server agree on one configurable bound.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        gather: bool = True,
        connect_timeout: float = 5.0,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self.gather = gather
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        self._sock.settimeout(30.0)
        apply_paper_options(self._sock)
        self.messages = 0
        self.bytes_total = 0
        # Bytes received past the end of the last parsed response.
        # With HTTP pipelining several responses can land in one
        # recv(); the surplus belongs to the next call, not the floor.
        self._recv_buffer = b""

    # ------------------------------------------------------------------
    def _sendmsg_all(self, batch: Sequence[memoryview | bytes]) -> int:
        """sendmsg with partial-send recovery; returns bytes sent."""
        sock = self._sock
        total = sum(len(b) for b in batch)
        sent = 0
        pending: List[memoryview | bytes] = list(batch)
        while pending:
            try:
                n = sock.sendmsg(pending)
            except OSError as exc:
                raise TransportError(f"sendmsg failed: {exc}") from exc
            sent += n
            if sent >= total:
                break
            # Drop fully-sent segments, trim the partial one.
            while pending and n >= len(pending[0]):
                n -= len(pending[0])
                pending.pop(0)
            if pending and n:
                head = pending[0]
                pending[0] = memoryview(head)[n:]
        return total

    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        sent = 0
        if self.gather:
            batch: List[memoryview | bytes] = []
            lazy = not isinstance(views, (list, tuple))
            for view in views:
                if len(view) == 0:
                    continue
                batch.append(view)
                # A lazy stream may reuse buffers after the yield, so
                # each segment must hit the socket before advancing.
                if lazy or len(batch) >= IOV_MAX:
                    sent += self._sendmsg_all(batch)
                    batch = []
            if batch:
                sent += self._sendmsg_all(batch)
        else:
            for view in views:
                try:
                    self._sock.sendall(view)
                except OSError as exc:
                    raise TransportError(f"sendall failed: {exc}") from exc
                sent += len(view)
        self.messages += 1
        self.bytes_total += sent
        return sent

    # ------------------------------------------------------------------
    def recv_http_response(self, limit: Optional[int] = None):
        """Read one complete HTTP response from the connection.

        Returns ``(status, headers, body)``.  Used by the RPC helpers
        for request/response round trips against a real service.
        *limit* overrides the configured ``limits.recv_cap`` for this
        one read (``None`` uses the transport's limits).

        Only :class:`IncompleteHTTPError` triggers another ``recv`` —
        a genuinely malformed response (bad status line, bad chunk
        size...) raises :class:`HTTPFramingError` immediately instead
        of buffering toward the size limit.
        """
        from repro.errors import IncompleteHTTPError
        from repro.transport.http import parse_http_response

        if limit is None:
            limit = self.limits.recv_cap
        buffered = self._recv_buffer
        while True:
            try:
                status, headers, body, consumed = parse_http_response(buffered)
            except IncompleteHTTPError:
                pass
            else:
                if consumed > limit:
                    # The cap applies to *this response's* size, not
                    # the raw buffer: pipelined surplus behind it is
                    # the next response's business.
                    self._recv_buffer = b""
                    raise TransportError(
                        f"response of {consumed} bytes exceeds size limit {limit}"
                    )
                # Keep the surplus: pipelined responses arrive
                # back-to-back, and bytes past this response belong to
                # the next one.
                self._recv_buffer = buffered[consumed:]
                return status, headers, body
            if len(buffered) >= limit:
                break
            try:
                data = self._sock.recv(65536)
            except OSError as exc:
                self._recv_buffer = b""
                raise TransportError(f"recv failed: {exc}") from exc
            if not data:
                self._recv_buffer = b""
                raise TransportError("connection closed mid-response")
            buffered += data
        self._recv_buffer = b""
        raise TransportError("response exceeds size limit")

    def recv_until_close(self, limit: int = 1 << 20) -> bytes:
        """Read a response until EOF (request/response tests)."""
        parts: List[bytes] = []
        remaining = limit
        while remaining > 0:
            try:
                data = self._sock.recv(min(65536, remaining))
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not data:
                break
            parts.append(data)
            remaining -= len(data)
        return b"".join(parts)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "TCPTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
