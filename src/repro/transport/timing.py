"""Send-Time measurement.

    "We isolate and measure the Send Time in the client by starting a
    timer before preparing the message for sending, and stopping the
    timer right after the final send() system call on the socket."
    (§4)

:class:`SendTimer` wraps exactly that window; the bench harness in
:mod:`repro.bench.runner` builds repetition/statistics on top.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

__all__ = ["SendTimer"]


class SendTimer:
    """Accumulates per-call wall-clock durations (perf_counter_ns)."""

    def __init__(self) -> None:
        self.samples_ns: List[int] = []
        self._start: Optional[int] = None

    def __enter__(self) -> "SendTimer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.samples_ns.append(time.perf_counter_ns() - self._start)
        self._start = None

    def time_call(self, fn: Callable[[], object]) -> object:
        """Time one call of *fn*."""
        with self:
            return fn()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.samples_ns)

    @property
    def mean_ms(self) -> float:
        if not self.samples_ns:
            return 0.0
        return sum(self.samples_ns) / len(self.samples_ns) / 1e6

    @property
    def min_ms(self) -> float:
        return min(self.samples_ns) / 1e6 if self.samples_ns else 0.0

    @property
    def max_ms(self) -> float:
        return max(self.samples_ns) / 1e6 if self.samples_ns else 0.0

    def reset(self) -> None:
        self.samples_ns.clear()
        self._start = None
