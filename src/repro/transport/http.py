"""SOAP-over-HTTP framing.

Two modes, mirroring the paper's discussion of HTTP 1.0 vs 1.1:

``"content-length"`` (HTTP/1.0 semantics)
    One ``Content-Length`` header; the payload size must be known up
    front, so the whole message must exist before the first byte goes
    out.

``"chunked"`` (HTTP/1.1)
    ``Transfer-Encoding: chunked``; each buffer segment is framed as a
    hex-sized HTTP chunk and can be transmitted as soon as it is
    serialized — the streaming behaviour chunk overlaying relies on.

The framer wraps any inner :class:`~repro.transport.base.Transport`
(TCP for real sends, sinks for tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import (
    HTTPFramingError,
    IncompleteHTTPError,
    RequestTooLargeError,
)
from repro.hardening.limits import ResourceLimits
from repro.transport.base import Transport, ViewStream

__all__ = ["HTTPTransport", "parse_http_request", "decode_chunked", "HTTPRequest"]

_CRLF = b"\r\n"


class HTTPTransport:
    """Wraps a byte transport with SOAP HTTP-POST framing."""

    def __init__(
        self,
        inner: Transport,
        *,
        host: str = "localhost",
        path: str = "/soap",
        mode: str = "chunked",
        soap_action: str = '""',
        user_agent: str = "bSOAP-repro/1.0",
        delta_offer: bool = False,
        obs=None,
    ) -> None:
        if mode not in ("chunked", "content-length"):
            raise HTTPFramingError(f"unknown HTTP mode {mode!r}")
        self.inner = inner
        self.mode = mode
        self.host = host
        self.path = path
        self.soap_action = soap_action
        self.user_agent = user_agent
        #: When True every request offers the delta-frame protocol
        #: (``X-Repro-Delta: 1``); see ``docs/wire_protocol.md``.
        self.delta_offer = delta_offer
        # Armed by the client's DeltaEncoder just before a full send;
        # consumed (and cleared) by the next message's header block.
        self._announce: Optional[Tuple[int, int]] = None
        # Wire-level counters: framing overhead is invisible to the
        # payload-level SendReport, so it is counted here.
        metrics = getattr(obs, "metrics", None)
        if metrics is not None:
            self._messages_counter = metrics.counter(
                "repro_http_messages_total",
                "HTTP requests framed, by framing mode",
                ("mode",),
            )
            self._wire_bytes_counter = metrics.counter(
                "repro_http_wire_bytes_total",
                "Bytes written including HTTP headers and chunk framing",
                ("mode",),
            )
        else:
            self._messages_counter = None
            self._wire_bytes_counter = None

    # ------------------------------------------------------------------
    # delta-frame extensions (consumed by repro.wire.client)
    # ------------------------------------------------------------------
    def set_delta_announce(self, template_id: int, epoch: int) -> None:
        """Arm baseline-announce headers for the next full-XML send."""
        self._announce = (template_id, epoch)

    def send_delta_frame(self, frame: bytes) -> int:
        """POST one binary delta frame (always identity-framed)."""
        lines = [
            f"POST {self.path} HTTP/1.1",
            f"Host: {self.host}",
            f"User-Agent: {self.user_agent}",
            "Content-Type: application/x-repro-delta",
            f"SOAPAction: {self.soap_action}",
            "X-Repro-Delta: 1",
            "X-Repro-Delta-Frame: 1",
            f"Content-Length: {len(frame)}",
        ]
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        self.inner.send_message([head, frame])
        self._payload_sent = len(frame)
        if self._messages_counter is not None:
            self._messages_counter.inc(1, mode="delta-frame")
            self._wire_bytes_counter.inc(
                len(head) + len(frame), mode="delta-frame"
            )
        return len(frame)

    def _delta_lines(self) -> List[str]:
        lines = []
        if self.delta_offer:
            lines.append("X-Repro-Delta: 1")
        if self._announce is not None:
            template_id, epoch = self._announce
            self._announce = None
            lines.append(f"X-Repro-Delta-Template: {template_id}")
            lines.append(f"X-Repro-Delta-Epoch: {epoch}")
        return lines

    # ------------------------------------------------------------------
    def _headers(self, content_length: Optional[int]) -> bytes:
        lines = [
            f"POST {self.path} HTTP/1.1" if self.mode == "chunked"
            else f"POST {self.path} HTTP/1.0",
            f"Host: {self.host}",
            f"User-Agent: {self.user_agent}",
            'Content-Type: text/xml; charset="utf-8"',
            f"SOAPAction: {self.soap_action}",
        ]
        if self.delta_offer:
            lines += self._delta_lines()
        if self.mode == "chunked":
            lines.append("Transfer-Encoding: chunked")
        else:
            if content_length is None:
                raise HTTPFramingError(
                    "content-length mode requires the total payload size"
                )
            lines.append(f"Content-Length: {content_length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")

    def send_message(self, views: ViewStream, total_bytes: Optional[int] = None) -> int:
        if self.mode == "content-length":
            if total_bytes is None:
                views = [bytes(v) for v in views]
                total_bytes = sum(len(v) for v in views)
            framed = self._frame_identity(views, total_bytes)
        else:
            framed = self._frame_chunked(views)
        if self._wire_bytes_counter is not None:
            framed = self._count_wire(framed)
        self.inner.send_message(framed)
        assert total_bytes is None or total_bytes >= 0
        if self._messages_counter is not None:
            self._messages_counter.inc(1, mode=self.mode)
            self._wire_bytes_counter.inc(self._wire_sent, mode=self.mode)
        return self._payload_sent

    # The framer tracks payload bytes (excluding framing) per message.
    _payload_sent: int = 0
    # ... and, when metrics are on, total wire bytes (with framing).
    _wire_sent: int = 0

    def _count_wire(self, framed) -> Iterator[memoryview | bytes]:
        self._wire_sent = 0
        for piece in framed:
            self._wire_sent += len(piece)
            yield piece

    def _frame_identity(
        self, views: ViewStream, total_bytes: int
    ) -> Iterator[memoryview | bytes]:
        self._payload_sent = 0
        yield self._headers(total_bytes)
        for view in views:
            self._payload_sent += len(view)
            yield view
        if self._payload_sent != total_bytes:
            raise HTTPFramingError(
                f"payload was {self._payload_sent} bytes, "
                f"Content-Length said {total_bytes}"
            )

    def _frame_chunked(self, views: ViewStream) -> Iterator[memoryview | bytes]:
        self._payload_sent = 0
        yield self._headers(None)
        for view in views:
            n = len(view)
            if n == 0:
                continue
            self._payload_sent += n
            yield b"%x\r\n" % n
            yield view
            yield _CRLF
        yield b"0\r\n\r\n"

    def close(self) -> None:
        self.inner.close()


# ----------------------------------------------------------------------
# server-side parsing (dummy server boundaries + the SOAP service)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class HTTPRequest:
    """A parsed HTTP request: line, headers, raw body."""

    method: str
    path: str
    version: str
    headers: Dict[str, str]
    body: bytes


def decode_chunked(data: bytes, max_body: Optional[int] = None) -> Tuple[bytes, int]:
    """Decode a chunked body; return ``(payload, bytes_consumed)``.

    Raises :class:`IncompleteHTTPError` when the body is merely
    truncated (more bytes may arrive), plain
    :class:`HTTPFramingError` when the framing is provably invalid,
    and :class:`RequestTooLargeError` when *max_body* is given and the
    declared chunk sizes add up past it — checked against the declared
    sizes so an oversized body is rejected before it is buffered.
    """
    out: List[bytes] = []
    decoded = 0
    pos = 0
    while True:
        eol = data.find(_CRLF, pos)
        if eol < 0:
            raise IncompleteHTTPError("truncated chunk-size line")
        size_line = data[pos:eol].split(b";", 1)[0].strip()
        try:
            size = int(size_line, 16)
        except ValueError:
            raise HTTPFramingError(f"bad chunk size {size_line!r}") from None
        if size < 0:
            raise HTTPFramingError(f"negative chunk size {size_line!r}")
        decoded += size
        if max_body is not None and decoded > max_body:
            raise RequestTooLargeError(
                f"chunked body exceeds {max_body} bytes"
            )
        pos = eol + 2
        if size == 0:
            # Optional trailers until blank line.
            end = data.find(_CRLF, pos)
            if end < 0:
                raise IncompleteHTTPError("truncated chunked trailer")
            while end != pos:
                pos = end + 2
                end = data.find(_CRLF, pos)
                if end < 0:
                    raise IncompleteHTTPError("truncated chunked trailer")
            return b"".join(out), end + 2
        if pos + size + 2 > len(data):
            raise IncompleteHTTPError("truncated chunk body")
        out.append(data[pos : pos + size])
        if data[pos + size : pos + size + 2] != _CRLF:
            raise HTTPFramingError("chunk body missing CRLF terminator")
        pos += size + 2


def parse_http_response(data: bytes) -> Tuple[int, Dict[str, str], bytes, int]:
    """Parse an HTTP response: ``(status, headers, body, consumed)``.

    Raises :class:`IncompleteHTTPError` when the response is merely
    incomplete — callers receiving from a socket retry with more data —
    and plain :class:`HTTPFramingError` when it is malformed beyond
    repair.
    """
    head_end = data.find(b"\r\n\r\n")
    if head_end < 0:
        raise IncompleteHTTPError("incomplete HTTP response header block")
    head = data[:head_end].decode("latin-1")
    lines = head.split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HTTPFramingError(f"bad status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HTTPFramingError(f"bad status line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" not in line:
            raise HTTPFramingError(f"bad header line {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip().lower()] = value.strip()
    body_start = head_end + 4
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body, consumed = decode_chunked(data[body_start:])
        return status, headers, body, body_start + consumed
    length = _content_length(headers)
    if body_start + length > len(data):
        raise IncompleteHTTPError("truncated response body")
    return status, headers, data[body_start : body_start + length], body_start + length


def _content_length(headers: Dict[str, str]) -> int:
    """Parse Content-Length, mapping garbage to :class:`HTTPFramingError`."""
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise HTTPFramingError(f"bad Content-Length {raw!r}") from None
    if length < 0:
        raise HTTPFramingError(f"bad Content-Length {raw!r}")
    return length


def parse_http_request(
    data: bytes, *, limits: Optional[ResourceLimits] = None
) -> Tuple[HTTPRequest, int]:
    """Parse one HTTP request from *data*.

    Returns the request and the number of bytes consumed (so a server
    can handle pipelined requests on one connection).  Raises
    :class:`IncompleteHTTPError` when more bytes could complete the
    request, :class:`HTTPFramingError` when it is malformed beyond
    repair, and — when *limits* is given —
    :class:`RequestTooLargeError` when the header block or the
    declared body size crosses the configured bounds (the declared
    ``Content-Length``/chunk sizes are checked *before* the body is
    buffered, so a lying header cannot make the server accumulate it).
    """
    max_header = limits.max_header_bytes if limits is not None else None
    max_body = limits.max_body_bytes if limits is not None else None
    head_end = data.find(b"\r\n\r\n")
    if head_end < 0:
        if max_header is not None and len(data) > max_header:
            raise RequestTooLargeError(
                f"header block exceeds {max_header} bytes without terminating"
            )
        raise IncompleteHTTPError("incomplete HTTP header block")
    if max_header is not None and head_end > max_header:
        raise RequestTooLargeError(f"header block exceeds {max_header} bytes")
    head = data[:head_end].decode("latin-1")
    lines = head.split("\r\n")
    try:
        method, path, version = lines[0].split(" ", 2)
    except ValueError:
        raise HTTPFramingError(f"bad request line {lines[0]!r}") from None
    if not version.startswith("HTTP/"):
        raise HTTPFramingError(f"bad request line {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" not in line:
            raise HTTPFramingError(f"bad header line {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip().lower()] = value.strip()

    body_start = head_end + 4
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body, consumed = decode_chunked(data[body_start:], max_body)
        return (
            HTTPRequest(method, path, version, headers, body),
            body_start + consumed,
        )
    length = _content_length(headers)
    if max_body is not None and length > max_body:
        raise RequestTooLargeError(
            f"Content-Length {length} exceeds max_body_bytes={max_body}"
        )
    if body_start + length > len(data):
        raise IncompleteHTTPError("truncated identity body")
    body = data[body_start : body_start + length]
    return HTTPRequest(method, path, version, headers, body), body_start + length
