"""Transports: where serialized bytes go.

The paper measures *Send Time*: preparing the message and pushing it
through ``send()`` system calls to a dummy server that never parses.
This package provides that whole spectrum:

* :class:`~repro.transport.loopback.NullSink` — discards (pure
  serialization cost),
* :class:`~repro.transport.loopback.MemcpySink` — copies into a drain
  buffer (models the kernel copy without a socket),
* :class:`~repro.transport.tcp.TCPTransport` — a real socket with the
  paper's options (TCP_NODELAY, 32 KiB send/recv buffers, keep-alive)
  and scatter-gather ``sendmsg``,
* :class:`~repro.transport.http.HTTPTransport` — SOAP-over-HTTP
  framing: HTTP/1.0 Content-Length or HTTP/1.1 chunked streaming,
* :class:`~repro.transport.dummy_server.DummyServer` — the paper's
  drain-only server, threaded, for benches and tests.
"""

from repro.transport.base import Transport
from repro.transport.loopback import CollectSink, MemcpySink, NullSink
from repro.transport.tcp import TCPTransport, PAPER_SOCKET_OPTIONS
from repro.transport.http import HTTPTransport, parse_http_request
from repro.transport.dummy_server import DummyServer
from repro.transport.timing import SendTimer

__all__ = [
    "Transport",
    "NullSink",
    "MemcpySink",
    "CollectSink",
    "TCPTransport",
    "PAPER_SOCKET_OPTIONS",
    "HTTPTransport",
    "parse_http_request",
    "DummyServer",
    "SendTimer",
]
