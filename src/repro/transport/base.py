"""The transport interface.

A transport consumes an *iterable* of byte segments (memoryviews or
bytes).  Iterables may be lazy generators — chunk overlaying rewrites
its chunk between yields — so a transport must fully consume/copy each
segment before advancing.  ``total_bytes`` is supplied when the sender
knows the exact payload size (needed for HTTP Content-Length framing).
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

__all__ = ["Transport", "ViewStream"]

ViewStream = Iterable["memoryview | bytes"]


@runtime_checkable
class Transport(Protocol):
    """Anything that can carry a serialized SOAP message."""

    def send_message(
        self, views: ViewStream, total_bytes: Optional[int] = None
    ) -> int:
        """Transmit the message; return payload bytes carried.

        The return value counts *message* bytes, not framing overhead
        (HTTP headers/chunk headers), so callers can compare against
        the template's size.
        """
        ...  # pragma: no cover - protocol

    def close(self) -> None:  # pragma: no cover - protocol
        ...
