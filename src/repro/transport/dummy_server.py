"""The dummy server: accepts connections and drains bytes.

    "each client connects to a dummy SOAP server on a different
    machine ... the server does not deserialize or parse the incoming
    SOAP packet."  (§4)

Ours runs as a thread in the same process (localhost stands in for the
paper's gigabit link; see DESIGN.md substitutions).  It can optionally
echo a canned HTTP response per request so request/response tests work.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional

from repro.errors import TransportError
from repro.hardening.limits import DEFAULT_LIMITS, ResourceLimits
from repro.transport.tcp import apply_paper_options

__all__ = ["DummyServer"]

_CANNED_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/xml\r\n"
    b"Content-Length: 0\r\n"
    b"\r\n"
)

_CANNED_DELTA_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/xml\r\n"
    b"X-Repro-Delta: 1\r\n"
    b"Content-Length: 0\r\n"
    b"\r\n"
)

_CANNED_400 = (
    b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
)
_CANNED_413 = (
    b"HTTP/1.1 413 Payload Too Large\r\n"
    b"Content-Length: 0\r\nConnection: close\r\n\r\n"
)


class DummyServer:
    """Threaded drain server.

    Parameters
    ----------
    respond:
        When True, replies with an empty 200 after each *complete*
        HTTP request (requires well-formed framing from the client).
        Default False: pure drain, never writes.
    limits:
        :class:`~repro.hardening.ResourceLimits` shared with the
        serving stack: bounds concurrent connections (extras are
        closed immediately) and, in respond mode, header/body sizes
        (oversized → 413, malformed → 400, then the connection keeps
        draining without responding — it is still a drain server).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        respond: bool = False,
        *,
        delta: bool = False,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        self.host = host
        self.respond = respond
        #: In respond mode, acknowledge the client's delta offer
        #: (``X-Repro-Delta: 1`` on every canned 200) so serializer
        #: drain benchmarks exercise the frame-encoding send path.
        #: The bytes are still only drained, never reconstructed.
        self.delta = delta
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._running = threading.Event()
        self._lock = threading.Lock()
        self.bytes_drained = 0
        self.connections = 0
        self.connections_rejected = 0
        self.port: int = 0

    # ------------------------------------------------------------------
    def start(self) -> "DummyServer":
        if self._listener is not None:
            raise TransportError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dummy-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            # Reap finished drain threads: under many short-lived
            # connections this list would otherwise grow without bound.
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]
            if len(self._conn_threads) >= self.limits.max_concurrent_connections:
                with self._lock:
                    self.connections_rejected += 1
                try:
                    conn.close()
                except OSError:  # pragma: no cover - best effort
                    pass
                continue
            with self._lock:
                self.connections += 1
            thread = threading.Thread(
                target=self._drain_loop, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)

    def _drain_loop(self, conn: socket.socket) -> None:
        apply_paper_options(conn)
        conn.settimeout(0.2)
        buffered = b""
        try:
            while self._running.is_set():
                try:
                    data = conn.recv(1 << 20)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                with self._lock:
                    self.bytes_drained += len(data)
                if self.respond:
                    buffered += data
                    buffered = self._maybe_respond(conn, buffered)
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _maybe_respond(self, conn: socket.socket, buffered: bytes) -> bytes:
        """Reply once per complete HTTP request found in the buffer."""
        from repro.transport.http import parse_http_request
        from repro.errors import (
            HTTPFramingError,
            IncompleteHTTPError,
            RequestTooLargeError,
        )

        while True:
            try:
                _req, consumed = parse_http_request(buffered, limits=self.limits)
            except IncompleteHTTPError:
                return buffered  # incomplete — wait for more bytes
            except RequestTooLargeError:
                # Answer before giving up on framing, then keep
                # draining without responding (still a drain server).
                try:
                    conn.sendall(_CANNED_413)
                except OSError:
                    pass
                return b""
            except HTTPFramingError:
                try:
                    conn.sendall(_CANNED_400)
                except OSError:
                    pass
                return b""  # malformed — keep draining, stop responding
            try:
                conn.sendall(
                    _CANNED_DELTA_RESPONSE if self.delta else _CANNED_RESPONSE
                )
            except OSError:
                return b""
            buffered = buffered[consumed:]
            if not buffered:
                return b""

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._running.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    def __enter__(self) -> "DummyServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
