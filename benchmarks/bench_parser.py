"""Parsing-side costs: scanner, feed scanner, schema-guided parser.

Context for the differential-deserialization ablation: these are the
baseline costs the server avoids.  The incremental FeedScanner is
compared against the whole-document scanner over the same bytes to
price the streaming capability.
"""

import pytest

from _common import sink
from repro.bench.workloads import double_array_message, random_doubles
from repro.core.client import BSoapClient
from repro.server.parser import SOAPRequestParser
from repro.transport.loopback import CollectSink
from repro.xmlkit.feed import FeedScanner
from repro.xmlkit.scanner import XMLScanner

N = 5000


@pytest.fixture(scope="module")
def document():
    collect = CollectSink()
    BSoapClient(collect).send(double_array_message(random_doubles(N, seed=0)))
    return collect.last


def test_whole_document_scan(benchmark, document):
    benchmark.group = f"parser costs (n={N} doubles)"
    benchmark(lambda: sum(1 for _ in XMLScanner(document)))


def test_feed_scan_8k_fragments(benchmark, document):
    benchmark.group = f"parser costs (n={N} doubles)"

    def run():
        scanner = FeedScanner()
        count = 0
        for pos in range(0, len(document), 8192):
            count += len(scanner.feed(document[pos : pos + 8192]))
        count += len(scanner.close())
        return count

    assert run() == sum(1 for _ in XMLScanner(document))
    benchmark(run)


def test_schema_guided_parse(benchmark, document):
    benchmark.group = f"parser costs (n={N} doubles)"
    parser = SOAPRequestParser()
    benchmark(lambda: parser.parse(document))


def test_trie_tag_classification(benchmark, document):
    benchmark.group = f"parser costs (n={N} doubles)"
    from repro.xmlkit.trie import ByteTrie

    trie = ByteTrie.from_tags([b"<item", b"<data", b"<SOAP-ENV:Body"])

    def run():
        hits = 0
        pos = document.find(b"<")
        while pos >= 0:
            value, _end = trie.match_at(document, pos)
            if value is not None:
                hits += 1
            pos = document.find(b"<", pos + 1)
        return hits

    benchmark(run)
