"""Shared helpers for the pytest-benchmark suite.

Each ``bench_figNN_*.py`` file regenerates one of the paper's figures
(§4) as pytest-benchmark groups; ``bench_ablation_*.py`` files cover
the design choices DESIGN.md calls out.  The full-sweep curves (paper
sizes up to 100K) come from ``python -m repro.bench.figures``; the
pytest benches use CI-sized arrays so the whole suite runs in minutes
while preserving every comparison's *shape*.

Benchmark transport: :class:`MemcpySink` — one copy per byte, the
reproducible stand-in for the paper's send() syscall (see DESIGN.md
substitutions).  Timing methodology note: mutation of application data
happens in benchmark *setup* (untimed), matching the paper's Send-Time
window.
"""

from __future__ import annotations

import numpy as np

from repro.bench.workloads import (
    MIO_INTERMEDIATE_SPLIT,
    MIO_MAX_SPLIT,
    MIO_MIN_SPLIT,
    double_array_message,
    doubles_of_width,
    int_array_message,
    ints_of_width,
    mio_columns_of_widths,
    mio_message,
    random_doubles,
    random_ints,
    random_mio_columns,
)
from repro.buffers.config import ChunkPolicy
from repro.core.client import BSoapClient
from repro.core.policy import (
    DiffPolicy,
    Expansion,
    OverlayPolicy,
    StuffingPolicy,
    StuffMode,
)
from repro.transport.loopback import MemcpySink

#: CI-friendly size grid (full paper grid via the figures runner).
SIZES = (100, 1000, 10000)
#: Smaller grid for the expensive shifting benches.
SHIFT_SIZES = (100, 1000, 5000)
#: Dirty fractions from Figures 4/5/8/9.
FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def sink():
    return MemcpySink()


def full_serialization_client():
    """bSOAP with differential off — the paper's Full Serialization curve."""
    return BSoapClient(sink(), DiffPolicy(differential_enabled=False))


def shift_policy(chunk_size: int = 32 * 1024) -> DiffPolicy:
    return DiffPolicy(
        chunk=ChunkPolicy(
            chunk_size=chunk_size,
            reserve=min(512, chunk_size // 8),
            split_threshold=chunk_size // 2,
        )
    )


def prepared_call(message, policy=None):
    """Build a template and commit the first send (untimed)."""
    client = BSoapClient(sink(), policy or DiffPolicy())
    call = client.prepare(message)
    call.send()
    return call


def make_structural_mutator(call, pname, n, frac, pool, mio=False, seed=0):
    """A setup() that dirties ``frac`` of the values with same-width
    replacements (perfect structural match, as in Figures 4/5)."""
    tracked = call.tracked(pname)
    k = max(1, int(frac * n))
    rng = np.random.default_rng(seed)
    flip = [pool, np.roll(pool, 1)]
    state = {"i": 0}

    def mutate():
        idx = rng.choice(n, k, replace=False) if k < n else np.arange(n)
        src = flip[state["i"] % 2]
        state["i"] += 1
        if mio:
            tracked.set_items(idx, "v", src[idx])
        else:
            tracked.update(idx, src[idx])

    return mutate
