"""Figure 1 — Message Content Matches: MIOs.

Curves: gSOAP-like full serialization, bSOAP full serialization, and
bSOAP content-match resends, over arrays of mesh interface objects.
Paper result: content matches ≈7× faster than full serialization.
"""

import pytest

from _common import SIZES, full_serialization_client, prepared_call, sink
from repro.baselines.gsoap_like import GSoapLikeClient
from repro.bench.workloads import mio_message, random_mio_columns


@pytest.mark.parametrize("n", SIZES)
def test_gsoap_full(benchmark, n):
    benchmark.group = f"fig01 MIO content n={n}"
    message = mio_message(random_mio_columns(n, seed=n))
    client = GSoapLikeClient(sink())
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
def test_bsoap_full_serialization(benchmark, n):
    benchmark.group = f"fig01 MIO content n={n}"
    message = mio_message(random_mio_columns(n, seed=n))
    client = full_serialization_client()
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
def test_bsoap_content_match(benchmark, n):
    benchmark.group = f"fig01 MIO content n={n}"
    call = prepared_call(mio_message(random_mio_columns(n, seed=n)))
    benchmark(call.send)
