"""Ablation — compiled rewrite plans + conversion caches on the steady-state path.

The plan cache (``repro.core.plan``) targets the paper's best case:
a client resending the same message shape with fresh values, hitting
PERFECT_STRUCTURAL match every time.  This bench measures what the
cache is worth there, and what it costs where it cannot help:

* workload ``cycle`` — the same dirty-index signature every send,
  values drawn from a quantized pool (steady state: every send after
  the first two is a plan hit, and recurring readings hit the
  conversion memo — the sensor-array / iterative-solver pattern);
* workload ``churn`` — a rotating signature set larger than
  ``max_plans_per_segment`` and full-entropy fresh values (every send
  misses and recompiles, and the conversion memo can never hit: the
  worst case for both caches, bounded by the memo's adaptive bypass).

Variants: ``off`` (plans + conversion cache disabled), ``plan``
(plans only), ``plan+conv`` (the default policy).  Formats: ``minimal``
(variable-width text) and ``fixed`` (24-char ``%24.16e`` fields under
MAX stuffing — the splice fast path).

Before timing, each grid cell re-runs a small copy of itself against
the ``off`` variant through :class:`CollectSink` and asserts the wire
bytes are identical — plans may change *when* bytes are computed,
never *which* bytes.

Emits one ``repro-bench-result/1`` document.  The headline row
(``fixed``/``cycle``/``plan+conv``) is what the CI ``perf-smoke`` job
checks against ``BENCH_plan_cache.json``.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_ablation_plan_cache.py \
        --out BENCH_plan_cache.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_ablation_plan_cache.py --smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.bench.resultjson import dump_result, make_result, validate_result
from repro.bench.workloads import double_array_message, doubles_of_width
from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy, PlanPolicy, StuffingPolicy, StuffMode
from repro.lexical.cache import clear_memos
from repro.lexical.floats import FloatFormat
from repro.transport.loopback import CollectSink, MemcpySink

REQUIRED_COLUMNS = (
    "fmt",
    "workload",
    "variant",
    "n",
    "sends",
    "mean_send_ms",
    "values_per_sec",
    "plan_hits",
    "plan_misses",
    "plan_spliced",
    "speedup_vs_off",
)

FORMATS = ("minimal", "fixed")
WORKLOADS = ("cycle", "churn")
VARIANTS = ("off", "plan", "plan+conv")

#: ``cycle`` reuses one signature; ``churn`` rotates through more
#: strides than the per-segment plan budget, so nothing ever hits.
CYCLE_STRIDES = (4,)
CHURN_STRIDES = (3, 4, 5, 7, 11, 13)


def _policy(fmt: str, variant: str) -> DiffPolicy:
    plan = {
        "off": PlanPolicy(enabled=False, conversion_cache=False),
        "plan": PlanPolicy(enabled=True, conversion_cache=False),
        "plan+conv": PlanPolicy(enabled=True, conversion_cache=True),
    }[variant]
    if fmt == "fixed":
        return DiffPolicy(
            float_format=FloatFormat.FIXED,
            stuffing=StuffingPolicy(StuffMode.MAX),
            plan=plan,
        )
    return DiffPolicy(plan=plan)


def _run_cell(
    fmt: str,
    workload: str,
    variant: str,
    n: int,
    sends: int,
    seed: int,
    sink=None,
) -> Dict[str, object]:
    """Drive one grid cell; returns the timing row (sans speedup)."""
    clear_memos()
    policy = _policy(fmt, variant)
    client = BSoapClient(sink if sink is not None else MemcpySink(), policy)
    # Constant-width seed values so MINIMAL stays on the rewrite path
    # (random widths would measure shifting, not the plan cache).
    call = client.prepare(double_array_message(doubles_of_width(n, 18, seed=seed)))
    call.send()
    tracked = call.tracked("data")
    strides = CYCLE_STRIDES if workload == "cycle" else CHURN_STRIDES
    rng = np.random.default_rng(seed)
    # ``cycle`` draws from a quantized reading pool (values recur →
    # conversion-memo hits); ``churn`` generates fresh full-entropy
    # values every send (memo can never hit).
    pool = doubles_of_width(512, 18, seed=seed + 1) if workload == "cycle" else None

    dirty_total = [0]
    spliced_total = [0]

    def one_send(i: int, timed: bool = False) -> float:
        idx = np.arange(0, n, strides[i % len(strides)])
        if timed:
            dirty_total[0] += len(idx)
        if pool is not None:
            vals = pool[rng.integers(0, len(pool), len(idx))]
        else:
            vals = doubles_of_width(len(idx), 18, seed=int(rng.integers(1 << 30)))
        tracked.update(idx, vals)
        t0 = time.perf_counter()
        report = call.send()
        dt = time.perf_counter() - t0
        if timed:
            spliced_total[0] += report.rewrite.plan_spliced
        return dt

    # Warmup covers template build + first-resend expansion + plan
    # compilation, so the timed region is the steady state.
    warmup = 2 * len(strides)
    for i in range(warmup):
        one_send(i)
    elapsed = sum(one_send(warmup + i, timed=True) for i in range(sends))

    stats = client.stats
    return {
        "fmt": fmt,
        "workload": workload,
        "variant": variant,
        "n": n,
        "sends": sends,
        "mean_send_ms": round(elapsed / sends * 1e3, 4),
        "values_per_sec": round(dirty_total[0] / elapsed, 1),
        "plan_hits": stats.plan_hits,
        "plan_misses": stats.plan_misses,
        "plan_spliced": spliced_total[0],
        "speedup_vs_off": 1.0,
    }


def _assert_wire_identical(fmt: str, workload: str, seed: int) -> None:
    """Plans on/off must produce byte-identical messages (small copy)."""
    captures = {}
    for variant in ("off", "plan+conv"):
        sink = CollectSink()
        _run_cell(fmt, workload, variant, n=512, sends=4, seed=seed, sink=sink)
        captures[variant] = sink.messages
    if captures["off"] != captures["plan+conv"]:
        raise AssertionError(
            f"wire bytes diverged with plans on ({fmt}/{workload})"
        )


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=65536,
                        help="double-array length (default 65536)")
    parser.add_argument("--sends", type=int, default=30,
                        help="timed sends per grid cell (default 30)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: small array, few sends")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.smoke:
        args.n = 4096
        args.sends = 8

    for fmt in FORMATS:
        for workload in WORKLOADS:
            _assert_wire_identical(fmt, workload, args.seed)
    print("wire identity: plans on == plans off (all cells)", file=sys.stderr)

    rows: List[Dict[str, object]] = []
    for fmt in FORMATS:
        for workload in WORKLOADS:
            base_ms = None
            for variant in VARIANTS:
                row = _run_cell(fmt, workload, variant, args.n, args.sends, args.seed)
                if variant == "off":
                    base_ms = row["mean_send_ms"]
                row["speedup_vs_off"] = round(base_ms / row["mean_send_ms"], 3)
                rows.append(row)
                print(
                    f"{fmt:>7}/{workload:<5} {variant:<9} "
                    f"{row['mean_send_ms']:9.3f} ms/send  "
                    f"x{row['speedup_vs_off']:.2f} vs off  "
                    f"(hits={row['plan_hits']} spliced={row['plan_spliced']})",
                    file=sys.stderr,
                )

    doc = make_result(
        "ablation_plan_cache",
        params={
            "n": args.n,
            "sends": args.sends,
            "seed": args.seed,
            "smoke": args.smoke,
            "headline": "fmt=fixed workload=cycle variant=plan+conv",
        },
        results=rows,
        notes=(
            "perfect-structural resends over MemcpySink; mutation untimed; "
            "wire identity plans-on vs plans-off asserted before timing"
        ),
    )
    validate_result(doc, required_columns=REQUIRED_COLUMNS)
    dump_result(doc, args.out)
    if args.out:
        print(f"wrote {args.out} ({len(rows)} rows)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
