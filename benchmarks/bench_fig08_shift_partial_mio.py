"""Figure 8 — Shifting Performance: MIOs (partial expansion).

A fraction of the MIOs expands from 36-character to 46-character form
(the rest are untouched).  Paper result: as the shifted fraction drops,
Send Time approaches the no-shifting re-serialization curve.
"""

import numpy as np
import pytest

from _common import FRACTIONS, SHIFT_SIZES, prepared_call, shift_policy
from repro.bench.workloads import (
    MIO_INTERMEDIATE_SPLIT,
    MIO_MAX_SPLIT,
    doubles_of_width,
    ints_of_width,
    mio_columns_of_widths,
    mio_message,
)


@pytest.mark.parametrize("n", SHIFT_SIZES)
@pytest.mark.parametrize("frac", FRACTIONS)
def test_reserialization_with_shifting(benchmark, n, frac):
    benchmark.group = f"fig08 MIO partial shift n={n}"
    message = mio_message(mio_columns_of_widths(n, MIO_INTERMEDIATE_SPLIT, seed=n))
    big_v = doubles_of_width(n, MIO_MAX_SPLIT[2], seed=n + 7)
    big_xy = ints_of_width(n, 11, seed=n + 9)
    k = max(1, int(frac * n))
    rng = np.random.default_rng(n + k)
    state = {}

    def rebuild():
        call = prepared_call(message, shift_policy())
        tracked = call.tracked("mesh")
        idx = np.sort(rng.choice(n, k, replace=False)) if k < n else np.arange(n)
        tracked.set_items(idx, "x", big_xy[idx])
        tracked.set_items(idx, "y", np.roll(big_xy, 3)[idx])
        tracked.set_items(idx, "v", big_v[idx])
        state["call"] = call

    benchmark.pedantic(
        lambda: state["call"].send(),
        setup=rebuild,
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("n", SHIFT_SIZES)
def test_reference_no_shifting(benchmark, n):
    benchmark.group = f"fig08 MIO partial shift n={n}"
    message = mio_message(mio_columns_of_widths(n, MIO_MAX_SPLIT, seed=n))
    call = prepared_call(message)
    other = doubles_of_width(n, MIO_MAX_SPLIT[2], seed=n + 31)
    flip = [other, np.roll(other, 1)]
    state = {"i": 0}
    idx = np.arange(n)

    def mutate():
        call.tracked("mesh").set_items(idx, "v", flip[state["i"] % 2])
        state["i"] += 1

    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)
