"""Figure 4 — Perfect Structural Matches: MIOs.

A fraction of the MIO doubles is re-serialized per send (coordinates
and the remaining doubles stay as in the template; replacement values
are width-stable so no shifting occurs).  Paper result: Send Time
scales with the dirty fraction and stays below full serialization.
"""

import pytest

from _common import (
    FRACTIONS,
    SIZES,
    full_serialization_client,
    make_structural_mutator,
    prepared_call,
)
from repro.bench.workloads import (
    MIO_INTERMEDIATE_SPLIT,
    doubles_of_width,
    mio_columns_of_widths,
    mio_message,
)


@pytest.mark.parametrize("n", SIZES)
def test_full_serialization(benchmark, n):
    benchmark.group = f"fig04 MIO structural n={n}"
    message = mio_message(mio_columns_of_widths(n, MIO_INTERMEDIATE_SPLIT, seed=n))
    client = full_serialization_client()
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("frac", FRACTIONS)
def test_value_reserialization(benchmark, n, frac):
    benchmark.group = f"fig04 MIO structural n={n}"
    benchmark.name = f"test_value_reserialization[{int(frac * 100)}%]"
    message = mio_message(mio_columns_of_widths(n, MIO_INTERMEDIATE_SPLIT, seed=n))
    call = prepared_call(message)
    pool = doubles_of_width(n, MIO_INTERMEDIATE_SPLIT[2], seed=n + 999)
    mutate = make_structural_mutator(call, "mesh", n, frac, pool, mio=True, seed=n)
    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("n", SIZES)
def test_content_match(benchmark, n):
    benchmark.group = f"fig04 MIO structural n={n}"
    call = prepared_call(
        mio_message(mio_columns_of_widths(n, MIO_INTERMEDIATE_SPLIT, seed=n))
    )
    benchmark(call.send)
