"""Figure 5 — Perfect Structural Matches: Doubles.

Same protocol as Figure 4 for plain double arrays: 18-character
template values overwritten by other 18-character values, dirty
fractions 25/50/75/100%.
"""

import pytest

from _common import (
    FRACTIONS,
    SIZES,
    full_serialization_client,
    make_structural_mutator,
    prepared_call,
)
from repro.bench.workloads import double_array_message, doubles_of_width


@pytest.mark.parametrize("n", SIZES)
def test_full_serialization(benchmark, n):
    benchmark.group = f"fig05 double structural n={n}"
    message = double_array_message(doubles_of_width(n, 18, seed=n))
    client = full_serialization_client()
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("frac", FRACTIONS)
def test_value_reserialization(benchmark, n, frac):
    benchmark.group = f"fig05 double structural n={n}"
    call = prepared_call(double_array_message(doubles_of_width(n, 18, seed=n)))
    pool = doubles_of_width(n, 18, seed=n + 999)
    mutate = make_structural_mutator(call, "data", n, frac, pool, seed=n)
    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("n", SIZES)
def test_content_match(benchmark, n):
    benchmark.group = f"fig05 double structural n={n}"
    call = prepared_call(double_array_message(doubles_of_width(n, 18, seed=n)))
    benchmark(call.send)
