"""Figure 12 — Chunk Overlaying Performance.

Sending a large array from a single overlaid 32 KiB chunk vs from a
fully materialized multi-chunk template with 100% value
re-serialization.  Paper result: overlay ≈ the 100% re-serialization
curve (all values rewritten either way; overlay saves memory, not
serialization work).
"""

import numpy as np
import pytest

from _common import SIZES, prepared_call, sink
from repro.bench.workloads import (
    double_array_message,
    mio_message,
    random_doubles,
    random_mio_columns,
)
from repro.buffers.config import ChunkPolicy
from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy, OverlayPolicy, StuffingPolicy, StuffMode

OVERLAY_POLICY = DiffPolicy(
    chunk=ChunkPolicy(chunk_size=32 * 1024),
    stuffing=StuffingPolicy(StuffMode.MAX),
    overlay=OverlayPolicy(enabled=True, min_items=1),
)
PLAIN_POLICY = DiffPolicy(
    chunk=ChunkPolicy(chunk_size=32 * 1024),
    stuffing=StuffingPolicy(StuffMode.MAX),
)


def _message(kind, n):
    if kind == "double":
        return double_array_message(random_doubles(n, seed=n)), "data"
    return mio_message(random_mio_columns(n, seed=n)), "mesh"


@pytest.mark.parametrize("kind", ["double", "mio"])
@pytest.mark.parametrize("n", SIZES)
def test_chunk_overlay(benchmark, kind, n):
    benchmark.group = f"fig12 overlay {kind} n={n}"
    message, _ = _message(kind, n)
    client = BSoapClient(sink(), OVERLAY_POLICY)
    client.send(message)
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("kind", ["double", "mio"])
@pytest.mark.parametrize("n", SIZES)
def test_full_value_reserialization(benchmark, kind, n):
    benchmark.group = f"fig12 overlay {kind} n={n}"
    message, pname = _message(kind, n)
    call = prepared_call(message, PLAIN_POLICY)
    tracked = call.tracked(pname)
    idx = np.arange(n)
    if kind == "mio":
        alts = [
            {c: np.roll(tracked.column(c), s) for c in ("x", "y", "v")}
            for s in (0, 1)
        ]
    else:
        alts = [np.roll(tracked.data, s) for s in (0, 1)]
    state = {"i": 0}

    def mutate():
        src = alts[state["i"] % 2]
        state["i"] += 1
        if kind == "mio":
            for col in ("x", "y", "v"):
                tracked.set_items(idx, col, src[col])
        else:
            tracked.update(idx, src)

    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)
