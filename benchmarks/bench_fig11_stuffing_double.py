"""Figure 11 — Stuffing Performance: Doubles.

Fields stuffed to 1/18/24 characters; the tag-shift curve writes
single-character doubles over 24-character doubles each send.
"""

import numpy as np
import pytest

from _common import SIZES, prepared_call
from repro.bench.workloads import double_array_message, doubles_of_width
from repro.core.policy import DiffPolicy, StuffingPolicy, StuffMode

MAX_STUFF = StuffingPolicy(StuffMode.MAX)
INTER_STUFF = StuffingPolicy(StuffMode.FIXED, {"double": 18})


def _content_resend(benchmark, n, stuffing):
    message = double_array_message(doubles_of_width(n, 1, seed=1))
    call = prepared_call(message, DiffPolicy(stuffing=stuffing))
    benchmark(call.send)


@pytest.mark.parametrize("n", SIZES)
def test_max_width_full_closing_tag_shift(benchmark, n):
    benchmark.group = f"fig11 double stuffing n={n}"
    message = double_array_message(doubles_of_width(n, 24, seed=2))
    call = prepared_call(message, DiffPolicy(stuffing=MAX_STUFF))
    small = doubles_of_width(n, 1, seed=1)
    big = doubles_of_width(n, 24, seed=2)
    idx = np.arange(n)
    state = {"i": 0}

    def mutate():
        call.tracked("data").update(idx, small if state["i"] % 2 == 0 else big)
        state["i"] += 1

    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("n", SIZES)
def test_max_width_no_shift(benchmark, n):
    benchmark.group = f"fig11 double stuffing n={n}"
    _content_resend(benchmark, n, MAX_STUFF)


@pytest.mark.parametrize("n", SIZES)
def test_intermediate_width_no_shift(benchmark, n):
    benchmark.group = f"fig11 double stuffing n={n}"
    _content_resend(benchmark, n, INTER_STUFF)


@pytest.mark.parametrize("n", SIZES)
def test_min_width_no_shift(benchmark, n):
    benchmark.group = f"fig11 double stuffing n={n}"
    _content_resend(benchmark, n, StuffingPolicy())
