"""Figure 10 — Stuffing Performance: MIOs.

No-closing-tag-shift curves resend identical min-value messages whose
fields are stuffed to 3/36/46 characters (the larger-message cost of
stuffing); the full-closing-tag-shift curve writes smallest MIOs over
largest MIOs inside max-width fields every send.  Paper result: the
dominant stuffing penalty is the closing-tag shift, not the bytes.
"""

import numpy as np
import pytest

from _common import SIZES, prepared_call
from repro.bench.workloads import (
    MIO_INTERMEDIATE_SPLIT,
    MIO_MAX_SPLIT,
    MIO_MIN_SPLIT,
    mio_columns_of_widths,
    mio_message,
)
from repro.core.policy import DiffPolicy, StuffingPolicy, StuffMode

MAX_STUFF = StuffingPolicy(StuffMode.MAX)
INTER_STUFF = StuffingPolicy(
    StuffMode.FIXED,
    {"int": MIO_INTERMEDIATE_SPLIT[0], "double": MIO_INTERMEDIATE_SPLIT[2]},
)


def _content_resend(benchmark, n, stuffing):
    message = mio_message(mio_columns_of_widths(n, MIO_MIN_SPLIT, seed=1))
    call = prepared_call(message, DiffPolicy(stuffing=stuffing))
    benchmark(call.send)


@pytest.mark.parametrize("n", SIZES)
def test_max_width_full_closing_tag_shift(benchmark, n):
    benchmark.group = f"fig10 MIO stuffing n={n}"
    message = mio_message(mio_columns_of_widths(n, MIO_MAX_SPLIT, seed=2))
    call = prepared_call(message, DiffPolicy(stuffing=MAX_STUFF))
    tracked = call.tracked("mesh")
    small = mio_columns_of_widths(n, MIO_MIN_SPLIT, seed=1)
    big = mio_columns_of_widths(n, MIO_MAX_SPLIT, seed=2)
    idx = np.arange(n)
    state = {"i": 0}

    def mutate():
        src = small if state["i"] % 2 == 0 else big
        state["i"] += 1
        for col in ("x", "y", "v"):
            tracked.set_items(idx, col, src[col])

    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("n", SIZES)
def test_max_width_no_shift(benchmark, n):
    benchmark.group = f"fig10 MIO stuffing n={n}"
    _content_resend(benchmark, n, MAX_STUFF)


@pytest.mark.parametrize("n", SIZES)
def test_intermediate_width_no_shift(benchmark, n):
    benchmark.group = f"fig10 MIO stuffing n={n}"
    _content_resend(benchmark, n, INTER_STUFF)


@pytest.mark.parametrize("n", SIZES)
def test_min_width_no_shift(benchmark, n):
    benchmark.group = f"fig10 MIO stuffing n={n}"
    _content_resend(benchmark, n, StuffingPolicy())
