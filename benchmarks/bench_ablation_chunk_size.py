"""Ablation — chunk size vs worst-case shifting cost.

DESIGN.md: shifting is chunk-local, so the per-expansion memmove is
bounded by the chunk size.  Sweep chunk sizes over the
every-value-expands workload (Figure 7's protocol) to expose the
trade-off the paper discusses in §3.2.
"""

import numpy as np
import pytest

from _common import prepared_call, shift_policy
from repro.bench.workloads import double_array_message, doubles_of_width

N = 5000
CHUNK_SIZES = (4 * 1024, 8 * 1024, 32 * 1024, 128 * 1024)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_worst_case_shift(benchmark, chunk_size):
    benchmark.group = f"ablation chunk size (n={N}, all values 1→24 chars)"
    benchmark.name = f"test_worst_case_shift[{chunk_size // 1024}K]"
    small = double_array_message(doubles_of_width(N, 1, seed=0))
    big = doubles_of_width(N, 24, seed=7)
    idx = np.arange(N)
    state = {}

    def rebuild():
        call = prepared_call(small, shift_policy(chunk_size))
        call.tracked("data").update(idx, big)
        state["call"] = call

    benchmark.pedantic(
        lambda: state["call"].send(),
        setup=rebuild,
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_full_build(benchmark, chunk_size):
    """Chunk size barely affects initial serialization (sanity floor)."""
    benchmark.group = f"ablation chunk size: full build (n={N})"
    benchmark.name = f"test_full_build[{chunk_size // 1024}K]"
    from repro.core.client import BSoapClient
    from repro.core.policy import DiffPolicy
    from _common import sink

    message = double_array_message(doubles_of_width(N, 18, seed=0))
    client = BSoapClient(
        sink(),
        DiffPolicy(
            chunk=shift_policy(chunk_size).chunk, differential_enabled=False
        ),
    )
    benchmark(lambda: client.send(message))
