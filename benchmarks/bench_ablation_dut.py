"""Ablation — NumPy SoA DUT vs per-entry Python objects.

DESIGN.md's implementation choice: the DUT's columns are NumPy arrays
(vectorized dirty scans and offset fix-ups) instead of the paper's
literal one-record-per-entry design.  This bench quantifies the gap on
the two hot operations: the dirty scan and the post-shift offset
fix-up.
"""

import numpy as np
import pytest

from repro.buffers.chunked import GapResult
from repro.dut.objects import PyDUTTable
from repro.dut.table import DUTTableBuilder

N = 50_000


def _soa_table():
    builder = DUTTableBuilder()
    offs = list(range(0, N * 30, 30))
    builder.add_batch(0, offs, [10] * N, [24] * N, type_id=1, close_len=7)
    return builder.freeze()


def _py_table():
    table = PyDUTTable()
    for off in range(0, N * 30, 30):
        table.add(0, off, 10, 24, 1, 7)
    return table


@pytest.fixture(scope="module")
def soa():
    return _soa_table()


@pytest.fixture(scope="module")
def pyt():
    return _py_table()


def test_dirty_scan_soa(benchmark, soa):
    benchmark.group = f"ablation DUT: dirty scan ({N} entries, 1% dirty)"
    rng = np.random.default_rng(0)
    soa.dirty[rng.choice(N, N // 100, replace=False)] = True
    benchmark(soa.dirty_indices)


def test_dirty_scan_python(benchmark, pyt):
    benchmark.group = f"ablation DUT: dirty scan ({N} entries, 1% dirty)"
    rng = np.random.default_rng(0)
    for i in rng.choice(N, N // 100, replace=False):
        pyt.mark_dirty(int(i))
    benchmark(pyt.dirty_indices)


def test_gap_fixup_soa(benchmark, soa):
    benchmark.group = f"ablation DUT: offset fix-up ({N} entries)"
    gap = GapResult("inplace", 0, N * 15, 5, N * 15 - 10)
    benchmark(lambda: soa.apply_gap(gap))


def test_gap_fixup_python(benchmark, pyt):
    benchmark.group = f"ablation DUT: offset fix-up ({N} entries)"
    gap = GapResult("inplace", 0, N * 15, 5, N * 15 - 10)
    benchmark(lambda: pyt.apply_gap(gap))


def test_build_soa(benchmark):
    benchmark.group = f"ablation DUT: build ({N} entries)"
    benchmark(_soa_table)


def test_build_python(benchmark):
    benchmark.group = f"ablation DUT: build ({N} entries)"
    benchmark(_py_table)
