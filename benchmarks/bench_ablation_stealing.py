"""Ablation — stealing vs shifting for field expansion.

With fixed-width stuffing, neighbors hold whitespace slack; stealing
slides only a few bytes instead of memmoving the chunk tail.  Expand a
scattered 10% of the values and compare the two expansion strategies.

Finding (recorded in EXPERIMENTS.md): in this Python port stealing is
*not* faster — the per-expansion interpreter work of the donor scan
exceeds the cost of the `bytearray` tail memmove it avoids (memmove
runs at memcpy speed; ~50 KB costs only a few µs).  In the paper's C
setting the balance tips the other way, which is why the authors
explore stealing in a companion paper.  The mechanism is still fully
implemented and correctness-tested; this bench keeps the trade-off
visible.
"""

import numpy as np
import pytest

from _common import prepared_call
from repro.bench.workloads import double_array_message, doubles_of_width
from repro.buffers.config import ChunkPolicy
from repro.core.policy import DiffPolicy, Expansion, StuffingPolicy, StuffMode

N = 5000


def _policy(expansion):
    return DiffPolicy(
        chunk=ChunkPolicy(chunk_size=32 * 1024),
        stuffing=StuffingPolicy(StuffMode.FIXED, {"double": 18}),
        expansion=expansion,
    )


@pytest.mark.parametrize("expansion", [Expansion.STEAL, Expansion.SHIFT])
def test_scattered_expansion(benchmark, expansion):
    benchmark.group = f"ablation steal-vs-shift (n={N}, 10% expand 14→24 chars)"
    benchmark.name = f"test_scattered_expansion[{expansion.value}]"
    message = double_array_message(doubles_of_width(N, 14, seed=0))
    big = doubles_of_width(N, 24, seed=7)
    rng = np.random.default_rng(1)
    idx = np.sort(rng.choice(N, N // 10, replace=False))
    state = {}

    def rebuild():
        call = prepared_call(message, _policy(expansion))
        call.tracked("data").update(idx, big[idx])
        state["call"] = call

    def run():
        report = state["call"].send()
        return report

    benchmark.pedantic(run, setup=rebuild, rounds=5, iterations=1, warmup_rounds=1)


def test_steal_actually_steals():
    """Sanity: under this setup the STEAL strategy finds donors."""
    message = double_array_message(doubles_of_width(N, 14, seed=0))
    big = doubles_of_width(N, 24, seed=7)
    rng = np.random.default_rng(1)
    idx = np.sort(rng.choice(N, N // 10, replace=False))
    call = prepared_call(message, _policy(Expansion.STEAL))
    call.tracked("data").update(idx, big[idx])
    report = call.send()
    assert report.rewrite.steals > 0
    assert report.rewrite.steals >= report.rewrite.shifts_inplace
