"""Ablation — bytes on the wire: delta frames vs full-XML resends.

The delta wire protocol (``repro.wire``, docs/wire_protocol.md) trades
a negotiated binary patch frame for the full stuffed document on
steady-state resends.  This bench measures what that is worth in
payload bytes and send latency across dirty fractions:

* ``full-xml`` — the plain differential client; every resend ships the
  whole (rewritten-in-place) document;
* ``delta`` — the same client with ``DeltaPolicy(offer=True)`` over a
  negotiated :class:`~repro.wire.loopback.DeltaLoopback` peer; eligible
  resends ship RDF1 frames, the peer reconstructs from its mirror.

Both variants run the identical mutation schedule (fixed-format MAX
stuffing, so every resend is a perfect structural match and the grid
isolates *wire bytes*, not match level).  At ``dirty_frac=1.0`` the
frame outgrows ``max_frame_fraction`` and the encoder voluntarily
falls back to full XML — the grid keeps that cell to show the
degradation floor is ~1.0x, never worse.

Before timing, two sanity gates run on small copies:

* wire identity — every document the delta peer reconstructs is
  byte-identical to the plain client's serialization, per call;
* fallback drill — a structural change and a wiped-mirror resync
  (epoch loss) both degrade to full XML and then resume framing.

Emits one ``repro-bench-result/1`` document.  The headline row
(``delta`` at ``dirty_frac=0.01``) is what the CI ``perf-smoke`` job
checks against ``BENCH_delta_wire.json`` (>= 50x payload reduction).

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_ablation_delta_wire.py \
        --out BENCH_delta_wire.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_ablation_delta_wire.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.bench.resultjson import dump_result, make_result, validate_result
from repro.bench.workloads import double_array_message, doubles_of_width
from repro.core.client import BSoapClient
from repro.core.policy import DeltaPolicy, DiffPolicy, StuffingPolicy, StuffMode
from repro.errors import DeltaResyncError
from repro.lexical.floats import FloatFormat
from repro.transport.loopback import CollectSink
from repro.wire.loopback import DeltaLoopback

REQUIRED_COLUMNS = (
    "variant",
    "n",
    "dirty_frac",
    "sends",
    "delta_sends",
    "full_sends",
    "mean_payload_bytes",
    "mean_send_ms",
    "calls_per_sec",
    "reduction_vs_full",
)

VARIANTS = ("full-xml", "delta")
FRACTIONS = (0.01, 0.1, 1.0)

#: Headline cell for the CI gate: sparse dirty set, frames at their best.
HEADLINE_FRAC = 0.01
MIN_HEADLINE_REDUCTION = 50.0


def _policy(variant: str) -> DiffPolicy:
    # Fixed-format MAX stuffing keeps every field width constant, so
    # each resend is a perfect structural match and the two variants
    # differ only in what crosses the wire.
    return DiffPolicy(
        float_format=FloatFormat.FIXED,
        stuffing=StuffingPolicy(StuffMode.MAX),
        delta=DeltaPolicy(offer=(variant == "delta")),
    )


def _make_client(variant: str, n: int, seed: int, *, keep_documents=False):
    loop = DeltaLoopback(keep_documents=keep_documents)
    client = BSoapClient(loop, _policy(variant))
    if client.wire is not None:
        client.wire.negotiated = True  # the loopback peer always accepts
    call = client.prepare(double_array_message(doubles_of_width(n, 18, seed=seed)))
    call.send()
    return loop, client, call


def _mutation_schedule(n: int, frac: float, sends: int, seed: int):
    """Deterministic (idx, values) pairs shared by both variants."""
    rng = np.random.default_rng(seed)
    k = max(1, int(frac * n))
    out = []
    for i in range(sends):
        idx = np.sort(rng.choice(n, k, replace=False)) if k < n else np.arange(n)
        out.append((idx, doubles_of_width(k, 18, seed=seed + 1 + i)))
    return out


def _run_cell(
    variant: str, n: int, frac: float, sends: int, seed: int
) -> Dict[str, object]:
    loop, client, call = _make_client(variant, n, seed)
    tracked = call.tracked("data")
    schedule = _mutation_schedule(n, frac, sends + 1, seed + 7)
    # One untimed warm send covers frame-path setup (baseline snapshot).
    tracked.update(*schedule[0])
    call.send()
    bytes0, delta0, full0 = loop.payload_bytes, loop.delta_sends, loop.full_sends
    elapsed = 0.0
    for idx, vals in schedule[1:]:
        tracked.update(idx, vals)
        t0 = time.perf_counter()
        call.send()
        elapsed += time.perf_counter() - t0
    payload = loop.payload_bytes - bytes0
    return {
        "variant": variant,
        "n": n,
        "dirty_frac": frac,
        "sends": sends,
        "delta_sends": loop.delta_sends - delta0,
        "full_sends": loop.full_sends - full0,
        "mean_payload_bytes": round(payload / sends, 1),
        "mean_send_ms": round(elapsed / sends * 1e3, 4),
        "calls_per_sec": round(sends / elapsed, 1),
        "reduction_vs_full": 1.0,
    }


def _assert_wire_identical(n: int, frac: float, seed: int) -> None:
    """Every reconstructed document == the plain client's bytes."""
    loop, client, call = _make_client("delta", n, seed, keep_documents=True)
    plain_sink = CollectSink()
    plain = BSoapClient(plain_sink, _policy("full-xml"))
    plain_call = plain.prepare(
        double_array_message(doubles_of_width(n, 18, seed=seed))
    )
    plain_call.send()
    plain_tracked = plain_call.tracked("data")
    tracked = call.tracked("data")
    for i, (idx, vals) in enumerate(_mutation_schedule(n, frac, 6, seed + 7)):
        tracked.update(idx, vals)
        plain_tracked.update(idx, vals)
        call.send()
        plain_call.send()
        if loop.last_document != plain_sink.last:
            raise AssertionError(
                f"delta reconstruction diverged from the plain wire "
                f"(dirty_frac={frac}, call {i})"
            )
    if frac <= 0.1 and loop.delta_sends == 0:
        raise AssertionError(
            f"identity check at dirty_frac={frac} never framed - "
            "the bench would not be measuring the delta path"
        )


def _assert_fallback_recovers(n: int, seed: int) -> None:
    """Structural change and mirror loss both degrade, then resume."""
    loop, client, call = _make_client("delta", n, seed)
    tracked = call.tracked("data")
    schedule = _mutation_schedule(n, 0.05, 6, seed + 7)
    tracked.update(*schedule[0])
    assert call.send().delta, "steady state should frame"
    # Structural change: a fresh message shape is a first-time full send.
    wide = client.prepare(
        double_array_message(doubles_of_width(n + 3, 18, seed=seed + 1))
    )
    assert not wide.send().delta, "structural change must ship full XML"
    # Epoch loss: the peer forgets its mirrors; the client sees a resync
    # error, resends full, and frames again on the next dirty send.
    tracked.update(*schedule[1])
    loop.delta.clear()
    try:
        call.send()
        raise AssertionError("wiped mirror should have raised a resync")
    except DeltaResyncError:
        pass
    assert not call.send().delta, "post-resync recovery must be full XML"
    tracked.update(*schedule[2])
    assert call.send().delta, "framing must resume after resync"


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=65536,
                        help="double-array length (default 65536)")
    parser.add_argument("--sends", type=int, default=30,
                        help="timed sends per grid cell (default 30)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: small array, few sends")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.smoke:
        args.n = 4096
        args.sends = 8

    for frac in FRACTIONS:
        _assert_wire_identical(512, frac, args.seed)
    _assert_fallback_recovers(512, args.seed)
    print(
        "wire identity: delta reconstruction == full wire (all fractions); "
        "fallback drill passed",
        file=sys.stderr,
    )

    rows: List[Dict[str, object]] = []
    headline = None
    for frac in FRACTIONS:
        base_bytes = None
        for variant in VARIANTS:
            row = _run_cell(variant, args.n, frac, args.sends, args.seed)
            if variant == "full-xml":
                base_bytes = row["mean_payload_bytes"]
            row["reduction_vs_full"] = round(
                base_bytes / max(row["mean_payload_bytes"], 1e-9), 2
            )
            if variant == "delta" and frac == HEADLINE_FRAC:
                headline = row
            rows.append(row)
            print(
                f"frac={frac:<5} {variant:<9} "
                f"{row['mean_payload_bytes']:>12.1f} B/send  "
                f"x{row['reduction_vs_full']:.1f} vs full  "
                f"({row['delta_sends']} frames, {row['full_sends']} full, "
                f"{row['mean_send_ms']:.3f} ms/send)",
                file=sys.stderr,
            )

    if headline is None or headline["reduction_vs_full"] < MIN_HEADLINE_REDUCTION:
        got = None if headline is None else headline["reduction_vs_full"]
        print(
            f"FAIL: headline reduction {got} < {MIN_HEADLINE_REDUCTION}x "
            f"at dirty_frac={HEADLINE_FRAC}",
            file=sys.stderr,
        )
        return 1

    doc = make_result(
        "ablation_delta_wire",
        params={
            "n": args.n,
            "sends": args.sends,
            "seed": args.seed,
            "smoke": args.smoke,
            "headline": f"variant=delta dirty_frac={HEADLINE_FRAC}",
        },
        results=rows,
        notes=(
            "perfect-structural resends over DeltaLoopback; mutation "
            "untimed; per-call byte identity vs the plain client and a "
            "structural+resync fallback drill asserted before timing; "
            "dirty_frac=1.0 shows the max_frame_fraction degradation floor"
        ),
    )
    validate_result(doc, required_columns=REQUIRED_COLUMNS)
    dump_result(doc, args.out)
    if args.out:
        print(f"wrote {args.out} ({len(rows)} rows)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
