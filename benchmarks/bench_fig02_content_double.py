"""Figure 2 — Message Content Matches: Doubles (incl. XSOAP-like).

Paper result: content matches ≈10× faster than full serialization for
large double arrays; XSOAP (DOM/Java) slowest, gSOAP/bSOAP-full close.
"""

import pytest

from _common import SIZES, full_serialization_client, prepared_call, sink
from repro.baselines.gsoap_like import GSoapLikeClient
from repro.baselines.xsoap_like import XSoapLikeClient
from repro.bench.workloads import double_array_message, random_doubles


@pytest.mark.parametrize("n", SIZES)
def test_xsoap_full(benchmark, n):
    benchmark.group = f"fig02 double content n={n}"
    message = double_array_message(random_doubles(n, seed=n))
    client = XSoapLikeClient(sink())
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
def test_gsoap_full(benchmark, n):
    benchmark.group = f"fig02 double content n={n}"
    message = double_array_message(random_doubles(n, seed=n))
    client = GSoapLikeClient(sink())
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
def test_bsoap_full_serialization(benchmark, n):
    benchmark.group = f"fig02 double content n={n}"
    message = double_array_message(random_doubles(n, seed=n))
    client = full_serialization_client()
    benchmark(lambda: client.send(message))


@pytest.mark.parametrize("n", SIZES)
def test_bsoap_content_match(benchmark, n):
    benchmark.group = f"fig02 double content n={n}"
    call = prepared_call(double_array_message(random_doubles(n, seed=n)))
    benchmark(call.send)
