"""Ablation — pipelined vs batch differential sends over TCP.

Pipelined mode hands each chunk to the socket as soon as its dirty
values are rewritten, overlapping kernel transmission with the
remaining re-serialization; batch mode rewrites everything first.
Measured over real localhost TCP where the overlap can actually help.

Finding (recorded in EXPERIMENTS.md): over *localhost*, pipelining is
~25–35% slower end-to-end — the per-chunk bookkeeping (range queries,
small formatting batches, one sendmsg per chunk) costs more than the
overlap saves when the wire is effectively free.  Its value is
first-byte latency and overlap with a slow/real network, not
throughput on a loopback device.
"""

import numpy as np
import pytest

from repro.bench.workloads import double_array_message, doubles_of_width
from repro.buffers.config import ChunkPolicy
from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy
from repro.transport.dummy_server import DummyServer
from repro.transport.tcp import TCPTransport

N = 20_000


@pytest.fixture(scope="module")
def server():
    with DummyServer() as srv:
        yield srv


def _policy(pipelined):
    return DiffPolicy(
        pipelined_send=pipelined,
        chunk=ChunkPolicy(chunk_size=8 * 1024, reserve=256, split_threshold=2048),
    )


@pytest.mark.parametrize("pipelined", [False, True])
def test_structural_send_100pct(benchmark, pipelined, server):
    benchmark.group = f"ablation pipelined send (n={N}, 100% dirty, TCP)"
    benchmark.name = f"test_structural_send_100pct[{'pipelined' if pipelined else 'batch'}]"
    tcp = TCPTransport("127.0.0.1", server.port)
    client = BSoapClient(tcp, _policy(pipelined))
    call = client.prepare(double_array_message(doubles_of_width(N, 18, seed=0)))
    call.send()
    pool = doubles_of_width(N, 18, seed=9)
    flip = [pool, np.roll(pool, 1)]
    state = {"i": 0}
    idx = np.arange(N)

    def mutate():
        call.tracked("data").update(idx, flip[state["i"] % 2])
        state["i"] += 1

    benchmark.pedantic(call.send, setup=mutate, rounds=10, iterations=1, warmup_rounds=1)
    tcp.close()
