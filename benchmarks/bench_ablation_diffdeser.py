"""Ablation — differential deserialization (§6 future work).

Server-side dual of the client optimization: full parse vs byte-diff +
re-parse-changed-leaves vs pure content match, over stuffed
(fixed-layout) incoming messages.
"""

import numpy as np
import pytest

from repro.bench.workloads import double_array_message, doubles_of_width
from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy, StuffingPolicy, StuffMode
from repro.server.diffdeser import DeserKind, DifferentialDeserializer
from repro.server.parser import SOAPRequestParser
from repro.transport.loopback import CollectSink

N = 5000


@pytest.fixture(scope="module")
def traffic():
    """A template message plus a 1%-changed and a 25%-changed variant."""
    sink = CollectSink()
    client = BSoapClient(sink, DiffPolicy(stuffing=StuffingPolicy(StuffMode.MAX)))
    call = client.prepare(double_array_message(doubles_of_width(N, 14, seed=0)))
    call.send()
    base = sink.last
    pool = doubles_of_width(N, 14, seed=9)
    rng = np.random.default_rng(2)

    call.tracked("data").update(rng.choice(N, N // 100, replace=False), pool[: N // 100])
    call.send()
    one_pct = sink.last

    call.tracked("data").update(rng.choice(N, N // 4, replace=False), pool[: N // 4])
    call.send()
    quarter = sink.last
    return base, one_pct, quarter


def test_full_parse(benchmark, traffic):
    benchmark.group = f"ablation diffdeser (n={N})"
    base, _one, _q = traffic
    parser = SOAPRequestParser()
    benchmark(lambda: parser.parse(base))


def test_content_match(benchmark, traffic):
    benchmark.group = f"ablation diffdeser (n={N})"
    base, _one, _q = traffic
    dd = DifferentialDeserializer()
    dd.deserialize(base)
    result = benchmark(lambda: dd.deserialize(base))
    assert result[1].kind is DeserKind.CONTENT_MATCH


def test_differential_1pct(benchmark, traffic):
    benchmark.group = f"ablation diffdeser (n={N})"
    base, one_pct, _q = traffic
    dd = DifferentialDeserializer()
    dd.deserialize(base)
    flip = [one_pct, base]
    state = {"i": 0}

    def run():
        data = flip[state["i"] % 2]
        state["i"] += 1
        return dd.deserialize(data)

    result = benchmark(run)
    assert result[1].kind is DeserKind.DIFFERENTIAL


def test_differential_25pct(benchmark, traffic):
    benchmark.group = f"ablation diffdeser (n={N})"
    base, _one, quarter = traffic
    dd = DifferentialDeserializer()
    dd.deserialize(base)
    flip = [quarter, base]
    state = {"i": 0}

    def run():
        data = flip[state["i"] % 2]
        state["i"] += 1
        return dd.deserialize(data)

    result = benchmark(run)
    assert result[1].kind is DeserKind.DIFFERENTIAL
