"""Ablation — server-side deserialization: full parse vs differential vs skip-scan.

The server mirrors the client's trick (DESIGN.md §4b, docs/skipscan.md):
when a request is a byte-diff away from the previous
one, only the changed spans need parsing.  This bench isolates what each
engine is worth across dirty fractions on a 64Ki-double request:

* ``full-parse`` — a fresh :class:`SOAPRequestParser` pass over every
  wire (the authoritative baseline, also the fallback path);
* ``differential`` — :class:`DifferentialDeserializer` with the legacy
  per-span scanner (``skipscan=False``);
* ``skipscan`` — the same deserializer with a compiled
  :class:`~repro.schema.skipscan.SeekTable` (``skipscan=True``): seek
  straight to the dirty spans, trie-check the close tags, never
  re-tokenize the skeleton.

The timers are split: ``mean_parse_ms`` times the deserializer alone on
pre-captured wires, while ``mean_handle_ms`` times the full
``SOAPService.handle`` round trip (parse + dispatch + response) over the
same traffic — ``mean_dispatch_ms`` is their difference, so the
skip-scan ablation measures parse, not handler noise.

Before timing, two sanity gates run on small copies:

* lockstep equality — skip-scan, legacy differential, and a fresh full
  parse decode every wire identically (and agree on the match kind);
* drift drill — a flipped skeleton byte mid-session raises the same
  error class as a full parse and the fast lane re-arms on the next
  clean wire (no session poisoning).

Emits one ``repro-bench-result/1`` document.  The headline row
(``skipscan`` at ``dirty_frac=0.01``) is what the CI ``perf-smoke`` job
checks against ``BENCH_diffdeser.json`` (>= 5x parse speedup full run,
>= 3x in ``--smoke``).

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_ablation_diffdeser.py \
        --out BENCH_diffdeser.json
    PYTHONPATH=src:benchmarks python benchmarks/bench_ablation_diffdeser.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.resultjson import dump_result, make_result, validate_result
from repro.bench.workloads import double_array_message, doubles_of_width
from repro.core.client import BSoapClient
from repro.core.policy import DiffPolicy, StuffingPolicy, StuffMode
from repro.errors import XMLError
from repro.lexical.floats import FloatFormat
from repro.schema import INT, TypeRegistry
from repro.server.diffdeser import DeserKind, DifferentialDeserializer
from repro.server.parser import SOAPRequestParser
from repro.server.service import SOAPService
from repro.transport.loopback import CollectSink

REQUIRED_COLUMNS = (
    "variant",
    "n",
    "dirty_frac",
    "sends",
    "kind",
    "mean_parse_ms",
    "mean_handle_ms",
    "mean_dispatch_ms",
    "parses_per_sec",
    "parse_speedup_vs_full",
    "skipscan_hits",
)

VARIANTS = ("full-parse", "differential", "skipscan")
FRACTIONS = (0.0, 0.01, 0.25)

#: Headline cell for the CI gate: sparse dirty set, seek table at its best.
HEADLINE_FRAC = 0.01
MIN_HEADLINE_SPEEDUP = 5.0
MIN_SMOKE_SPEEDUP = 3.0

#: Fixed-format MAX stuffing keeps every span width constant, so each
#: resend is a perfect structural match and the three engines differ
#: only in how much of the wire they re-parse.
POLICY = DiffPolicy(
    float_format=FloatFormat.FIXED, stuffing=StuffingPolicy(StuffMode.MAX)
)


def _wires(n: int, frac: float, sends: int, seed: int) -> List[bytes]:
    """Pre-capture ``sends + 1`` wires (first is the first-time send);
    every engine replays the identical byte traffic."""
    sink = CollectSink()
    client = BSoapClient(sink, POLICY)
    rng = np.random.default_rng(seed)
    call = client.prepare(double_array_message(doubles_of_width(n, 18, seed=seed)))
    call.send()
    out = [sink.last]
    tracked = call.tracked("data")
    k = max(1, int(frac * n)) if frac > 0 else 0
    for i in range(sends):
        if k:
            idx = np.sort(rng.choice(n, k, replace=False))
            tracked.update(idx, doubles_of_width(k, 18, seed=seed + 1 + i))
        call.send()
        out.append(sink.last)
    return out


def _time_parse(variant: str, wires: List[bytes]) -> Tuple[float, str, int]:
    """Time the deserializer alone.  Returns (seconds, last kind,
    skip-scan hit count) over ``wires[1:]``; ``wires[0]`` warms the
    template untimed."""
    registry = TypeRegistry()
    if variant == "full-parse":
        parser = SOAPRequestParser(registry)
        fn = lambda wire: parser.parse(wire).message  # noqa: E731
        deser = None
    else:
        deser = DifferentialDeserializer(
            registry, skipscan=(variant == "skipscan")
        )
        fn = lambda wire: deser.deserialize(wire)  # noqa: E731
    fn(wires[0])
    t0 = time.perf_counter()
    for wire in wires[1:]:
        result = fn(wire)
    elapsed = time.perf_counter() - t0
    kind, hits = "full", 0
    if deser is not None:
        kind = result[1].kind.name.lower().replace("_", "-")
        stats = deser.skipscan_stats
        hits = stats.get("hit", 0) + stats.get("hit-vector", 0)
    return elapsed, kind, hits


def _time_handle(variant: str, wires: List[bytes]) -> float:
    """Time the full ``SOAPService.handle`` round trip on the same
    traffic (parse + dispatch + response serialization)."""
    service = SOAPService(
        "urn:diffdeser",
        registry=TypeRegistry(),
        differential_deser=(variant != "full-parse"),
        skipscan=(variant == "skipscan"),
    )

    @service.operation("sendDoubles", result_type=INT, result_name="n")
    def handler(data):
        return len(data)

    assert b"Fault" not in service.handle(wires[0], "bench")
    t0 = time.perf_counter()
    for wire in wires[1:]:
        response = service.handle(wire, "bench")
    elapsed = time.perf_counter() - t0
    assert b"Fault" not in response
    return elapsed


def _run_cell(
    variant: str, n: int, frac: float, sends: int, seed: int
) -> Dict[str, object]:
    wires = _wires(n, frac, sends, seed)
    parse_s, kind, hits = _time_parse(variant, wires)
    handle_s = _time_handle(variant, wires)
    # The in-bench invariant the ablation rests on: the skip-scan cell
    # must actually ride the seek table on steady-state resends.
    if variant == "skipscan" and frac > 0:
        assert hits == sends, f"skip-scan hit {hits}/{sends} resends"
    return {
        "variant": variant,
        "n": n,
        "dirty_frac": frac,
        "sends": sends,
        "kind": kind,
        "mean_parse_ms": round(parse_s / sends * 1e3, 4),
        "mean_handle_ms": round(handle_s / sends * 1e3, 4),
        "mean_dispatch_ms": round(max(handle_s - parse_s, 0.0) / sends * 1e3, 4),
        "parses_per_sec": round(sends / parse_s, 1),
        "parse_speedup_vs_full": 1.0,
        "skipscan_hits": hits,
    }


def _decoded_equal(a, b) -> bool:
    if a.operation != b.operation or len(a.params) != len(b.params):
        return False
    return all(
        p.name == q.name
        and np.array_equal(
            np.asarray(p.value), np.asarray(q.value), equal_nan=True
        )
        for p, q in zip(a.params, b.params)
    )


def _assert_lockstep(n: int, frac: float, seed: int) -> None:
    """Skip-scan == legacy differential == fresh full parse, wire for
    wire, including the match kind — on the bench's own traffic."""
    wires = _wires(n, frac, 6, seed)
    registry = TypeRegistry()
    skip = DifferentialDeserializer(registry, skipscan=True)
    legacy = DifferentialDeserializer(registry, skipscan=False)
    for i, wire in enumerate(wires):
        decoded, report = skip.deserialize(wire)
        legacy_decoded, legacy_report = legacy.deserialize(wire)
        reference = SOAPRequestParser(registry).parse(wire).message
        if not (
            _decoded_equal(decoded, reference)
            and _decoded_equal(legacy_decoded, reference)
        ):
            raise AssertionError(
                f"engines diverged at dirty_frac={frac}, wire {i}"
            )
        if report.kind is not legacy_report.kind:
            raise AssertionError(
                f"match kinds diverged at dirty_frac={frac}, wire {i}: "
                f"{report.kind} != {legacy_report.kind}"
            )
    stats = skip.skipscan_stats
    if frac > 0 and stats.get("hit", 0) + stats.get("hit-vector", 0) == 0:
        raise AssertionError(
            f"lockstep check at dirty_frac={frac} never skip-scanned - "
            "the bench would not be measuring the fast lane"
        )


def _assert_drift_recovers(n: int, seed: int) -> None:
    """A flipped skeleton byte mid-session: same error class as a full
    parse, and the fast lane re-arms on the next clean wire."""
    wires = _wires(n, 0.01, 4, seed)
    registry = TypeRegistry()
    deser = DifferentialDeserializer(registry, skipscan=True)
    deser.deserialize(wires[0])
    deser.deserialize(wires[1])
    pos = wires[2].index(b"<item>")
    bad = wires[2][:pos] + b"<jtem>" + wires[2][pos + 6 :]
    for attempt in (
        lambda: deser.deserialize(bad),
        lambda: SOAPRequestParser(registry).parse(bad),
    ):
        try:
            attempt()
            raise AssertionError("skeleton drift should have raised")
        except XMLError:
            pass
    _, report = deser.deserialize(wires[3])
    assert report.kind is DeserKind.DIFFERENTIAL and report.skipscan, (
        "fast lane did not re-arm after skeleton drift"
    )
    assert deser.skipscan_stats.get("skeleton-drift") == 1


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=65536,
                        help="double-array length (default 65536)")
    parser.add_argument("--sends", type=int, default=20,
                        help="timed resends per grid cell (default 20)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: small array, few sends, 3x gate")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.smoke:
        args.n = 4096
        args.sends = 8
    min_speedup = MIN_SMOKE_SPEEDUP if args.smoke else MIN_HEADLINE_SPEEDUP

    for frac in FRACTIONS:
        _assert_lockstep(256, frac, args.seed)
    _assert_drift_recovers(256, args.seed)
    print(
        "lockstep: skip-scan == differential == full parse (all fractions); "
        "skeleton-drift drill passed",
        file=sys.stderr,
    )

    rows: List[Dict[str, object]] = []
    headline = None
    for frac in FRACTIONS:
        base_ms = None
        for variant in VARIANTS:
            row = _run_cell(variant, args.n, frac, args.sends, args.seed)
            if variant == "full-parse":
                base_ms = row["mean_parse_ms"]
            row["parse_speedup_vs_full"] = round(
                base_ms / max(row["mean_parse_ms"], 1e-9), 2
            )
            if variant == "skipscan" and frac == HEADLINE_FRAC:
                headline = row
            rows.append(row)
            print(
                f"frac={frac:<5} {variant:<12} "
                f"parse {row['mean_parse_ms']:>9.3f} ms  "
                f"x{row['parse_speedup_vs_full']:.1f} vs full  "
                f"(dispatch {row['mean_dispatch_ms']:.3f} ms, "
                f"{row['kind']}, {row['skipscan_hits']} skip-scan hits)",
                file=sys.stderr,
            )

    if headline is None or headline["parse_speedup_vs_full"] < min_speedup:
        got = None if headline is None else headline["parse_speedup_vs_full"]
        print(
            f"FAIL: headline parse speedup {got} < {min_speedup}x "
            f"at dirty_frac={HEADLINE_FRAC}",
            file=sys.stderr,
        )
        return 1

    doc = make_result(
        "ablation_diffdeser",
        params={
            "n": args.n,
            "sends": args.sends,
            "seed": args.seed,
            "smoke": args.smoke,
            "headline": f"variant=skipscan dirty_frac={HEADLINE_FRAC}",
        },
        results=rows,
        notes=(
            "pre-captured perfect-structural resend traffic replayed "
            "through each engine; parse timer is the deserializer alone, "
            "handle timer is the full SOAPService round trip; lockstep "
            "equality and a skeleton-drift recovery drill asserted before "
            "timing; dirty_frac=0.0 rows show the content-match ceiling"
        ),
    )
    validate_result(doc, required_columns=REQUIRED_COLUMNS)
    dump_result(doc, args.out)
    if args.out:
        print(f"wrote {args.out} ({len(rows)} rows)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
